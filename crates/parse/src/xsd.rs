//! XSD (XML Schema Definition) → schema graph.
//!
//! Maps the structural core of XML Schema onto the model:
//!
//! * global `xs:element`s with complex content and named `xs:complexType`s
//!   become **entities**,
//! * `xs:element`s with simple types and `xs:attribute`s become
//!   **attributes**,
//! * `xs:sequence` / `xs:choice` / `xs:all` become transparent containers
//!   (their children attach directly to the enclosing entity),
//! * nested `xs:element`s with inline complex types become child entities,
//! * `xs:annotation/xs:documentation` text becomes element documentation,
//! * `xs:keyref` pairs become foreign keys when both endpoints resolve.
//!
//! Namespace prefixes are stripped: `xs:element`, `xsd:element`, and
//! `element` are treated alike, which is what a schema *search* tool wants.

use schemr_model::{DataType, Element, ElementId, ForeignKey, Schema};

use crate::error::ParseError;
use crate::xml::{Event, XmlParser};

/// A tiny DOM node, built from the pull parser.
#[derive(Debug)]
struct Node {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Node>,
    text: String,
}

impl Node {
    fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Local (prefix-stripped) element name.
    fn local(&self) -> &str {
        local_name(&self.name)
    }

    fn children_named<'a>(&'a self, local: &'a str) -> impl Iterator<Item = &'a Node> + 'a {
        self.children.iter().filter(move |c| c.local() == local)
    }
}

fn local_name(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

/// Build a DOM from the event stream.
fn build_dom(input: &str) -> Result<Node, ParseError> {
    let mut parser = XmlParser::new(input);
    let mut stack: Vec<Node> = Vec::new();
    let mut root: Option<Node> = None;
    while let Some(ev) = parser.next_event()? {
        match ev {
            Event::Start { name, attributes } => {
                stack.push(Node {
                    name,
                    attrs: attributes.into_iter().map(|a| (a.name, a.value)).collect(),
                    children: Vec::new(),
                    text: String::new(),
                });
            }
            Event::End { .. } => {
                let node = stack.pop().expect("parser guarantees balance");
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => root = Some(node),
                }
            }
            Event::Text(t) => {
                if let Some(top) = stack.last_mut() {
                    if !top.text.is_empty() {
                        top.text.push(' ');
                    }
                    top.text.push_str(&t);
                }
            }
            Event::Comment(_) => {}
        }
    }
    root.ok_or_else(|| ParseError::at_start("no document element"))
}

/// Map an XSD built-in type (`xs:string`, `xsd:dateTime`, …) to the model.
fn map_xsd_type(ty: &str) -> DataType {
    match local_name(ty) {
        "int" | "integer" | "long" | "short" | "byte" | "unsignedInt" | "unsignedLong"
        | "nonNegativeInteger" | "positiveInteger" | "negativeInteger" | "nonPositiveInteger" => {
            DataType::Integer
        }
        "float" | "double" => DataType::Real,
        "decimal" => DataType::Decimal,
        "string" | "normalizedString" | "token" | "anyURI" | "NMTOKEN" | "Name" | "NCName"
        | "ID" | "IDREF" | "language" => DataType::Text,
        "boolean" => DataType::Boolean,
        "date" | "gYear" | "gYearMonth" | "gMonthDay" | "gDay" | "gMonth" => DataType::Date,
        "time" => DataType::Time,
        "dateTime" | "duration" => DataType::DateTime,
        "base64Binary" | "hexBinary" => DataType::Binary,
        _ => DataType::Unknown,
    }
}

/// Extract `<xs:annotation><xs:documentation>…` text from a node.
fn documentation(node: &Node) -> Option<String> {
    let ann = node.children_named("annotation").next()?;
    let doc = ann.children_named("documentation").next()?;
    let text = doc.text.trim();
    (!text.is_empty()).then(|| text.to_string())
}

/// Parse an XSD document into a schema named `schema_name`.
pub fn parse_xsd(schema_name: &str, input: &str) -> Result<Schema, ParseError> {
    let dom = build_dom(input)?;
    if dom.local() != "schema" {
        return Err(ParseError::at_start(format!(
            "expected an xs:schema document element, found `{}`",
            dom.name
        )));
    }
    let mut reader = XsdReader {
        schema: Schema::new(schema_name),
        named_types: dom
            .children_named("complexType")
            .filter_map(|ct| ct.attr("name").map(|n| (n.to_string(), ct)))
            .collect(),
        keyrefs: Vec::new(),
        keys: Vec::new(),
    };

    // Global elements become root entities (or root attributes when simple).
    for el in dom.children_named("element") {
        reader.element(el, None)?;
    }
    // Named complex types that no global element used still index as
    // entities in their own right (common in type-library XSDs).
    let used: std::collections::HashSet<String> = dom
        .children_named("element")
        .filter_map(|e| e.attr("type").map(|t| local_name(t).to_string()))
        .collect();
    let named: Vec<(String, &Node)> = reader
        .named_types
        .iter()
        .map(|(n, ct)| (n.clone(), *ct))
        .collect();
    for (name, ct) in named {
        if !used.contains(&name) {
            let id = reader.schema.add_root(Element::entity(name));
            if let Some(doc) = documentation(ct) {
                reader.schema.element_mut(id).doc = Some(doc);
            }
            reader.complex_content(ct, id)?;
        }
    }
    reader.resolve_keyrefs();
    Ok(reader.schema)
}

struct XsdReader<'a> {
    schema: Schema,
    named_types: std::collections::HashMap<String, &'a Node>,
    /// (entity, keyref selector target, referred key name)
    keyrefs: Vec<(ElementId, String, String)>,
    /// (key name, entity it selects)
    keys: Vec<(String, String)>,
}

impl<'a> XsdReader<'a> {
    /// Interpret one `xs:element` node under `parent` (None = root).
    fn element(&mut self, el: &'a Node, parent: Option<ElementId>) -> Result<(), ParseError> {
        let Some(name) = el.attr("name").or_else(|| el.attr("ref")) else {
            return Err(ParseError::at_start("xs:element without name or ref"));
        };
        let name = local_name(name).to_string();
        let doc = documentation(el);

        let inline_complex = el.children_named("complexType").next();
        let named_complex = el
            .attr("type")
            .and_then(|t| self.named_types.get(local_name(t)).copied());

        if let Some(ct) = inline_complex.or(named_complex) {
            // Complex content → entity.
            let mut entity = Element::entity(name);
            entity.doc = doc;
            let id = match parent {
                Some(p) => self.schema.add_child(p, entity),
                None => self.schema.add_root(entity),
            };
            self.complex_content(ct, id)?;
            self.identity_constraints(el, id);
        } else {
            // Simple content (built-in type, ref, or typeless) → attribute.
            let ty = el.attr("type").map(map_xsd_type).unwrap_or_default();
            let mut attr = Element::attribute(name, ty);
            attr.doc = doc;
            match parent {
                Some(p) => self.schema.add_child(p, attr),
                None => self.schema.add_root(attr),
            };
        }
        Ok(())
    }

    /// Walk a complexType's content, attaching children to `entity`.
    fn complex_content(&mut self, ct: &'a Node, entity: ElementId) -> Result<(), ParseError> {
        for child in &ct.children {
            match child.local() {
                "sequence" | "choice" | "all" => self.complex_content(child, entity)?,
                "element" => self.element(child, Some(entity))?,
                "attribute" => {
                    if let Some(name) = child.attr("name").or_else(|| child.attr("ref")) {
                        let ty = child.attr("type").map(map_xsd_type).unwrap_or_default();
                        let mut attr = Element::attribute(local_name(name), ty);
                        attr.doc = documentation(child);
                        self.schema.add_child(entity, attr);
                    }
                }
                "complexContent" | "simpleContent" => {
                    // extension/restriction: walk through to the inner model.
                    for inner in &child.children {
                        if matches!(inner.local(), "extension" | "restriction") {
                            self.complex_content(inner, entity)?;
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Record `xs:key` / `xs:keyref` declared on an element.
    fn identity_constraints(&mut self, el: &'a Node, entity: ElementId) {
        let selector_target = |n: &Node| -> Option<String> {
            let sel = n.children_named("selector").next()?;
            let xpath = sel.attr("xpath")?;
            // `.//patient` → `patient`
            Some(
                xpath
                    .rsplit('/')
                    .next()
                    .unwrap_or(xpath)
                    .trim_start_matches('.')
                    .to_string(),
            )
        };
        for key in el.children_named("key") {
            if let (Some(name), Some(target)) = (key.attr("name"), selector_target(key)) {
                self.keys.push((name.to_string(), target));
            }
        }
        for kr in el.children_named("keyref") {
            if let (Some(refer), Some(target)) = (kr.attr("refer"), selector_target(kr)) {
                let _ = entity;
                self.keyrefs
                    .push((entity, target, local_name(refer).to_string()));
            }
        }
    }

    /// Turn recorded keyrefs into foreign keys where both entities resolve
    /// by name; unresolved ones are dropped (fragments may be partial).
    fn resolve_keyrefs(&mut self) {
        let find_entity = |schema: &Schema, name: &str| -> Option<ElementId> {
            schema
                .entities()
                .into_iter()
                .find(|&e| schema.element(e).name == name)
        };
        let keyrefs = std::mem::take(&mut self.keyrefs);
        for (_scope, from_name, key_name) in keyrefs {
            let Some(from_entity) = find_entity(&self.schema, &from_name) else {
                continue;
            };
            let Some((_, to_name)) = self.keys.iter().find(|(k, _)| *k == key_name) else {
                continue;
            };
            let Some(to_entity) = find_entity(&self.schema, to_name) else {
                continue;
            };
            self.schema.add_foreign_key(ForeignKey {
                from_entity,
                from_attrs: vec![],
                to_entity,
                to_attrs: vec![],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{validate, ElementKind};

    const PATIENT_XSD: &str = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="patient">
    <xs:annotation><xs:documentation>A person under care</xs:documentation></xs:annotation>
    <xs:complexType>
      <xs:sequence>
        <xs:element name="height" type="xs:double"/>
        <xs:element name="gender" type="xs:string"/>
        <xs:element name="dob" type="xs:date"/>
      </xs:sequence>
      <xs:attribute name="id" type="xs:integer"/>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;

    #[test]
    fn parses_inline_complex_type() {
        let s = parse_xsd("q", PATIENT_XSD).unwrap();
        assert_eq!(s.entities().len(), 1);
        let e = s.entities()[0];
        assert_eq!(s.element(e).name, "patient");
        assert_eq!(s.element(e).doc.as_deref(), Some("A person under care"));
        let kids = s.children(e);
        assert_eq!(kids.len(), 4);
        assert_eq!(s.element(kids[0]).data_type, DataType::Real);
        assert_eq!(s.element(kids[1]).data_type, DataType::Text);
        assert_eq!(s.element(kids[2]).data_type, DataType::Date);
        assert_eq!(s.element(kids[3]).data_type, DataType::Integer);
        assert!(validate(&s).is_empty());
    }

    #[test]
    fn named_complex_types_resolve_through_type_attribute() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="visit" type="VisitType"/>
  <xs:complexType name="VisitType">
    <xs:sequence><xs:element name="date" type="xs:date"/></xs:sequence>
  </xs:complexType>
</xs:schema>"#;
        let s = parse_xsd("q", xsd).unwrap();
        assert_eq!(s.entities().len(), 1);
        assert_eq!(s.element(s.entities()[0]).name, "visit");
        assert_eq!(s.attributes().len(), 1);
    }

    #[test]
    fn unused_named_types_become_entities_themselves() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="Address">
    <xs:sequence><xs:element name="street" type="xs:string"/></xs:sequence>
  </xs:complexType>
</xs:schema>"#;
        let s = parse_xsd("q", xsd).unwrap();
        assert_eq!(s.entities().len(), 1);
        assert_eq!(s.element(s.entities()[0]).name, "Address");
    }

    #[test]
    fn nested_inline_complex_types_become_child_entities() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="order">
    <xs:complexType><xs:sequence>
      <xs:element name="item">
        <xs:complexType><xs:sequence>
          <xs:element name="sku" type="xs:string"/>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;
        let s = parse_xsd("q", xsd).unwrap();
        assert_eq!(s.entities().len(), 2);
        let order = s.entities()[0];
        let item = s.entities()[1];
        assert_eq!(s.element(item).parent, Some(order));
        assert_eq!(s.element(item).kind, ElementKind::Entity);
    }

    #[test]
    fn choice_and_all_are_transparent() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="contact">
    <xs:complexType><xs:choice>
      <xs:element name="email" type="xs:string"/>
      <xs:element name="phone" type="xs:string"/>
    </xs:choice></xs:complexType>
  </xs:element>
</xs:schema>"#;
        let s = parse_xsd("q", xsd).unwrap();
        assert_eq!(s.children(s.entities()[0]).len(), 2);
    }

    #[test]
    fn extension_walks_into_inner_model() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="employee">
    <xs:complexType>
      <xs:complexContent>
        <xs:extension base="Person">
          <xs:sequence><xs:element name="salary" type="xs:decimal"/></xs:sequence>
        </xs:extension>
      </xs:complexContent>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;
        let s = parse_xsd("q", xsd).unwrap();
        assert_eq!(s.attributes().len(), 1);
        assert_eq!(s.element(s.attributes()[0]).data_type, DataType::Decimal);
    }

    #[test]
    fn keyref_becomes_foreign_key() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="clinic">
    <xs:complexType><xs:sequence>
      <xs:element name="patient">
        <xs:complexType><xs:sequence>
          <xs:element name="id" type="xs:integer"/>
        </xs:sequence></xs:complexType>
      </xs:element>
      <xs:element name="case">
        <xs:complexType><xs:sequence>
          <xs:element name="patientId" type="xs:integer"/>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
    <xs:key name="patientKey"><xs:selector xpath=".//patient"/><xs:field xpath="id"/></xs:key>
    <xs:keyref name="casePatient" refer="patientKey"><xs:selector xpath=".//case"/><xs:field xpath="patientId"/></xs:keyref>
  </xs:element>
</xs:schema>"#;
        let s = parse_xsd("q", xsd).unwrap();
        assert_eq!(s.foreign_keys().len(), 1);
        let fk = &s.foreign_keys()[0];
        assert_eq!(s.element(fk.from_entity).name, "case");
        assert_eq!(s.element(fk.to_entity).name, "patient");
        assert!(validate(&s).is_empty());
    }

    #[test]
    fn global_simple_element_is_a_root_attribute() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="temperature" type="xs:double"/>
</xs:schema>"#;
        let s = parse_xsd("q", xsd).unwrap();
        assert!(s.entities().is_empty());
        assert_eq!(s.attributes().len(), 1);
    }

    #[test]
    fn non_schema_root_is_rejected() {
        let err = parse_xsd("q", "<html/>").unwrap_err();
        assert!(err.message.contains("xs:schema"), "{err}");
    }

    #[test]
    fn element_refs_become_attributes() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a">
    <xs:complexType><xs:sequence>
      <xs:element ref="tns:externalThing"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;
        let s = parse_xsd("q", xsd).unwrap();
        let kids = s.children(s.entities()[0]);
        assert_eq!(s.element(kids[0]).name, "externalThing");
    }
}
