//! Property-based tests for the parsers: printer↔parser round trips and
//! robustness against arbitrary input.

use proptest::prelude::*;
use schemr_model::{DataType, SchemaBuilder};
use schemr_parse::ddl::parse_ddl;
use schemr_parse::printer::print_ddl;
use schemr_parse::xml::XmlParser;

/// Identifier-ish names: start alpha, then alphanumerics/underscores.
fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}"
}

fn arb_type() -> impl Strategy<Value = DataType> {
    proptest::sample::select(DataType::ALL.to_vec())
}

proptest! {
    /// Any schema built from identifier-safe names survives a DDL
    /// print → parse round trip with identical structure.
    #[test]
    fn ddl_round_trip_preserves_structure(
        tables in proptest::collection::vec(
            (arb_ident(), proptest::collection::vec((arb_ident(), arb_type()), 1..6)),
            1..4,
        )
    ) {
        // Dedupe table names and per-table column names so the builder
        // resolves unambiguously.
        let mut seen_tables = std::collections::HashSet::new();
        let mut builder = SchemaBuilder::new("prop");
        let mut expected_tables = 0usize;
        let mut expected_columns = 0usize;
        for (tname, cols) in &tables {
            if !seen_tables.insert(tname.clone()) {
                continue;
            }
            expected_tables += 1;
            let mut seen_cols = std::collections::HashSet::new();
            let cols: Vec<(String, DataType)> = cols
                .iter()
                .filter(|(c, _)| seen_cols.insert(c.clone()))
                .cloned()
                .collect();
            expected_columns += cols.len();
            builder = builder.entity(tname.clone(), move |mut e| {
                for (c, t) in cols {
                    e = e.attr(c, t);
                }
                e
            });
        }
        let schema = builder.build_unchecked();
        let ddl = print_ddl(&schema);
        let reparsed = parse_ddl("prop", &ddl).unwrap();
        prop_assert_eq!(reparsed.entities().len(), expected_tables);
        prop_assert_eq!(reparsed.attributes().len(), expected_columns);
        // Names survive verbatim.
        for (a, b) in schema.ids().zip(reparsed.ids()) {
            prop_assert_eq!(&schema.element(a).name, &reparsed.element(b).name);
        }
    }

    /// The DDL lexer/parser never panics on arbitrary input.
    #[test]
    fn ddl_parser_never_panics(input in ".{0,200}") {
        let _ = parse_ddl("fuzz", &input);
    }

    /// The XML parser never panics on arbitrary input.
    #[test]
    fn xml_parser_never_panics(input in ".{0,200}") {
        let _ = XmlParser::parse_all(&input);
    }

    /// Escaped arbitrary text round-trips through an XML document.
    #[test]
    fn xml_escape_round_trips(text in "[^\\x00]{0,100}") {
        let doc = format!("<a>{}</a>", schemr_parse::xml::escape(&text));
        let events = XmlParser::parse_all(&doc).unwrap();
        // Whitespace-only text is skipped by the parser; otherwise the
        // decoded text must equal the trimmed original.
        if text.trim().is_empty() {
            prop_assert_eq!(events.len(), 2);
        } else {
            match &events[1] {
                schemr_parse::xml::Event::Text(t) => prop_assert_eq!(t.as_str(), text.trim()),
                other => prop_assert!(false, "expected text event, got {:?}", other),
            }
        }
    }

    /// parse_fragment dispatches without panicking for any input.
    #[test]
    fn parse_fragment_never_panics(input in ".{0,200}") {
        let _ = schemr_parse::parse_fragment("fuzz", &input);
    }

    /// CSV headers parse every identifier list.
    #[test]
    fn csv_headers_parse(cells in proptest::collection::vec("[a-z]{1,8}", 1..10)) {
        let header = cells.join(",");
        let schema = schemr_parse::csv::parse_header("t", &header).unwrap();
        prop_assert_eq!(schema.attributes().len(), cells.len());
    }
}
