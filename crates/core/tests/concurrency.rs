//! Concurrency stress: searches must stay correct while the repository
//! grows and the scheduled indexer applies changes — the live-service
//! situation in Figure 5.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use schemr::{IndexScheduler, SchemrEngine, SearchRequest};
use schemr_repo::{import::import_str, Repository};

#[test]
fn concurrent_searches_during_incremental_indexing() {
    let repo = Arc::new(Repository::new());
    // A stable anchor schema that every search must keep finding.
    import_str(
        &repo,
        "anchor",
        "",
        "CREATE TABLE patient (id INT, height REAL, gender TEXT, diagnosis TEXT)",
    )
    .unwrap();
    let engine = Arc::new(SchemrEngine::new(repo.clone()));
    engine.reindex_full();
    let scheduler = Arc::new(IndexScheduler::new(engine.clone()));

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Writer: keeps inserting new schemas.
    {
        let repo = repo.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                import_str(
                    &repo,
                    &format!("extra{i}"),
                    "",
                    &format!("CREATE TABLE t{i} (alpha{i} INT, beta{i} TEXT, gamma{i} DATE, delta{i} REAL)"),
                )
                .unwrap();
                i += 1;
                std::thread::yield_now();
            }
            i
        }));
    }
    // Indexer: ticks continuously.
    {
        let scheduler = scheduler.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut applied = 0usize;
            while !stop.load(Ordering::Relaxed) {
                applied += scheduler.tick();
                std::thread::yield_now();
            }
            applied
        }));
    }
    // Searchers: the anchor must always be found, top-ranked.
    let mut searchers = Vec::new();
    for _ in 0..4 {
        let engine = engine.clone();
        let stop = stop.clone();
        searchers.push(std::thread::spawn(move || {
            let mut searches = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let results = engine
                    .search(&SearchRequest::keywords(["patient", "height", "diagnosis"]))
                    .expect("query is nonempty");
                assert!(!results.is_empty(), "anchor must always be indexed");
                assert_eq!(results[0].title, "anchor");
                searches += 1;
            }
            searches
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    let inserted = handles.remove(0).join().unwrap();
    let applied = handles.remove(0).join().unwrap();
    let searches: usize = searchers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(inserted > 0, "writer made progress");
    assert!(searches > 0, "searchers made progress");

    // Drain the journal and verify the final state is fully searchable.
    scheduler.tick();
    assert!(applied + scheduler.applied_count() as usize >= 1);
    assert_eq!(engine.index_stats().live_docs, repo.len());
    // `alpha{last}` tokenizes into ["alpha", "<digits>"], so every extraN
    // schema matches the shared "alpha" token disjunctively — but only the
    // latest insert matches the digit token too, so it must rank first.
    let last = repo.len() - 2; // last extra schema (anchor is s0)
    let results = engine
        .search(&SearchRequest::keywords([format!("alpha{last}").as_str()]))
        .unwrap();
    assert!(!results.is_empty());
    assert_eq!(
        results[0].title,
        format!("extra{last}"),
        "latest insert must be searchable after a tick"
    );
}

#[test]
fn full_reindex_races_with_searches() {
    let repo = Arc::new(Repository::new());
    for i in 0..50 {
        import_str(
            &repo,
            &format!("s{i}"),
            "",
            &format!(
                "CREATE TABLE table{i} (patient INT, height REAL, col{i} TEXT, other{i} DATE)"
            ),
        )
        .unwrap();
    }
    let engine = Arc::new(SchemrEngine::new(repo));
    engine.reindex_full();

    let stop = Arc::new(AtomicBool::new(false));
    let reindexer = {
        let engine = engine.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut n = 0usize;
            while !stop.load(Ordering::Relaxed) {
                engine.reindex_full();
                n += 1;
            }
            n
        })
    };
    let mut ok = 0usize;
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(300);
    while std::time::Instant::now() < deadline {
        let results = engine
            .search(&SearchRequest::keywords(["patient", "height"]))
            .unwrap();
        assert!(
            !results.is_empty(),
            "index must never appear empty mid-swap"
        );
        ok += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let reindexes = reindexer.join().unwrap();
    assert!(reindexes > 0 && ok > 0);
}
