//! The workload/introspection plane end to end at the engine level:
//! zero-result accounting, the workload sketch feed, vacuum maintenance
//! records in the event log, and the deep-memory report.

use std::sync::Arc;

use schemr::{EngineConfig, SchemrEngine, SearchRequest};
use schemr_obs::TracerConfig;
use schemr_repo::{import, Repository};

fn seeded_repo() -> Arc<Repository> {
    let repo = Arc::new(Repository::new());
    import::import_str(
        &repo,
        "clinic",
        "a rural clinic",
        "CREATE TABLE patient (height REAL, gender TEXT, diagnosis TEXT)",
    )
    .unwrap();
    import::import_str(
        &repo,
        "store",
        "web shop",
        "CREATE TABLE orders (total DECIMAL, quantity INT, customer TEXT)",
    )
    .unwrap();
    repo
}

fn traced_engine(repo: Arc<Repository>) -> SchemrEngine {
    let engine = SchemrEngine::with_config(
        repo,
        EngineConfig {
            trace: TracerConfig {
                profile_hz: 0,
                ..TracerConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    engine.reindex_full();
    engine
}

#[test]
fn zero_result_searches_are_counted_and_annotated() {
    let engine = traced_engine(seeded_repo());

    // A hitting query: no empty increment, no results=0 annotation.
    let resp = engine
        .search_detailed(&SearchRequest::keywords(["patient", "height"]))
        .unwrap();
    assert!(!resp.results.is_empty());
    assert_eq!(engine.metrics().search_empty_total.get(), 0);

    // A missing query: counter increments and the *root* span carries
    // results=0 so empty searches are findable in the trace listing.
    let resp = engine
        .search_detailed(&SearchRequest::keywords(["zebra", "wingspan"]))
        .unwrap();
    assert!(resp.results.is_empty());
    assert_eq!(engine.metrics().search_empty_total.get(), 1);
    let trace_id = resp.trace_id.expect("tracing is on");
    let trace = engine.tracer().get(&trace_id).expect("trace retained");
    let root = &trace.spans[0];
    assert_eq!(root.name, "search");
    assert!(
        root.attrs.iter().any(|(k, v)| k == "results" && v == "0"),
        "root span annotates results=0: {:?}",
        root.attrs
    );
}

#[test]
fn workload_sketch_observes_the_search_path() {
    let engine = traced_engine(seeded_repo());
    for _ in 0..3 {
        engine
            .search(&SearchRequest::keywords(["patient", "height"]))
            .unwrap();
    }
    engine
        .search(&SearchRequest::keywords(["zebra", "wingspan"]))
        .unwrap();

    let snap = engine.workload_snapshot(10).expect("workload plane is on");
    assert_eq!(snap.total_queries, 4);
    assert_eq!(snap.zero_result_queries, 1);
    assert!(snap.distinct_terms_estimate >= 2.0);
    // The analyzed terms — not the raw keywords — are what the sketch
    // sees, and the repeated query dominates the term panel.
    let top_term = &snap.top_terms[0];
    assert_eq!(top_term.count, 3);
    // The zero-result panel holds only the missing query's shape.
    assert_eq!(snap.top_zero_shapes.len(), 1);
    assert_eq!(snap.top_zero_shapes[0].count, 1);

    // With tracing disabled there is no workload plane at all.
    let dark = SchemrEngine::with_config(
        seeded_repo(),
        EngineConfig {
            trace: TracerConfig::disabled(),
            ..EngineConfig::default()
        },
    );
    dark.reindex_full();
    dark.search(&SearchRequest::keywords(["patient"])).unwrap();
    assert!(dark.workload_snapshot(10).is_none());
    assert!(dark.tracer().workload().is_none());
}

#[test]
fn merge_writes_a_tagged_maintenance_record() {
    let dir = std::env::temp_dir().join(format!("schemr-merge-log-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("events.jsonl");
    let _ = std::fs::remove_file(&log_path);

    let repo = seeded_repo();
    let engine = SchemrEngine::with_config(
        repo.clone(),
        EngineConfig {
            trace: TracerConfig {
                profile_hz: 0,
                event_log_path: Some(log_path.clone()),
                ..TracerConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    engine.reindex_full();

    // Tombstone one of the two documents, then merge at a threshold the
    // 50% ratio clears.
    let id = repo.snapshot()[0].metadata.id;
    repo.remove(id).unwrap();
    engine.reindex_incremental();
    assert!(engine.maybe_merge(0.25), "merge should run");

    let events = schemr_obs::read_events_at(&log_path).unwrap();
    let merge = events
        .iter()
        .find(|e| e.query == "<merge>")
        .expect("merge record present");
    assert!(merge.trace_id.starts_with("merge-r"));
    assert_eq!(merge.phase_us.len(), 1);
    assert_eq!(merge.phase_us[0].0, "merge");
    let tag = |k: &str| {
        merge
            .tags
            .iter()
            .find(|(key, _)| key == k)
            .unwrap_or_else(|| panic!("missing tag {k}: {:?}", merge.tags))
            .1
            .clone()
    };
    assert_eq!(tag("tombstone_ratio_before"), "0.5000");
    assert_eq!(tag("tombstone_ratio_after"), "0.0000");
    assert_eq!(tag("docs_reclaimed"), "1");
    assert_eq!(tag("segments_before"), "1");
    assert_eq!(tag("segments_after"), "1");

    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn memory_report_accounts_for_resident_structures() {
    let engine = traced_engine(seeded_repo());
    engine
        .search(&SearchRequest::keywords(["patient", "height"]))
        .unwrap();

    let report = engine.memory_report();
    assert!(report.index_deep_bytes > report.index_postings_bytes);
    assert!(report.index_postings_bytes > 0);
    // The search above populated the candidate cache and the artifact
    // cache, and left one completed trace in the ring.
    assert!(report.candidate_cache_entries >= 1);
    assert_eq!(report.candidate_cache_budget, 512);
    assert!(report.artifact_cache_entries >= 1);
    assert!(report.artifact_cache_resident_bytes > 0);
    assert!(report.artifact_cache_resident_bytes <= report.artifact_cache_budget_bytes);
    assert_eq!(report.trace_ring_len, 1);
    assert!(report.trace_ring_bytes > 0);
    assert_eq!(report.event_log_bytes, None, "no event log configured");
}
