//! Property-based tests for the tightness-of-fit measurement.

use proptest::prelude::*;
use schemr::{tightness::tightness_of_fit, TightnessConfig};
use schemr_match::SimilarityMatrix;
use schemr_model::{DataType, Element, ElementId, ForeignKey, Schema};

/// A random multi-entity schema with FK edges plus a random similarity
/// matrix over it.
fn arb_case() -> impl Strategy<Value = (Schema, SimilarityMatrix)> {
    (
        2usize..5,                                               // entities
        1usize..5,                                               // attrs each
        proptest::collection::vec((0usize..5, 0usize..5), 0..4), // fk pairs
        1usize..5,                                               // query rows
        proptest::collection::vec(0.0f64..1.0, 1..40),           // matrix cells
    )
        .prop_map(|(n_entities, n_attrs, fks, rows, cells)| {
            let mut s = Schema::new("prop");
            let mut entities = Vec::new();
            for i in 0..n_entities {
                let e = s.add_root(Element::entity(format!("e{i}")));
                for j in 0..n_attrs {
                    s.add_child(e, Element::attribute(format!("a{i}x{j}"), DataType::Text));
                }
                entities.push(e);
            }
            for (a, b) in fks {
                let from = entities[a % entities.len()];
                let to = entities[b % entities.len()];
                if from != to {
                    s.add_foreign_key(ForeignKey {
                        from_entity: from,
                        from_attrs: vec![],
                        to_entity: to,
                        to_attrs: vec![],
                    });
                }
            }
            let mut m = SimilarityMatrix::zeros(rows, s.len());
            for (i, v) in cells.iter().enumerate() {
                let r = i % rows;
                let c = (i / rows) % s.len();
                m.set(r, c, *v);
            }
            (s, m)
        })
}

proptest! {
    /// The final score is bounded: 0 ≤ score ≤ 1 with mean aggregation
    /// (matrix values are ≤ 1 and penalties only subtract).
    #[test]
    fn score_is_bounded((s, m) in arb_case()) {
        let t = tightness_of_fit(&s, &m, &TightnessConfig::default());
        prop_assert!(t.score >= 0.0);
        prop_assert!(t.score <= 1.0 + 1e-12, "{}", t.score);
        prop_assert!(t.anchored_score >= t.score - 1e-12, "coverage only shrinks");
        prop_assert!((0.0..=1.0).contains(&t.coverage));
    }

    /// Zero penalties make anchor choice irrelevant: anchored score equals
    /// the plain mean of matched element scores.
    #[test]
    fn zero_penalties_reduce_to_plain_mean((s, m) in arb_case()) {
        let config = TightnessConfig {
            neighborhood_penalty: 0.0,
            unrelated_penalty: 0.0,
            ..TightnessConfig::default()
        };
        let t = tightness_of_fit(&s, &m, &config);
        let matched: Vec<f64> = m
            .element_scores()
            .into_iter()
            .filter(|&v| v >= config.min_element_score)
            .collect();
        if matched.is_empty() {
            prop_assert_eq!(t.anchored_score, 0.0);
        } else {
            let mean = matched.iter().sum::<f64>() / matched.len() as f64;
            prop_assert!((t.anchored_score - mean).abs() < 1e-9);
        }
    }

    /// t_max really is the max: recomputing each anchor's penalized mean
    /// by brute force never beats the reported score.
    #[test]
    fn reported_anchor_is_optimal((s, m) in arb_case()) {
        let config = TightnessConfig::default();
        let t = tightness_of_fit(&s, &m, &config);
        let nb = s.neighborhoods();
        let matched: Vec<(ElementId, f64)> = s
            .ids()
            .enumerate()
            .filter_map(|(col, id)| {
                let (_, v) = m.column_max(col);
                (v >= config.min_element_score).then_some((id, v))
            })
            .collect();
        if matched.is_empty() {
            prop_assert_eq!(t.anchored_score, 0.0);
            return Ok(());
        }
        for anchor in s.entities() {
            let total: f64 = matched
                .iter()
                .map(|&(id, v)| {
                    let p = match nb.classify(anchor, id) {
                        schemr_model::DistanceClass::SameEntity => 0.0,
                        schemr_model::DistanceClass::Neighborhood => config.neighborhood_penalty,
                        schemr_model::DistanceClass::Unrelated => config.unrelated_penalty,
                    };
                    (v - p).max(0.0)
                })
                .sum();
            let mean = total / matched.len() as f64;
            prop_assert!(mean <= t.anchored_score + 1e-9,
                "anchor {anchor} gives {mean} > reported {}", t.anchored_score);
        }
    }

    /// Raising penalties never raises the score.
    #[test]
    fn score_monotone_in_penalties((s, m) in arb_case(), extra in 0.0f64..0.5) {
        let base = TightnessConfig::default();
        let harsher = TightnessConfig {
            neighborhood_penalty: base.neighborhood_penalty + extra,
            unrelated_penalty: base.unrelated_penalty + extra,
            ..base
        };
        let t1 = tightness_of_fit(&s, &m, &base);
        let t2 = tightness_of_fit(&s, &m, &harsher);
        prop_assert!(t2.score <= t1.score + 1e-9);
    }

    /// Matched-element detail is consistent: every matched element clears
    /// the threshold, and terms index real matrix rows.
    #[test]
    fn matched_detail_is_consistent((s, m) in arb_case()) {
        let config = TightnessConfig::default();
        let t = tightness_of_fit(&s, &m, &config);
        for el in &t.matched {
            prop_assert!(el.score >= config.min_element_score);
            prop_assert!(el.term < m.rows());
            prop_assert!(el.element.index() < s.len());
        }
    }
}
