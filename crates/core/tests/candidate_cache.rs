//! Property-style check: the revision-keyed candidate cache never changes
//! what Phase 1 returns. A cached engine and an uncached engine walk the
//! same generated corpus through queries, repeats, mutations, and a
//! vacuum, and their ranked candidate lists must stay identical at every
//! step. Deterministic by construction (seeded corpus, fixed query
//! derivation) — no property-testing framework needed.

use std::sync::Arc;

use schemr::{EngineConfig, SchemrEngine, SearchRequest};
use schemr_corpus::{Corpus, CorpusConfig};
use schemr_index::Hit;
use schemr_model::SchemaId;
use schemr_repo::Repository;

/// Load every corpus schema into a fresh repository.
fn build_repo(corpus: &Corpus) -> (Arc<Repository>, Vec<SchemaId>) {
    let repo = Arc::new(Repository::new());
    let mut ids = Vec::with_capacity(corpus.schemas.len());
    for labeled in &corpus.schemas {
        ids.push(
            repo.insert(
                labeled.title.clone(),
                labeled.summary.clone(),
                labeled.schema.clone(),
            )
            .expect("corpus schemas validate"),
        );
    }
    (repo, ids)
}

/// Derive a deterministic keyword query from corpus schema `i`: its title
/// plus a stride of its element paths.
fn query_for(corpus: &Corpus, i: usize) -> SearchRequest {
    let labeled = &corpus.schemas[i];
    let mut words = vec![labeled.title.clone()];
    let paths: Vec<String> = labeled
        .schema
        .ids()
        .map(|el| labeled.schema.path(el))
        .collect();
    for path in paths.iter().step_by(3).take(3) {
        words.push(path.clone());
    }
    SearchRequest::keywords(words)
}

fn assert_same_hits(a: &[Hit], b: &[Hit], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: hit count differs");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{what}: ranking differs");
        assert_eq!(x.matched_terms, y.matched_terms, "{what}");
        assert!(
            (x.score - y.score).abs() < 1e-12,
            "{what}: scores differ: {} vs {}",
            x.score,
            y.score
        );
    }
}

#[test]
fn cached_and_uncached_candidates_agree_across_churn() {
    let corpus = Corpus::generate(&CorpusConfig::small(42));
    assert!(corpus.schemas.len() >= 20, "corpus too small to be a test");
    let (repo, ids) = build_repo(&corpus);

    let cached = SchemrEngine::with_config(
        repo.clone(),
        EngineConfig {
            candidate_cache_entries: 64,
            ..Default::default()
        },
    );
    let uncached = SchemrEngine::with_config(
        repo.clone(),
        EngineConfig {
            candidate_cache_entries: 0,
            ..Default::default()
        },
    );
    cached.reindex_full();
    uncached.reindex_full();

    let queries: Vec<SearchRequest> = (0..corpus.schemas.len())
        .step_by(2)
        .map(|i| query_for(&corpus, i))
        .collect();

    // Cold pass (fills the cache), warm pass (serves from it) — both must
    // match the uncached engine exactly.
    for pass in ["cold", "warm"] {
        for (qi, request) in queries.iter().enumerate() {
            let graph = request.query_graph();
            let a = cached.extract_candidates(&graph);
            let b = uncached.extract_candidates(&graph);
            assert_same_hits(&a, &b, &format!("{pass} pass, query {qi}"));
        }
    }
    let reg = cached.metrics_registry();
    let hits_after_warm = reg
        .counter_value("schemr_candidate_cache_hits_total", &[])
        .unwrap();
    assert!(
        hits_after_warm >= queries.len() as u64,
        "warm pass should be served from cache, got {hits_after_warm} hits"
    );

    // Mutate: delete a third of the schemas and re-add one. The revision
    // moves, so every cached entry is stale; answers must still match.
    for id in ids.iter().step_by(3) {
        repo.remove(*id).unwrap();
    }
    cached.reindex_incremental();
    uncached.reindex_incremental();
    for (qi, request) in queries.iter().enumerate() {
        let graph = request.query_graph();
        let a = cached.extract_candidates(&graph);
        let b = uncached.extract_candidates(&graph);
        assert_same_hits(&a, &b, &format!("post-delete, query {qi}"));
    }
    assert!(
        reg.counter_value("schemr_candidate_cache_invalidations_total", &[])
            .unwrap()
            > 0,
        "deletions must invalidate cached entries"
    );

    // A background merge changes ordinals but not results, and it leaves
    // the revision alone — cached entries stay valid and must still match
    // the uncached engine bit for bit.
    let revision_before = cached.index_revision();
    assert!(cached.maybe_merge(0.01));
    assert_eq!(
        cached.index_revision().mutations,
        revision_before.mutations,
        "merge must not move the revision"
    );
    for (qi, request) in queries.iter().enumerate() {
        let graph = request.query_graph();
        let a = cached.extract_candidates(&graph);
        let b = uncached.extract_candidates(&graph);
        assert_same_hits(&a, &b, &format!("post-merge, query {qi}"));
    }
}

#[test]
fn repeated_search_is_a_cache_hit_with_identical_response() {
    let corpus = Corpus::generate(&CorpusConfig::small(7));
    let (repo, _ids) = build_repo(&corpus);
    let engine = SchemrEngine::new(repo);
    engine.reindex_full();
    let request = query_for(&corpus, 0);

    let first = engine.search(&request).unwrap();
    let reg = engine.metrics_registry();
    let hits_before = reg
        .counter_value("schemr_candidate_cache_hits_total", &[])
        .unwrap();
    let second = engine.search(&request).unwrap();
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.id, b.id);
        assert!((a.score - b.score).abs() < 1e-12);
        assert!((a.coarse_score - b.coarse_score).abs() < 1e-12);
    }
    let hits_after = reg
        .counter_value("schemr_candidate_cache_hits_total", &[])
        .unwrap();
    assert!(
        hits_after > hits_before,
        "second search should hit the cache"
    );
}
