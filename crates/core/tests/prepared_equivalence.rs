//! The prepared-vs-naive equivalence oracle.
//!
//! Prepared matching (hashed gram signatures + the revision-keyed match-
//! artifact cache) is a pure performance optimization: it must never
//! change a single bit of any similarity matrix or final score. Two
//! layers of checks enforce that over a generated corpus:
//!
//! * matcher level — `Ensemble::run_prepared` reproduces
//!   `Ensemble::run`'s combined matrix bitwise for keyword and fragment
//!   queries across corpus schemas;
//! * engine level — an engine with the artifact cache enabled and one
//!   with it disabled (`match_artifact_cache_bytes: 0`, which also turns
//!   off the prepared path) return identical result lists — same ids,
//!   bitwise-equal scores — through cold/warm passes and add / replace /
//!   remove churn;
//! * early-exit level — the ensemble early exit
//!   (`EngineConfig::phase2_early_exit`) must likewise never change a
//!   bit of the returned top k, across a top-k grid and the same churn
//!   sequence.
//!
//! Deterministic by construction (seeded corpus, fixed query derivation).

use std::sync::Arc;

use schemr::{EngineConfig, SchemrEngine, SearchRequest};
use schemr_corpus::{Corpus, CorpusConfig};
use schemr_match::{Ensemble, TokenMatcher};
use schemr_model::{QueryGraph, SchemaId};
use schemr_repo::Repository;

/// Load every corpus schema into a fresh repository.
fn build_repo(corpus: &Corpus) -> (Arc<Repository>, Vec<SchemaId>) {
    let repo = Arc::new(Repository::new());
    let mut ids = Vec::with_capacity(corpus.schemas.len());
    for labeled in &corpus.schemas {
        ids.push(
            repo.insert(
                labeled.title.clone(),
                labeled.summary.clone(),
                labeled.schema.clone(),
            )
            .expect("corpus schemas validate"),
        );
    }
    (repo, ids)
}

/// Derive a deterministic keyword query from corpus schema `i`: its title
/// plus a stride of its element paths.
fn query_for(corpus: &Corpus, i: usize) -> SearchRequest {
    let labeled = &corpus.schemas[i];
    let mut words = vec![labeled.title.clone()];
    let paths: Vec<String> = labeled
        .schema
        .ids()
        .map(|el| labeled.schema.path(el))
        .collect();
    for path in paths.iter().step_by(3).take(3) {
        words.push(path.clone());
    }
    SearchRequest::keywords(words)
}

#[test]
fn prepared_matchers_reproduce_naive_matrices_bitwise() {
    let corpus = Corpus::generate(&CorpusConfig::small(11));
    let n = corpus.schemas.len();
    assert!(n >= 10, "corpus too small to be a test");
    let mut ensemble = Ensemble::standard();
    ensemble.push(Box::new(TokenMatcher::new()), 0.5);

    for i in (0..n).step_by(4) {
        // A mixed query: one keyword plus a schema fragment, so the
        // name, context, and token matchers all produce nonzero rows.
        let mut q = QueryGraph::new();
        q.add_keyword(corpus.schemas[i].title.clone());
        q.add_fragment(corpus.schemas[(i + 1) % n].schema.clone());
        let terms = q.terms();
        let equery = ensemble.prepare_query(&terms, &q);
        for j in (0..n).step_by(3) {
            let candidate = &corpus.schemas[j].schema;
            let pcand = ensemble.prepare(candidate);
            let naive = ensemble.run(&terms, &q, candidate, true);
            let prepared = ensemble.run_prepared(&equery, &terms, &q, &pcand, candidate, true);
            assert_eq!(naive.matrix.rows(), prepared.matrix.rows());
            assert_eq!(naive.matrix.cols(), prepared.matrix.cols());
            for r in 0..naive.matrix.rows() {
                for c in 0..naive.matrix.cols() {
                    assert_eq!(
                        prepared.matrix.get(r, c).to_bits(),
                        naive.matrix.get(r, c).to_bits(),
                        "query {i} × candidate {j}, cell ({r},{c})"
                    );
                }
            }
            for (s, t) in prepared.strengths.iter().zip(naive.strengths.iter()) {
                assert_eq!(s.to_bits(), t.to_bits(), "query {i} × candidate {j}");
            }
        }
    }
}

fn assert_same_results(
    prepared: &SchemrEngine,
    naive: &SchemrEngine,
    queries: &[SearchRequest],
    what: &str,
) {
    for (qi, request) in queries.iter().enumerate() {
        let a = prepared.search(request).unwrap();
        let b = naive.search(request).unwrap();
        assert_eq!(a.len(), b.len(), "{what}, query {qi}: result count differs");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id, "{what}, query {qi}: ranking differs");
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "{what}, query {qi}: scores differ: {} vs {}",
                x.score,
                y.score
            );
            assert_eq!(x.coarse_score.to_bits(), y.coarse_score.to_bits());
        }
    }
}

#[test]
fn prepared_engine_matches_naive_engine_across_churn() {
    let corpus = Corpus::generate(&CorpusConfig::small(23));
    let n = corpus.schemas.len();
    let (repo, ids) = build_repo(&corpus);

    let prepared = SchemrEngine::with_config(
        repo.clone(),
        EngineConfig {
            match_artifact_cache_bytes: 4 * 1024 * 1024,
            ..Default::default()
        },
    );
    let naive = SchemrEngine::with_config(
        repo.clone(),
        EngineConfig {
            match_artifact_cache_bytes: 0,
            ..Default::default()
        },
    );
    prepared.reindex_full();
    naive.reindex_full();

    let mut queries: Vec<SearchRequest> =
        (0..n).step_by(2).map(|i| query_for(&corpus, i)).collect();
    // One fragment query so the context matcher's prepared path runs end
    // to end.
    queries.push(
        SearchRequest::parse("", &["CREATE TABLE patient (height REAL, gender TEXT)"]).unwrap(),
    );

    // Cold pass fills the artifact cache; warm pass serves from it.
    assert_same_results(&prepared, &naive, &queries, "cold pass");
    assert_same_results(&prepared, &naive, &queries, "warm pass");
    let reg = prepared.metrics_registry();
    assert!(
        reg.counter_value("schemr_match_artifact_cache_hits_total", &[])
            .unwrap()
            > 0,
        "warm pass should reuse prepared artifacts"
    );

    // Churn: add a schema, replace another, remove a third. Revisions
    // move, so cached artifacts for the touched schemas are stale.
    repo.insert(
        "churn new".to_string(),
        "added mid-test".to_string(),
        corpus.schemas[1].schema.clone(),
    )
    .unwrap();
    repo.update(ids[0], corpus.schemas[n - 1].schema.clone())
        .unwrap();
    repo.remove(ids[2]).unwrap();
    prepared.reindex_incremental();
    naive.reindex_incremental();

    assert_same_results(&prepared, &naive, &queries, "post-churn pass");
    assert!(
        reg.counter_value("schemr_match_artifact_cache_invalidations_total", &[])
            .unwrap()
            > 0,
        "the replaced schema's artifacts must be invalidated"
    );
    // And a second post-churn pass is warm again.
    let hits_before = reg
        .counter_value("schemr_match_artifact_cache_hits_total", &[])
        .unwrap();
    assert_same_results(&prepared, &naive, &queries, "post-churn warm pass");
    assert!(
        reg.counter_value("schemr_match_artifact_cache_hits_total", &[])
            .unwrap()
            > hits_before
    );
}

/// The early-exit bitwise oracle: an engine with the ensemble early exit
/// on and one with it off must return identical top-k lists — same ids,
/// same order, bitwise-equal scores — for every query in a top-k grid,
/// before and after repository churn. The exit engine runs sequentially
/// so the floor fills in a deterministic order and the prune rate is
/// reproducible; the parallel case is covered by the engine's unit
/// tests.
#[test]
fn early_exit_engine_matches_exhaustive_engine_across_topk_and_churn() {
    let corpus = Corpus::generate(&CorpusConfig::small(31));
    let n = corpus.schemas.len();
    let (repo, ids) = build_repo(&corpus);

    let exit = SchemrEngine::with_config(
        repo.clone(),
        EngineConfig {
            match_threads: 1,
            phase2_early_exit: true,
            ..Default::default()
        },
    );
    let full = SchemrEngine::with_config(
        repo.clone(),
        EngineConfig {
            match_threads: 1,
            phase2_early_exit: false,
            ..Default::default()
        },
    );
    exit.reindex_full();
    full.reindex_full();

    // The grid: every second corpus query × {1, 3, 10, default} result
    // limits, plus one fragment query per limit.
    let base: Vec<SearchRequest> = (0..n).step_by(2).map(|i| query_for(&corpus, i)).collect();
    let queries: Vec<SearchRequest> = base
        .iter()
        .flat_map(|q| {
            [
                q.clone().with_limit(1),
                q.clone().with_limit(3),
                q.clone().with_limit(10),
                q.clone(),
            ]
        })
        .chain([
            SearchRequest::parse("", &["CREATE TABLE patient (height REAL, gender TEXT)"])
                .unwrap()
                .with_limit(3),
        ])
        .collect();

    assert_same_results(&exit, &full, &queries, "pre-churn grid");

    // The exhaustive arm must never prune; the exit arm's prune counter
    // only moves when a bound actually cleared the floor, which the
    // corpus does not guarantee — so assert the invariant, not a rate.
    let reg = exit.metrics_registry();
    assert_eq!(
        full.metrics_registry()
            .counter_value("schemr_match_candidates_pruned_total", &[]),
        Some(0)
    );
    let pruned = reg
        .counter_value("schemr_match_candidates_pruned_total", &[])
        .unwrap();
    let skipped = reg
        .counter_value("schemr_match_matchers_skipped_total", &[])
        .unwrap();
    assert!(
        skipped >= pruned,
        "each pruned candidate skips at least one matcher"
    );

    // Churn: add, replace, remove — revisions move, cached artifacts for
    // the touched schemas go stale, and the grid must still agree.
    repo.insert(
        "churn new".to_string(),
        "added mid-test".to_string(),
        corpus.schemas[1].schema.clone(),
    )
    .unwrap();
    repo.update(ids[0], corpus.schemas[n - 1].schema.clone())
        .unwrap();
    repo.remove(ids[2]).unwrap();
    exit.reindex_incremental();
    full.reindex_incremental();

    assert_same_results(&exit, &full, &queries, "post-churn grid");
}
