//! The scheduled offline indexer.
//!
//! "At scheduled intervals, an offline Lucene Text Indexer flattens schemas
//! from the Schema Repository to construct or update the document index."
//!
//! [`IndexScheduler`] drives [`crate::SchemrEngine::reindex_incremental`]
//! either manually (deterministic `tick()` for tests and benches) or from a
//! background thread at a fixed interval.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::SchemrEngine;

/// Deleted-to-total document ratio at which a tick merges the index's
/// tombstoned segments.
pub const DEFAULT_MERGE_THRESHOLD: f64 = 0.3;

/// Drives incremental re-indexing.
pub struct IndexScheduler {
    engine: Arc<SchemrEngine>,
    ticks: AtomicU64,
    applied: AtomicU64,
    merges: AtomicU64,
    merge_threshold: f64,
}

impl IndexScheduler {
    /// A scheduler over an engine, merging tombstoned segments at
    /// [`DEFAULT_MERGE_THRESHOLD`].
    pub fn new(engine: Arc<SchemrEngine>) -> Self {
        IndexScheduler {
            engine,
            ticks: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            merge_threshold: DEFAULT_MERGE_THRESHOLD,
        }
    }

    /// Override the tombstone ratio that triggers a background merge.
    /// `0` disables scheduled merging entirely.
    pub fn with_merge_threshold(mut self, threshold: f64) -> Self {
        self.merge_threshold = threshold;
        self
    }

    /// One scheduling tick: apply pending repository changes, then merge
    /// tombstoned segments if deletions have accumulated past the
    /// threshold — without this, put/delete churn grows tombstones (and
    /// Phase 1 scan work) without bound. The merge compacts off-lock, so
    /// concurrent searches never stall behind a tick. Returns the number
    /// of changes applied.
    pub fn tick(&self) -> usize {
        let applied = self.engine.reindex_incremental();
        self.ticks.fetch_add(1, Ordering::Relaxed);
        self.applied.fetch_add(applied as u64, Ordering::Relaxed);
        if self.engine.maybe_merge(self.merge_threshold) {
            self.merges.fetch_add(1, Ordering::Relaxed);
        }
        applied
    }

    /// Ticks executed so far.
    pub fn tick_count(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Total changes applied so far.
    pub fn applied_count(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Background merges triggered by ticks so far.
    pub fn merge_count(&self) -> u64 {
        self.merges.load(Ordering::Relaxed)
    }

    /// Run ticks on a background thread every `interval` until the
    /// returned handle is stopped or dropped.
    pub fn run_background(self: Arc<Self>, interval: Duration) -> SchedulerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let scheduler = self;
        let join = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                scheduler.tick();
                // Sleep in small slices so stop() is responsive.
                let mut remaining = interval;
                let slice = Duration::from_millis(10);
                while remaining > Duration::ZERO && !stop2.load(Ordering::Relaxed) {
                    let nap = remaining.min(slice);
                    std::thread::sleep(nap);
                    remaining = remaining.saturating_sub(nap);
                }
            }
        });
        SchedulerHandle {
            stop,
            join: Some(join),
        }
    }
}

/// Handle to a background scheduler thread; stops it on drop.
pub struct SchedulerHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl SchedulerHandle {
    /// Stop the background thread and wait for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for SchedulerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SearchRequest;
    use schemr_repo::{import::import_str, Repository};

    fn engine() -> Arc<SchemrEngine> {
        let repo = Arc::new(Repository::new());
        import_str(
            &repo,
            "seed",
            "",
            "CREATE TABLE seed (a INT, b INT, c INT, d INT)",
        )
        .unwrap();
        let engine = Arc::new(SchemrEngine::new(repo));
        engine.reindex_full();
        engine
    }

    #[test]
    fn manual_ticks_apply_changes() {
        let engine = engine();
        let scheduler = IndexScheduler::new(engine.clone());
        assert_eq!(scheduler.tick(), 0);
        import_str(
            engine.repository(),
            "new",
            "",
            "CREATE TABLE sighting (species TEXT, latitude REAL, longitude REAL, observer TEXT)",
        )
        .unwrap();
        assert_eq!(scheduler.tick(), 1);
        assert_eq!(scheduler.tick_count(), 2);
        assert_eq!(scheduler.applied_count(), 1);
        let results = engine
            .search(&SearchRequest::keywords(["species"]))
            .unwrap();
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn ticks_merge_once_tombstones_cross_the_threshold() {
        let repo = Arc::new(Repository::new());
        let mut ids = Vec::new();
        for i in 0..5 {
            ids.push(
                import_str(
                    &repo,
                    &format!("s{i}"),
                    "",
                    "CREATE TABLE t (a INT, b INT, c INT, d INT)",
                )
                .unwrap(),
            );
        }
        let engine = Arc::new(SchemrEngine::new(repo.clone()));
        engine.reindex_full();
        let scheduler = IndexScheduler::new(engine.clone()).with_merge_threshold(0.5);
        // One deletion: 1/5 tombstoned, below threshold — no merge.
        repo.remove(ids[0]).unwrap();
        scheduler.tick();
        assert_eq!(scheduler.merge_count(), 0);
        assert_eq!(engine.index_stats().total_docs, 5);
        // Two more: 3/5 tombstoned, over threshold — the merge compacts.
        let revision_before = engine.index_revision();
        repo.remove(ids[1]).unwrap();
        repo.remove(ids[2]).unwrap();
        scheduler.tick();
        assert_eq!(scheduler.merge_count(), 1);
        assert_eq!(engine.index_stats().total_docs, 2);
        assert_eq!(engine.index_stats().live_docs, 2);
        assert_eq!(
            engine
                .metrics_registry()
                .counter_value("schemr_index_merges_total", &[]),
            Some(1)
        );
        // The merge itself is invisible to revision-keyed caches: only the
        // two removes moved the mutation count.
        assert_eq!(
            engine.index_revision().mutations,
            revision_before.mutations + 2
        );
        // Steady state: nothing left to reclaim, no further merges.
        scheduler.tick();
        assert_eq!(scheduler.merge_count(), 1);
    }

    #[test]
    fn zero_threshold_disables_scheduled_merge() {
        let engine = engine();
        let id = import_str(
            engine.repository(),
            "gone",
            "",
            "CREATE TABLE gone (x INT, y INT, z INT, w INT)",
        )
        .unwrap();
        let scheduler = IndexScheduler::new(engine.clone()).with_merge_threshold(0.0);
        scheduler.tick();
        engine.repository().remove(id).unwrap();
        scheduler.tick();
        assert_eq!(scheduler.merge_count(), 0);
        // seed + gone slots remain; the tombstone was not reclaimed.
        assert_eq!(engine.index_stats().total_docs, 2);
        assert_eq!(engine.index_stats().live_docs, 1);
    }

    #[test]
    fn background_scheduler_indexes_within_the_interval() {
        let engine = engine();
        let scheduler = Arc::new(IndexScheduler::new(engine.clone()));
        let handle = scheduler.clone().run_background(Duration::from_millis(20));
        import_str(
            engine.repository(),
            "bg",
            "",
            "CREATE TABLE watershed (area REAL, rainfall REAL, elevation REAL, name TEXT)",
        )
        .unwrap();
        // Wait for the scheduler to pick it up.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let hits = engine
                .search(&SearchRequest::keywords(["watershed", "rainfall"]))
                .unwrap();
            if !hits.is_empty() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "scheduler never indexed"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.stop();
        assert!(scheduler.tick_count() >= 1);
    }

    #[test]
    fn handle_drop_stops_the_thread() {
        let engine = engine();
        let scheduler = Arc::new(IndexScheduler::new(engine));
        let handle = scheduler.clone().run_background(Duration::from_millis(10));
        drop(handle); // must not hang
    }
}
