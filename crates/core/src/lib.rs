//! # schemr
//!
//! The Schemr schema search engine — a Rust reproduction of *"Exploring
//! Schema Repositories with Schemr"* (Chen, Kannan, Madhavan, Halevy;
//! SIGMOD 2009 demo / SIGMOD Record 40(1)).
//!
//! Schemr lets a database designer search a repository of schemas by
//! keyword and *by example* (uploading a DDL or XSD fragment), ranking
//! results by semantic intent rather than bag-of-words overlap. The search
//! algorithm has three phases (Figure 3 of the paper):
//!
//! 1. **Candidate Extraction** ([`schemr_index`]) — the query graph is
//!    flattened into keywords and run against a TF/IDF document index with
//!    a coordination factor; the top *n* candidates survive.
//! 2. **Schema Matching** ([`schemr_match`]) — an ensemble of fine-grained
//!    matchers (name n-gram, context, …) scores every (query element ×
//!    schema element) pair into a combined similarity matrix.
//! 3. **Tightness-of-fit** ([`tightness`]) — per-element scores are
//!    penalized by structural distance to an anchor entity (same entity /
//!    FK neighborhood / unrelated) and averaged; the best anchor's score
//!    ranks the schema: `t_max = max_A mean(S − P_A)`.
//!
//! # Quickstart
//!
//! ```
//! use schemr::{SchemrEngine, SearchRequest};
//! use schemr_repo::{import, Repository};
//! use std::sync::Arc;
//!
//! let repo = Arc::new(Repository::new());
//! import::import_str(&repo, "clinic", "a rural clinic",
//!     "CREATE TABLE patient (height REAL, gender TEXT, diagnosis TEXT)").unwrap();
//! import::import_str(&repo, "store", "web shop",
//!     "CREATE TABLE orders (total DECIMAL, quantity INT, customer TEXT)").unwrap();
//!
//! let engine = SchemrEngine::new(repo);
//! engine.reindex_full();
//!
//! let request = SearchRequest::keywords(["patient", "height", "gender"]);
//! let results = engine.search(&request).unwrap();
//! assert_eq!(results[0].title, "clinic");
//! ```

pub mod engine;
pub mod metrics;
pub mod request;
pub mod result;
pub mod scheduler;
pub mod tightness;

mod cache;
mod query;

pub use engine::{EngineConfig, MemoryReport, SchemrEngine, SearchError};
pub use metrics::EngineMetrics;
pub use query::{parse_keywords, QueryParseError};
pub use request::SearchRequest;
pub use result::{MatcherTiming, PhaseTimings, SearchResponse, SearchResult, SearchTrace};
pub use scheduler::{IndexScheduler, DEFAULT_MERGE_THRESHOLD};
pub use tightness::{MatchedElement, TightnessConfig, TightnessScore};
