//! Engine-level observability: the shared registry and the handles the
//! search path records into.
//!
//! Every [`crate::SchemrEngine`] owns one [`EngineMetrics`], which owns
//! (or is handed) an `Arc<MetricsRegistry>`. The handles are registered
//! once at construction so the hot path pays only relaxed atomic adds;
//! the HTTP layer renders the same registry at `GET /metrics`.

use std::sync::Arc;

use schemr_index::IndexMetrics;
use schemr_obs::{Counter, Histogram, MetricsRegistry, LATENCY_BUCKETS};

/// Pre-registered metric handles for one engine.
///
/// Exported families (all prefixed `schemr_`):
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `schemr_search_requests_total` | counter | searches started |
/// | `schemr_search_errors_total` | counter | searches rejected (empty query) |
/// | `schemr_search_empty_total` | counter | searches that returned zero results |
/// | `schemr_candidates_evaluated_total` | counter | Phase 1 survivors matched in Phase 2 |
/// | `schemr_match_candidates_pruned_total` | counter | candidates the ensemble early exit pruned below the top-k floor |
/// | `schemr_match_matchers_skipped_total` | counter | matcher invocations those prunes skipped |
/// | `schemr_match_threads_used_total` | counter | threads used by Phase 2, summed per search |
/// | `schemr_phase_seconds{phase=…}` | histogram | per-phase wall time per search |
/// | `schemr_matcher_seconds{matcher=…}` | histogram | per-matcher wall time per search |
/// | `schemr_reindex_seconds` | histogram | full re-index wall time |
/// | `schemr_candidate_cache_{hits,misses,evictions,invalidations}_total` | counter | Phase 1 candidate-cache traffic |
/// | `schemr_match_artifact_cache_{hits,misses,evictions,invalidations}_total` | counter | Phase 2 match-artifact-cache traffic |
/// | `schemr_match_artifact_cache_{bytes_inserted,bytes_evicted}_total` | counter | artifact bytes admitted/released (difference ≈ resident bytes) |
/// | `schemr_index_*_total` | counter | term/posting/candidate/vacuum work inside the index |
pub struct EngineMetrics {
    registry: Arc<MetricsRegistry>,
    /// Searches started (`SchemrEngine::search*` calls).
    pub searches_total: Arc<Counter>,
    /// Searches rejected before Phase 1 (empty query).
    pub search_errors_total: Arc<Counter>,
    /// Searches that completed but returned zero results. Divide by
    /// `searches_total` for the zero-result rate — the workload plane's
    /// headline relevance signal.
    pub search_empty_total: Arc<Counter>,
    /// Candidates that reached the Phase 2 matcher ensemble.
    pub candidates_evaluated_total: Arc<Counter>,
    /// Candidates the ensemble early exit pruned: their matcher bounds
    /// proved they could not enter the top k, so their remaining
    /// matchers never ran. Divide by `candidates_evaluated_total` for
    /// the Phase 2 prune rate.
    pub match_candidates_pruned_total: Arc<Counter>,
    /// Matcher invocations skipped by those prunes (a candidate pruned
    /// before matcher i of n skips n−i invocations).
    pub match_matchers_skipped_total: Arc<Counter>,
    /// Threads used by Phase 2, summed over searches; divide by
    /// `searches_total` for mean utilization.
    pub match_threads_used_total: Arc<Counter>,
    /// Phase 1 wall time.
    pub phase_candidate_extraction: Arc<Histogram>,
    /// Phase 2 wall time.
    pub phase_matching: Arc<Histogram>,
    /// Phase 3 wall time.
    pub phase_scoring: Arc<Histogram>,
    /// Full re-index wall time.
    pub reindex_seconds: Arc<Histogram>,
    /// Phase 1 candidate-cache lookups answered from the cache.
    pub candidate_cache_hits: Arc<Counter>,
    /// Phase 1 candidate-cache lookups that fell through to the index.
    pub candidate_cache_misses: Arc<Counter>,
    /// Candidate-cache entries evicted under capacity pressure.
    pub candidate_cache_evictions: Arc<Counter>,
    /// Candidate-cache entries dropped because the index revision moved.
    pub candidate_cache_invalidations: Arc<Counter>,
    /// Phase 2 artifact-cache lookups answered from the cache.
    pub match_artifact_cache_hits: Arc<Counter>,
    /// Phase 2 artifact-cache lookups that fell through to preparation.
    pub match_artifact_cache_misses: Arc<Counter>,
    /// Artifact-cache entries evicted under byte-budget pressure.
    pub match_artifact_cache_evictions: Arc<Counter>,
    /// Artifact-cache entries dropped because the schema revision or the
    /// matcher set moved.
    pub match_artifact_cache_invalidations: Arc<Counter>,
    /// Artifact bytes admitted into the cache.
    pub match_artifact_cache_bytes_inserted: Arc<Counter>,
    /// Artifact bytes released by eviction.
    pub match_artifact_cache_bytes_evicted: Arc<Counter>,
    /// Counters threaded into every index the engine builds.
    pub index: IndexMetrics,
}

impl EngineMetrics {
    /// Metrics backed by a fresh private registry.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// Metrics registered into an existing (possibly shared) registry.
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        let phase = |name: &str| {
            registry.histogram_with(
                "schemr_phase_seconds",
                "Wall time of each search phase, per search.",
                &[("phase", name)],
                LATENCY_BUCKETS,
            )
        };
        EngineMetrics {
            searches_total: registry.counter(
                "schemr_search_requests_total",
                "Searches started against the engine.",
            ),
            search_errors_total: registry.counter(
                "schemr_search_errors_total",
                "Searches rejected before candidate extraction (empty query).",
            ),
            search_empty_total: registry.counter(
                "schemr_search_empty_total",
                "Searches that completed but returned zero results.",
            ),
            candidates_evaluated_total: registry.counter(
                "schemr_candidates_evaluated_total",
                "Phase 1 candidates evaluated by the Phase 2 matcher ensemble.",
            ),
            match_candidates_pruned_total: registry.counter(
                "schemr_match_candidates_pruned_total",
                "Candidates pruned by the Phase 2 ensemble early exit before all matchers ran.",
            ),
            match_matchers_skipped_total: registry.counter(
                "schemr_match_matchers_skipped_total",
                "Matcher invocations skipped by the Phase 2 ensemble early exit.",
            ),
            match_threads_used_total: registry.counter(
                "schemr_match_threads_used_total",
                "Threads used by Phase 2 matching, summed per search.",
            ),
            phase_candidate_extraction: phase("candidate_extraction"),
            phase_matching: phase("matching"),
            phase_scoring: phase("scoring"),
            reindex_seconds: registry.histogram(
                "schemr_reindex_seconds",
                "Wall time of full index rebuilds.",
                LATENCY_BUCKETS,
            ),
            candidate_cache_hits: registry.counter(
                "schemr_candidate_cache_hits_total",
                "Phase 1 candidate-cache lookups answered from the cache.",
            ),
            candidate_cache_misses: registry.counter(
                "schemr_candidate_cache_misses_total",
                "Phase 1 candidate-cache lookups that fell through to the index.",
            ),
            candidate_cache_evictions: registry.counter(
                "schemr_candidate_cache_evictions_total",
                "Candidate-cache entries evicted under capacity pressure.",
            ),
            candidate_cache_invalidations: registry.counter(
                "schemr_candidate_cache_invalidations_total",
                "Candidate-cache entries dropped because the index revision moved.",
            ),
            match_artifact_cache_hits: registry.counter(
                "schemr_match_artifact_cache_hits_total",
                "Phase 2 match-artifact-cache lookups answered from the cache.",
            ),
            match_artifact_cache_misses: registry.counter(
                "schemr_match_artifact_cache_misses_total",
                "Phase 2 match-artifact-cache lookups that fell through to preparation.",
            ),
            match_artifact_cache_evictions: registry.counter(
                "schemr_match_artifact_cache_evictions_total",
                "Match-artifact-cache entries evicted under byte-budget pressure.",
            ),
            match_artifact_cache_invalidations: registry.counter(
                "schemr_match_artifact_cache_invalidations_total",
                "Match-artifact-cache entries dropped because the schema revision or matcher set moved.",
            ),
            match_artifact_cache_bytes_inserted: registry.counter(
                "schemr_match_artifact_cache_bytes_inserted_total",
                "Prepared-artifact bytes admitted into the match-artifact cache.",
            ),
            match_artifact_cache_bytes_evicted: registry.counter(
                "schemr_match_artifact_cache_bytes_evicted_total",
                "Prepared-artifact bytes released by match-artifact-cache eviction.",
            ),
            index: IndexMetrics::registered(&registry),
            registry,
        }
    }

    /// The backing registry (render it with
    /// [`MetricsRegistry::render_prometheus`]).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The per-matcher wall-time histogram for `matcher` (registered on
    /// first use, so replacement ensembles get series automatically).
    pub fn matcher_histogram(&self, matcher: &str) -> Arc<Histogram> {
        self.registry.histogram_with(
            "schemr_matcher_seconds",
            "Wall time spent in each matcher, per search.",
            &[("matcher", matcher)],
            LATENCY_BUCKETS,
        )
    }
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_every_engine_family() {
        let m = EngineMetrics::new();
        let names = m.registry().family_names();
        for expected in [
            "schemr_search_requests_total",
            "schemr_search_errors_total",
            "schemr_search_empty_total",
            "schemr_candidates_evaluated_total",
            "schemr_match_candidates_pruned_total",
            "schemr_match_matchers_skipped_total",
            "schemr_match_threads_used_total",
            "schemr_phase_seconds",
            "schemr_reindex_seconds",
            "schemr_index_terms_looked_up_total",
            "schemr_index_postings_scanned_total",
            "schemr_index_candidates_returned_total",
            "schemr_index_vacuums_total",
            "schemr_index_merges_total",
            "schemr_candidate_cache_hits_total",
            "schemr_candidate_cache_misses_total",
            "schemr_candidate_cache_evictions_total",
            "schemr_candidate_cache_invalidations_total",
            "schemr_match_artifact_cache_hits_total",
            "schemr_match_artifact_cache_misses_total",
            "schemr_match_artifact_cache_evictions_total",
            "schemr_match_artifact_cache_invalidations_total",
            "schemr_match_artifact_cache_bytes_inserted_total",
            "schemr_match_artifact_cache_bytes_evicted_total",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn matcher_histograms_register_lazily_and_are_shared() {
        let m = EngineMetrics::new();
        let a = m.matcher_histogram("name");
        a.observe(0.001);
        let snap = m
            .registry()
            .histogram_snapshot("schemr_matcher_seconds", &[("matcher", "name")])
            .unwrap();
        assert_eq!(snap.count, 1);
    }
}
