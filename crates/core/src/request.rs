//! Search requests.

use schemr_model::{QueryGraph, Schema};

use crate::query::{build_query_graph, QueryParseError};

/// A search request: keywords and/or schema fragments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchRequest {
    /// Free keywords.
    pub keywords: Vec<String>,
    /// Already-parsed schema fragments.
    pub fragments: Vec<Schema>,
    /// Maximum results to return (`None` → engine default).
    pub limit: Option<usize>,
    /// Attach a [`crate::SearchTrace`] (per-phase and per-matcher
    /// timings, candidate counts) to the response.
    pub explain: bool,
    /// Client-supplied trace id (e.g. from `X-Schemr-Trace-Id`). When
    /// `None` — or invalid — the engine's tracer assigns a monotonic one;
    /// either way the id used comes back in
    /// [`crate::SearchResponse::trace_id`].
    pub trace_id: Option<String>,
    /// How long the request waited in the serving layer's admission
    /// queue before a worker picked it up. Annotated onto the root
    /// `search` span so queueing delay is separable from engine time
    /// when diagnosing slow requests.
    pub queue_wait: Option<std::time::Duration>,
}

impl SearchRequest {
    /// A keyword-only request.
    pub fn keywords<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SearchRequest {
            keywords: words.into_iter().map(Into::into).collect(),
            ..Default::default()
        }
    }

    /// A fragment-only request.
    pub fn fragment(fragment: Schema) -> Self {
        SearchRequest {
            fragments: vec![fragment],
            ..Default::default()
        }
    }

    /// Parse raw user input: a keyword line plus raw fragment sources
    /// (DDL/XSD/header, autodetected).
    pub fn parse(keyword_line: &str, fragment_sources: &[&str]) -> Result<Self, QueryParseError> {
        let keywords = crate::query::parse_keywords(keyword_line);
        let sources: Vec<String> = fragment_sources.iter().map(|s| s.to_string()).collect();
        // Reuse build_query_graph for validation, then keep the parsed
        // fragments.
        let graph = build_query_graph(&keywords, &sources)?;
        Ok(SearchRequest {
            keywords,
            fragments: graph.fragments().to_vec(),
            limit: None,
            explain: false,
            trace_id: None,
            queue_wait: None,
        })
    }

    /// Add a keyword, builder-style.
    pub fn with_keyword(mut self, kw: impl Into<String>) -> Self {
        self.keywords.push(kw.into());
        self
    }

    /// Add a fragment, builder-style.
    pub fn with_fragment(mut self, fragment: Schema) -> Self {
        self.fragments.push(fragment);
        self
    }

    /// Cap the number of results, builder-style.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Request an explain trace, builder-style.
    pub fn with_explain(mut self) -> Self {
        self.explain = true;
        self
    }

    /// Supply a trace id, builder-style.
    pub fn with_trace_id(mut self, trace_id: impl Into<String>) -> Self {
        self.trace_id = Some(trace_id.into());
        self
    }

    /// The query graph for this request.
    pub fn query_graph(&self) -> QueryGraph {
        let mut q = QueryGraph::new();
        for kw in &self.keywords {
            q.add_keyword(kw.clone());
        }
        for f in &self.fragments {
            q.add_fragment(f.clone());
        }
        q
    }

    /// True when nothing searchable was supplied.
    pub fn is_empty(&self) -> bool {
        self.query_graph().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, SchemaBuilder};

    #[test]
    fn builders_compose() {
        let frag = SchemaBuilder::new("f")
            .entity("patient", |e| e.attr("height", DataType::Real))
            .build_unchecked();
        let r = SearchRequest::keywords(["diagnosis"])
            .with_keyword("gender")
            .with_fragment(frag)
            .with_limit(5);
        assert_eq!(r.keywords.len(), 2);
        assert_eq!(r.fragments.len(), 1);
        assert_eq!(r.limit, Some(5));
        let q = r.query_graph();
        assert_eq!(
            q.flat_texts(),
            vec!["patient", "height", "diagnosis", "gender"]
        );
    }

    #[test]
    fn parse_combines_keywords_and_fragments() {
        let r =
            SearchRequest::parse("patient, height", &["CREATE TABLE visit (date DATE)"]).unwrap();
        assert_eq!(r.keywords, vec!["patient", "height"]);
        assert_eq!(r.fragments.len(), 1);
    }

    #[test]
    fn empty_detection() {
        assert!(SearchRequest::default().is_empty());
        assert!(!SearchRequest::keywords(["x"]).is_empty());
    }
}
