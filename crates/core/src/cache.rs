//! Revision-keyed candidate cache for Phase 1.
//!
//! Candidate extraction is deterministic given the analyzed query terms,
//! the search options, and the exact state of the index — and
//! [`IndexRevision`] identifies that state precisely. The cache therefore
//! stores `(terms, options) → hits` entries stamped with the revision they
//! were computed against, and an entry is served only while the index
//! still reports the same revision. Any mutation (add, tombstone, vacuum,
//! index swap) changes the revision, so stale entries can never be
//! returned; they are dropped lazily on the next lookup.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use schemr_index::{Hit, IndexRevision, SearchOptions};
use schemr_obs::Counter;

/// The cache key: analyzed query terms plus a fingerprint of every
/// [`SearchOptions`] field that affects the result. `proximity_weight` is
/// folded in by bit pattern so the key stays `Eq + Hash` despite the f64.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    terms: Vec<String>,
    top_n: usize,
    coordination: bool,
    proximity_bits: u64,
}

impl CacheKey {
    pub(crate) fn new(terms: Vec<String>, options: &SearchOptions) -> Self {
        CacheKey {
            terms,
            top_n: options.top_n,
            coordination: options.coordination,
            proximity_bits: options.proximity_weight.to_bits(),
        }
    }
}

struct Entry {
    hits: Vec<Hit>,
    revision: IndexRevision,
    /// Logical timestamp of the last access, for LRU eviction.
    last_used: u64,
}

#[derive(Default)]
struct State {
    entries: HashMap<CacheKey, Entry>,
    clock: u64,
}

/// A small LRU cache of Phase 1 results, safe under concurrent searches
/// and writers. `capacity == 0` disables it entirely.
pub(crate) struct CandidateCache {
    capacity: usize,
    state: Mutex<State>,
    /// Lookups answered from the cache.
    pub hits: Arc<Counter>,
    /// Lookups that fell through to the index.
    pub misses: Arc<Counter>,
    /// Entries evicted to make room (capacity pressure).
    pub evictions: Arc<Counter>,
    /// Entries dropped because their revision no longer matched.
    pub invalidations: Arc<Counter>,
}

impl CandidateCache {
    pub(crate) fn new(
        capacity: usize,
        hits: Arc<Counter>,
        misses: Arc<Counter>,
        evictions: Arc<Counter>,
        invalidations: Arc<Counter>,
    ) -> Self {
        CandidateCache {
            capacity,
            state: Mutex::new(State::default()),
            hits,
            misses,
            evictions,
            invalidations,
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up `key` against the index's `current` revision. A present
    /// entry with a different revision is stale — it is removed and
    /// counted as an invalidation, and the lookup is a miss.
    pub(crate) fn get(&self, key: &CacheKey, current: IndexRevision) -> Option<Vec<Hit>> {
        if !self.enabled() {
            return None;
        }
        let mut state = self.state.lock();
        state.clock += 1;
        let clock = state.clock;
        match state.entries.get_mut(key) {
            Some(entry) if entry.revision == current => {
                entry.last_used = clock;
                let hits = entry.hits.clone();
                drop(state);
                self.hits.inc();
                Some(hits)
            }
            Some(_) => {
                state.entries.remove(key);
                drop(state);
                self.invalidations.inc();
                self.misses.inc();
                None
            }
            None => {
                drop(state);
                self.misses.inc();
                None
            }
        }
    }

    /// Store a result computed at `revision`. The caller must have read
    /// `revision` under the same index lock hold that produced `hits`
    /// (see `Index::search_terms_versioned`), otherwise a concurrent
    /// writer could stamp the entry with a state it does not reflect.
    pub(crate) fn put(&self, key: CacheKey, revision: IndexRevision, hits: Vec<Hit>) {
        if !self.enabled() {
            return;
        }
        let mut state = self.state.lock();
        state.clock += 1;
        let clock = state.clock;
        if !state.entries.contains_key(&key) && state.entries.len() >= self.capacity {
            // Evict the least-recently-used entry. Capacity is small
            // (hundreds), so a linear scan beats maintaining an order list.
            if let Some(victim) = state
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                state.entries.remove(&victim);
                self.evictions.inc();
            }
        }
        state.entries.insert(
            key,
            Entry {
                hits,
                revision,
                last_used: clock,
            },
        );
    }

    /// Resident entries (tests).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.state.lock().entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::SchemaId;

    fn cache(capacity: usize) -> CandidateCache {
        CandidateCache::new(
            capacity,
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
        )
    }

    fn key(word: &str) -> CacheKey {
        CacheKey::new(vec![word.to_string()], &SearchOptions::default())
    }

    fn rev(mutations: u64) -> IndexRevision {
        IndexRevision {
            instance: 1,
            mutations,
        }
    }

    fn hit(id: u64) -> Hit {
        Hit {
            id: SchemaId(id),
            score: 1.0,
            matched_terms: 1,
        }
    }

    #[test]
    fn hit_after_put_at_same_revision() {
        let c = cache(4);
        assert!(c.get(&key("a"), rev(1)).is_none());
        c.put(key("a"), rev(1), vec![hit(7)]);
        let got = c.get(&key("a"), rev(1)).unwrap();
        assert_eq!(got[0].id, SchemaId(7));
        assert_eq!(c.hits.get(), 1);
        assert_eq!(c.misses.get(), 1);
    }

    #[test]
    fn revision_change_invalidates() {
        let c = cache(4);
        c.put(key("a"), rev(1), vec![hit(7)]);
        assert!(c.get(&key("a"), rev(2)).is_none());
        assert_eq!(c.invalidations.get(), 1);
        assert_eq!(c.len(), 0, "stale entry dropped eagerly");
        // Different instance is just as stale.
        c.put(key("a"), rev(2), vec![hit(7)]);
        let other_instance = IndexRevision {
            instance: 9,
            mutations: 2,
        };
        assert!(c.get(&key("a"), other_instance).is_none());
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let c = cache(2);
        c.put(key("a"), rev(1), vec![]);
        c.put(key("b"), rev(1), vec![]);
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get(&key("a"), rev(1)).is_some());
        c.put(key("c"), rev(1), vec![]);
        assert_eq!(c.evictions.get(), 1);
        assert!(c.get(&key("a"), rev(1)).is_some());
        assert!(c.get(&key("b"), rev(1)).is_none());
        assert!(c.get(&key("c"), rev(1)).is_some());
    }

    #[test]
    fn options_are_part_of_the_key() {
        let c = cache(4);
        let narrow = CacheKey::new(
            vec!["a".into()],
            &SearchOptions {
                top_n: 5,
                ..Default::default()
            },
        );
        c.put(narrow.clone(), rev(1), vec![hit(1)]);
        assert!(c.get(&key("a"), rev(1)).is_none(), "different top_n");
        assert!(c.get(&narrow, rev(1)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = cache(0);
        c.put(key("a"), rev(1), vec![hit(1)]);
        assert!(c.get(&key("a"), rev(1)).is_none());
        assert_eq!(c.misses.get(), 0, "disabled cache records nothing");
    }
}
