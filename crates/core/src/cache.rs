//! Revision-keyed caches: Phase 1 candidates and Phase 2 match artifacts.
//!
//! Both caches rest on the same correctness idea — *lazy invalidation by
//! stamp*. An entry is stored together with an identifier of the exact
//! state it was computed against, and is served only while the caller's
//! current state matches; any mutation changes the stamp, so stale
//! entries can never be returned and are dropped on the next lookup.
//!
//! * [`CandidateCache`] stores `(terms, options) → hits` stamped with the
//!   [`IndexRevision`] — any index mutation (add, tombstone, vacuum,
//!   swap) changes it.
//! * [`MatchArtifactCache`] stores `schema id → prepared matcher
//!   artifacts` stamped with the schema's repository revision plus the
//!   engine's ensemble generation — a schema update or a matcher-set
//!   replacement changes it.
//!
//! Shared mechanics live in [`LruCore`]: a stamped entry map with a
//! logical clock and weighted LRU eviction (weight 1 per entry for the
//! candidate cache, heap bytes for the artifact cache).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use parking_lot::Mutex;
use schemr_index::{Hit, IndexRevision, SearchOptions};
use schemr_match::PreparedCandidate;
use schemr_model::SchemaId;
use schemr_obs::Counter;

/// The cache key: analyzed query terms plus a fingerprint of every
/// [`SearchOptions`] field. `proximity_weight` is folded in by bit
/// pattern so the key stays `Eq + Hash` despite the f64. `prune` and
/// `phase2_early_exit` are included defensively even though pruned and
/// exhaustive results are bitwise identical by contract — if a bound
/// bug ever broke either contract, the cache must not paper over it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    terms: Vec<String>,
    top_n: usize,
    coordination: bool,
    proximity_bits: u64,
    prune: bool,
    phase2_early_exit: bool,
}

impl CacheKey {
    pub(crate) fn new(
        terms: Vec<String>,
        options: &SearchOptions,
        phase2_early_exit: bool,
    ) -> Self {
        CacheKey {
            terms,
            top_n: options.top_n,
            coordination: options.coordination,
            proximity_bits: options.proximity_weight.to_bits(),
            prune: options.prune,
            phase2_early_exit,
        }
    }
}

struct LruEntry<V, S> {
    value: V,
    stamp: S,
    weight: usize,
    /// Logical timestamp of the last access, for LRU eviction.
    last_used: u64,
}

/// Outcome of a stamped lookup.
enum Lookup<V> {
    /// Present with a matching stamp.
    Hit(V),
    /// Present but stamped with a different state — removed.
    Stale,
    /// Not present.
    Absent,
}

/// The stamped-LRU core shared by both caches: entries carry the state
/// stamp they were computed against and a weight; [`LruCore::put`] evicts
/// least-recently-used entries until total weight fits the budget.
struct LruCore<K, V, S> {
    entries: HashMap<K, LruEntry<V, S>>,
    clock: u64,
    weight: usize,
}

impl<K: Eq + Hash + Clone, V: Clone, S: PartialEq> LruCore<K, V, S> {
    fn new() -> Self {
        LruCore {
            entries: HashMap::new(),
            clock: 0,
            weight: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Look up `key` against the caller's current `stamp`. A present
    /// entry with a different stamp is stale — it is removed so the
    /// slot's weight is released immediately.
    fn get(&mut self, key: &K, stamp: &S) -> Lookup<V> {
        let clock = self.tick();
        match self.entries.get_mut(key) {
            Some(entry) if entry.stamp == *stamp => {
                entry.last_used = clock;
                Lookup::Hit(entry.value.clone())
            }
            Some(_) => {
                if let Some(old) = self.entries.remove(key) {
                    self.weight -= old.weight;
                }
                Lookup::Stale
            }
            None => Lookup::Absent,
        }
    }

    /// Insert, replacing any previous entry under `key`, then evict
    /// least-recently-used entries while the total weight exceeds
    /// `budget`. The just-inserted entry holds the newest timestamp, so
    /// it is evicted only if it alone exceeds the budget. Returns the
    /// evicted `(count, weight)`.
    fn put(&mut self, key: K, stamp: S, value: V, weight: usize, budget: usize) -> (u64, usize) {
        let clock = self.tick();
        if let Some(old) = self.entries.insert(
            key,
            LruEntry {
                value,
                stamp,
                weight,
                last_used: clock,
            },
        ) {
            self.weight -= old.weight;
        }
        self.weight += weight;
        let mut evicted = 0u64;
        let mut evicted_weight = 0usize;
        while self.weight > budget && !self.entries.is_empty() {
            // Capacity is small (hundreds of entries), so a linear scan
            // beats maintaining an order list.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map has a minimum");
            let entry = self.entries.remove(&victim).expect("victim present");
            self.weight -= entry.weight;
            evicted += 1;
            evicted_weight += entry.weight;
        }
        (evicted, evicted_weight)
    }

    /// Resident entries.
    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// A small LRU cache of Phase 1 results, safe under concurrent searches
/// and writers. `capacity == 0` disables it entirely.
pub(crate) struct CandidateCache {
    capacity: usize,
    state: Mutex<LruCore<CacheKey, Vec<Hit>, IndexRevision>>,
    /// Lookups answered from the cache.
    pub hits: Arc<Counter>,
    /// Lookups that fell through to the index.
    pub misses: Arc<Counter>,
    /// Entries evicted to make room (capacity pressure).
    pub evictions: Arc<Counter>,
    /// Entries dropped because their revision no longer matched.
    pub invalidations: Arc<Counter>,
}

impl CandidateCache {
    pub(crate) fn new(
        capacity: usize,
        hits: Arc<Counter>,
        misses: Arc<Counter>,
        evictions: Arc<Counter>,
        invalidations: Arc<Counter>,
    ) -> Self {
        CandidateCache {
            capacity,
            state: Mutex::new(LruCore::new()),
            hits,
            misses,
            evictions,
            invalidations,
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up `key` against the index's `current` revision. A present
    /// entry with a different revision is stale — it is removed and
    /// counted as an invalidation, and the lookup is a miss.
    pub(crate) fn get(&self, key: &CacheKey, current: IndexRevision) -> Option<Vec<Hit>> {
        if !self.enabled() {
            return None;
        }
        let outcome = self.state.lock().get(key, &current);
        match outcome {
            Lookup::Hit(hits) => {
                self.hits.inc();
                Some(hits)
            }
            Lookup::Stale => {
                self.invalidations.inc();
                self.misses.inc();
                None
            }
            Lookup::Absent => {
                self.misses.inc();
                None
            }
        }
    }

    /// Store a result computed at `revision`. The caller must have read
    /// `revision` under the same index lock hold that produced `hits`
    /// (see `Index::search_terms_versioned`), otherwise a concurrent
    /// writer could stamp the entry with a state it does not reflect.
    pub(crate) fn put(&self, key: CacheKey, revision: IndexRevision, hits: Vec<Hit>) {
        if !self.enabled() {
            return;
        }
        // Weight 1 per entry: the byte budget degenerates to an entry
        // count.
        let (evicted, _) = self.state.lock().put(key, revision, hits, 1, self.capacity);
        self.evictions.add(evicted);
    }

    /// Resident occupancy under one lock hold: `(entries, capacity)`.
    /// Weight is 1 per entry, so entries double as resident weight —
    /// surfaced by `/debug/memory`.
    pub(crate) fn usage(&self) -> CacheUsage {
        let state = self.state.lock();
        CacheUsage {
            entries: state.len(),
            resident_weight: state.weight,
            budget: self.capacity,
        }
    }

    /// Resident entries (tests).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.state.lock().len()
    }
}

/// A point-in-time occupancy snapshot of one stamped-LRU cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CacheUsage {
    /// Entries currently resident.
    pub entries: usize,
    /// Total resident weight (entry count for the candidate cache,
    /// heap bytes for the artifact cache).
    pub resident_weight: usize,
    /// The eviction budget the weight is held under.
    pub budget: usize,
}

/// Stamp for a prepared-candidate entry: the schema's repository revision
/// plus the engine's ensemble generation. `Repository::update` bumps the
/// former, `SchemrEngine::set_ensemble` the latter; weight-only changes
/// (`set_ensemble_weights`) leave artifacts valid because they are
/// weight-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ArtifactStamp {
    /// `StoredSchema::metadata::revision` at preparation time.
    pub schema_revision: u64,
    /// The engine's ensemble generation at preparation time.
    pub ensemble_generation: u64,
}

/// A byte-budgeted LRU cache of [`PreparedCandidate`] artifact bundles,
/// keyed by schema id and stamped with [`ArtifactStamp`]. Survives across
/// searches and is shared by the parallel `match_chunk` workers.
/// `budget_bytes == 0` disables it entirely (and, in the engine, the
/// whole prepared scoring path).
pub(crate) struct MatchArtifactCache {
    budget_bytes: usize,
    state: Mutex<LruCore<SchemaId, Arc<PreparedCandidate>, ArtifactStamp>>,
    /// Lookups answered from the cache.
    pub hits: Arc<Counter>,
    /// Lookups that fell through to `Ensemble::prepare`.
    pub misses: Arc<Counter>,
    /// Entries evicted under byte-budget pressure.
    pub evictions: Arc<Counter>,
    /// Entries dropped because their stamp no longer matched.
    pub invalidations: Arc<Counter>,
    /// Artifact bytes admitted into the cache.
    pub bytes_inserted: Arc<Counter>,
    /// Artifact bytes released by eviction.
    pub bytes_evicted: Arc<Counter>,
}

impl MatchArtifactCache {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        budget_bytes: usize,
        hits: Arc<Counter>,
        misses: Arc<Counter>,
        evictions: Arc<Counter>,
        invalidations: Arc<Counter>,
        bytes_inserted: Arc<Counter>,
        bytes_evicted: Arc<Counter>,
    ) -> Self {
        MatchArtifactCache {
            budget_bytes,
            state: Mutex::new(LruCore::new()),
            hits,
            misses,
            evictions,
            invalidations,
            bytes_inserted,
            bytes_evicted,
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.budget_bytes > 0
    }

    /// Look up the artifacts for `id` against the caller's current
    /// `stamp`. A present entry with a different stamp (schema updated,
    /// or matcher set replaced) is dropped and counted as an
    /// invalidation.
    pub(crate) fn get(&self, id: SchemaId, stamp: ArtifactStamp) -> Option<Arc<PreparedCandidate>> {
        if !self.enabled() {
            return None;
        }
        let outcome = self.state.lock().get(&id, &stamp);
        match outcome {
            Lookup::Hit(artifacts) => {
                self.hits.inc();
                Some(artifacts)
            }
            Lookup::Stale => {
                self.invalidations.inc();
                self.misses.inc();
                None
            }
            Lookup::Absent => {
                self.misses.inc();
                None
            }
        }
    }

    /// Store `artifacts` prepared at `stamp`, then evict LRU entries
    /// until resident bytes fit the budget.
    pub(crate) fn put(
        &self,
        id: SchemaId,
        stamp: ArtifactStamp,
        artifacts: Arc<PreparedCandidate>,
    ) {
        if !self.enabled() {
            return;
        }
        let bytes = artifacts.bytes.max(1);
        let (evicted, evicted_bytes) =
            self.state
                .lock()
                .put(id, stamp, artifacts, bytes, self.budget_bytes);
        self.bytes_inserted.add(bytes as u64);
        self.evictions.add(evicted);
        self.bytes_evicted.add(evicted_bytes as u64);
    }

    /// Resident occupancy under one lock hold: entries plus resident
    /// artifact bytes against the byte budget — surfaced by
    /// `/debug/memory`.
    pub(crate) fn usage(&self) -> CacheUsage {
        let state = self.state.lock();
        CacheUsage {
            entries: state.len(),
            resident_weight: state.weight,
            budget: self.budget_bytes,
        }
    }

    /// Resident bytes (tests).
    #[cfg(test)]
    pub(crate) fn resident_bytes(&self) -> usize {
        self.state.lock().weight
    }

    /// Resident entries (tests).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.state.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::SchemaId;

    fn cache(capacity: usize) -> CandidateCache {
        CandidateCache::new(
            capacity,
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
        )
    }

    fn key(word: &str) -> CacheKey {
        CacheKey::new(vec![word.to_string()], &SearchOptions::default(), true)
    }

    fn rev(mutations: u64) -> IndexRevision {
        IndexRevision {
            instance: 1,
            mutations,
        }
    }

    fn hit(id: u64) -> Hit {
        Hit {
            id: SchemaId(id),
            score: 1.0,
            matched_terms: 1,
        }
    }

    #[test]
    fn hit_after_put_at_same_revision() {
        let c = cache(4);
        assert!(c.get(&key("a"), rev(1)).is_none());
        c.put(key("a"), rev(1), vec![hit(7)]);
        let got = c.get(&key("a"), rev(1)).unwrap();
        assert_eq!(got[0].id, SchemaId(7));
        assert_eq!(c.hits.get(), 1);
        assert_eq!(c.misses.get(), 1);
    }

    #[test]
    fn revision_change_invalidates() {
        let c = cache(4);
        c.put(key("a"), rev(1), vec![hit(7)]);
        assert!(c.get(&key("a"), rev(2)).is_none());
        assert_eq!(c.invalidations.get(), 1);
        assert_eq!(c.len(), 0, "stale entry dropped eagerly");
        // Different instance is just as stale.
        c.put(key("a"), rev(2), vec![hit(7)]);
        let other_instance = IndexRevision {
            instance: 9,
            mutations: 2,
        };
        assert!(c.get(&key("a"), other_instance).is_none());
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let c = cache(2);
        c.put(key("a"), rev(1), vec![]);
        c.put(key("b"), rev(1), vec![]);
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get(&key("a"), rev(1)).is_some());
        c.put(key("c"), rev(1), vec![]);
        assert_eq!(c.evictions.get(), 1);
        assert!(c.get(&key("a"), rev(1)).is_some());
        assert!(c.get(&key("b"), rev(1)).is_none());
        assert!(c.get(&key("c"), rev(1)).is_some());
    }

    #[test]
    fn options_are_part_of_the_key() {
        let c = cache(4);
        let narrow = CacheKey::new(
            vec!["a".into()],
            &SearchOptions {
                top_n: 5,
                ..Default::default()
            },
            true,
        );
        c.put(narrow.clone(), rev(1), vec![hit(1)]);
        assert!(c.get(&key("a"), rev(1)).is_none(), "different top_n");
        assert!(c.get(&narrow, rev(1)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = cache(0);
        c.put(key("a"), rev(1), vec![hit(1)]);
        assert!(c.get(&key("a"), rev(1)).is_none());
        assert_eq!(c.misses.get(), 0, "disabled cache records nothing");
    }

    // --- MatchArtifactCache ---

    fn artifact_cache(budget: usize) -> MatchArtifactCache {
        MatchArtifactCache::new(
            budget,
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
        )
    }

    fn artifacts(bytes: usize) -> Arc<PreparedCandidate> {
        Arc::new(PreparedCandidate {
            per_matcher: Vec::new(),
            bytes,
        })
    }

    fn stamp(schema_revision: u64, ensemble_generation: u64) -> ArtifactStamp {
        ArtifactStamp {
            schema_revision,
            ensemble_generation,
        }
    }

    #[test]
    fn artifact_hit_after_put_at_same_stamp() {
        let c = artifact_cache(1024);
        assert!(c.get(SchemaId(1), stamp(3, 1)).is_none());
        c.put(SchemaId(1), stamp(3, 1), artifacts(100));
        let got = c.get(SchemaId(1), stamp(3, 1)).unwrap();
        assert_eq!(got.bytes, 100);
        assert_eq!(c.hits.get(), 1);
        assert_eq!(c.misses.get(), 1);
        assert_eq!(c.bytes_inserted.get(), 100);
        assert_eq!(c.resident_bytes(), 100);
    }

    #[test]
    fn schema_revision_change_invalidates_artifacts() {
        let c = artifact_cache(1024);
        c.put(SchemaId(1), stamp(3, 1), artifacts(100));
        assert!(c.get(SchemaId(1), stamp(4, 1)).is_none(), "schema updated");
        assert_eq!(c.invalidations.get(), 1);
        assert_eq!(c.len(), 0, "stale entry dropped eagerly");
        assert_eq!(c.resident_bytes(), 0, "stale bytes released");
    }

    #[test]
    fn ensemble_generation_change_invalidates_artifacts() {
        let c = artifact_cache(1024);
        c.put(SchemaId(1), stamp(3, 1), artifacts(100));
        assert!(
            c.get(SchemaId(1), stamp(3, 2)).is_none(),
            "matcher set replaced"
        );
        assert_eq!(c.invalidations.get(), 1);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let c = artifact_cache(250);
        c.put(SchemaId(1), stamp(1, 1), artifacts(100));
        c.put(SchemaId(2), stamp(1, 1), artifacts(100));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(SchemaId(1), stamp(1, 1)).is_some());
        c.put(SchemaId(3), stamp(1, 1), artifacts(100));
        assert_eq!(c.evictions.get(), 1);
        assert_eq!(c.bytes_evicted.get(), 100);
        assert!(c.get(SchemaId(1), stamp(1, 1)).is_some());
        assert!(c.get(SchemaId(2), stamp(1, 1)).is_none());
        assert!(c.get(SchemaId(3), stamp(1, 1)).is_some());
        assert!(c.resident_bytes() <= 250);
    }

    #[test]
    fn oversized_entry_does_not_stick() {
        let c = artifact_cache(50);
        c.put(SchemaId(1), stamp(1, 1), artifacts(100));
        // The entry alone exceeds the budget: admitted, then immediately
        // evicted — the cache never holds more than the budget.
        assert_eq!(c.resident_bytes(), 0);
        assert!(c.get(SchemaId(1), stamp(1, 1)).is_none());
    }

    #[test]
    fn replacing_an_entry_adjusts_resident_bytes() {
        let c = artifact_cache(1024);
        c.put(SchemaId(1), stamp(1, 1), artifacts(100));
        c.put(SchemaId(1), stamp(2, 1), artifacts(60));
        assert_eq!(c.resident_bytes(), 60);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn usage_reports_resident_occupancy() {
        let c = cache(4);
        c.put(key("a"), rev(1), vec![hit(1)]);
        c.put(key("b"), rev(1), vec![hit(2)]);
        let usage = c.usage();
        assert_eq!(usage.entries, 2);
        assert_eq!(usage.resident_weight, 2, "weight 1 per candidate entry");
        assert_eq!(usage.budget, 4);

        let a = artifact_cache(1024);
        a.put(SchemaId(1), stamp(1, 1), artifacts(100));
        a.put(SchemaId(2), stamp(1, 1), artifacts(60));
        let usage = a.usage();
        assert_eq!(usage.entries, 2);
        assert_eq!(usage.resident_weight, 160, "artifact weight is bytes");
        assert_eq!(usage.budget, 1024);
    }

    #[test]
    fn zero_budget_disables_artifacts() {
        let c = artifact_cache(0);
        assert!(!c.enabled());
        c.put(SchemaId(1), stamp(1, 1), artifacts(10));
        assert!(c.get(SchemaId(1), stamp(1, 1)).is_none());
        assert_eq!(c.misses.get(), 0, "disabled cache records nothing");
    }
}
