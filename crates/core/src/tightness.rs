//! Phase 3: the tightness-of-fit measurement.
//!
//! "Our principle here is to measure the tightness-of-fit by minimizing the
//! distance between relevant elements in a result schema. We begin by
//! selecting the maximum value of each schema element's entry in the matrix
//! as the final match score for that element. Next, we apply penalties to
//! the scores of the schema elements based on a relative distance measure
//! and take the average of the scores … This calculation is repeated for
//! all possible anchor entities, and the maximum of all calculations is
//! selected as the final match score for the schema."
//!
//! Penalty classes, per the paper's intuition:
//! * same entity as the anchor → no penalty,
//! * same entity *neighborhood* (transitive closure on foreign keys) →
//!   small penalty,
//! * unrelated entities → larger penalty.

use schemr_match::SimilarityMatrix;
use schemr_model::{DistanceClass, ElementId, Schema};

/// Tightness-of-fit parameters.
#[derive(Debug, Clone, Copy)]
pub struct TightnessConfig {
    /// Penalty for elements in the anchor's FK neighborhood.
    pub neighborhood_penalty: f64,
    /// Penalty for elements in unrelated entities.
    pub unrelated_penalty: f64,
    /// Elements whose best matrix entry is below this do not count as
    /// matched (they neither score nor dilute the average). Figure 4 shows
    /// the calculation over "only matched schema elements".
    pub min_element_score: f64,
    /// Average with the mean (true, the paper's prose) or the sum (false,
    /// the paper's formula `t = Σ(S−P)`); ablated in experiment E4.
    pub mean_aggregation: bool,
    /// Weight the anchored score by query coverage (matched query terms ÷
    /// total query terms). The paper's Phase 3 "computes a final score by
    /// weighing similarity scores with a Tightness-of-fit Measurement";
    /// without this weighting a schema matching one query term perfectly
    /// would outrank one matching every term well. Ablated in E4.
    pub coverage_weighting: bool,
}

impl Default for TightnessConfig {
    fn default() -> Self {
        TightnessConfig {
            neighborhood_penalty: 0.1,
            unrelated_penalty: 0.3,
            min_element_score: 0.45,
            mean_aggregation: true,
            coverage_weighting: true,
        }
    }
}

/// The outcome of the tightness-of-fit measurement for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct TightnessScore {
    /// The final schema score: `t_max`, multiplied by `coverage` when
    /// [`TightnessConfig::coverage_weighting`] is on.
    pub score: f64,
    /// `t_max` before coverage weighting.
    pub anchored_score: f64,
    /// Fraction of query terms that matched some element (`0..=1`).
    pub coverage: f64,
    /// The anchor entity achieving `t_max` (None when nothing matched).
    pub best_anchor: Option<ElementId>,
    /// Matched elements with their unpenalized scores, the matrix row
    /// (query term) that produced each, and the distance class under the
    /// best anchor.
    pub matched: Vec<MatchedElement>,
}

/// One matched element's detail (feeds the visualization's similarity
/// encodings).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchedElement {
    /// The candidate schema element.
    pub element: ElementId,
    /// The query-term row that best matched it.
    pub term: usize,
    /// Unpenalized match score (the column max).
    pub score: f64,
    /// Distance class relative to the winning anchor.
    pub class: DistanceClass,
}

/// Compute the tightness-of-fit score of `candidate` given the combined
/// similarity matrix from Phase 2.
pub fn tightness_of_fit(
    candidate: &Schema,
    matrix: &SimilarityMatrix,
    config: &TightnessConfig,
) -> TightnessScore {
    debug_assert_eq!(matrix.cols(), candidate.len());
    // Per-element final scores: column maxima above the matched threshold.
    let mut matched: Vec<(ElementId, usize, f64)> = Vec::new();
    for (col, id) in candidate.ids().enumerate() {
        let (row, score) = matrix.column_max(col);
        if score >= config.min_element_score {
            matched.push((id, row, score));
        }
    }
    if matched.is_empty() {
        return TightnessScore {
            score: 0.0,
            anchored_score: 0.0,
            coverage: 0.0,
            best_anchor: None,
            matched: Vec::new(),
        };
    }

    // Query coverage: fraction of matrix rows (query terms) whose best
    // entry clears the matched threshold.
    let coverage = if matrix.rows() == 0 {
        0.0
    } else {
        let covered = (0..matrix.rows())
            .filter(|&r| matrix.row_max(r) >= config.min_element_score)
            .count();
        covered as f64 / matrix.rows() as f64
    };
    let weight = if config.coverage_weighting {
        coverage
    } else {
        1.0
    };

    let neighborhoods = candidate.neighborhoods();
    // Candidate anchors: every entity that owns at least one matched
    // element. (Anchoring on an unmatched entity can never beat anchoring
    // on a matched one — it penalizes strictly more elements.)
    let mut anchors: Vec<ElementId> = matched
        .iter()
        .filter_map(|(id, _, _)| neighborhoods.owning_entity(*id))
        .collect();
    anchors.sort();
    anchors.dedup();
    if anchors.is_empty() {
        // Degenerate flat schema with no entities: no penalties apply.
        let total: f64 = matched.iter().map(|(_, _, s)| s).sum();
        let score = if config.mean_aggregation {
            total / matched.len() as f64
        } else {
            total
        };
        return TightnessScore {
            score: sanitize(score * weight),
            anchored_score: sanitize(score),
            coverage,
            best_anchor: None,
            matched: matched
                .into_iter()
                .map(|(element, term, score)| MatchedElement {
                    element,
                    term,
                    score,
                    class: DistanceClass::SameEntity,
                })
                .collect(),
        };
    }

    let penalty_for = |class: DistanceClass| -> f64 {
        match class {
            DistanceClass::SameEntity => 0.0,
            DistanceClass::Neighborhood => config.neighborhood_penalty,
            DistanceClass::Unrelated => config.unrelated_penalty,
        }
    };

    let mut best: (f64, ElementId) = (f64::NEG_INFINITY, anchors[0]);
    for &anchor in &anchors {
        let total: f64 = matched
            .iter()
            .map(|&(id, _, s)| {
                let p = penalty_for(neighborhoods.classify(anchor, id));
                (s - p).max(0.0)
            })
            .sum();
        let t = if config.mean_aggregation {
            total / matched.len() as f64
        } else {
            total
        };
        if t > best.0 {
            best = (t, anchor);
        }
    }

    let (anchored_score, best_anchor) = best;
    let matched = matched
        .into_iter()
        .map(|(element, term, s)| MatchedElement {
            element,
            term,
            score: s,
            class: neighborhoods.classify(best_anchor, element),
        })
        .collect();
    TightnessScore {
        score: sanitize(anchored_score * weight),
        anchored_score: sanitize(anchored_score),
        coverage,
        best_anchor: Some(best_anchor),
        matched,
    }
}

/// NaN → 0.0. The similarity matrix already scrubs NaN on `set`, but a
/// NaN produced *inside* the aggregation (e.g. a pathological weight)
/// must not leak into the final ranking, where a non-total score makes
/// the sort order depend on the input permutation.
fn sanitize(score: f64) -> f64 {
    if score.is_nan() {
        0.0
    } else {
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, SchemaBuilder};

    /// The paper's Figure 4 schema: matched elements case.doctor,
    /// case.patient, patient.height, patient.gender, doctor.gender, with
    /// case→patient and case→doctor foreign keys.
    fn figure4() -> (Schema, SimilarityMatrix) {
        let schema = SchemaBuilder::new("clinic")
            .entity("case", |e| {
                e.attr("doctor", DataType::Integer)
                    .attr("patient", DataType::Integer)
            })
            .entity("patient", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .entity("doctor", |e| e.attr("gender", DataType::Text))
            .foreign_key("case", &["patient"], "patient", &[])
            .foreign_key("case", &["doctor"], "doctor", &[])
            .build_unchecked();
        // Element ids: 0 case, 1 case.doctor, 2 case.patient, 3 patient,
        // 4 patient.height, 5 patient.gender, 6 doctor, 7 doctor.gender.
        // One query row per matched element, score 0.8 on the five matched
        // attributes (entities themselves unmatched).
        let mut m = SimilarityMatrix::zeros(5, schema.len());
        for (row, col) in [(0, 1), (1, 2), (2, 4), (3, 5), (4, 7)] {
            m.set(row, col, 0.8);
        }
        (schema, m)
    }

    /// Hand-computed Figure 4 walk-through with the default penalties
    /// (δ₁=0.1 neighborhood, δ₂=0.3 unrelated — though all three entities
    /// here share one FK neighborhood, so δ₂ never fires):
    ///
    /// * anchor = case: case.doctor, case.patient unpenalized (0.8);
    ///   height, gender, gender penalized to 0.7 → mean = (0.8·2 + 0.7·3)/5 = 0.74
    /// * anchor = patient: its two attrs 0.8; other three 0.7 → 0.74
    /// * anchor = doctor: one attr 0.8, four 0.7 → 0.72
    /// * t_max = 0.74 via case or patient.
    #[test]
    fn figure4_worked_example() {
        let (schema, m) = figure4();
        let t = tightness_of_fit(&schema, &m, &TightnessConfig::default());
        assert!((t.score - 0.74).abs() < 1e-9, "t_max = {}", t.score);
        assert_eq!(t.matched.len(), 5);
        let anchor_name = &schema.element(t.best_anchor.unwrap()).name;
        assert!(anchor_name == "case" || anchor_name == "patient");
        // Under the winning anchor, two elements are SameEntity and three
        // are Neighborhood.
        let same = t
            .matched
            .iter()
            .filter(|e| e.class == DistanceClass::SameEntity)
            .count();
        let nb = t
            .matched
            .iter()
            .filter(|e| e.class == DistanceClass::Neighborhood)
            .count();
        assert_eq!((same, nb), (2, 3));
    }

    #[test]
    fn nan_similarities_never_reach_the_final_score() {
        // A matcher that fails to compute yields NaN; the matrix scrubs
        // it on `set` and the tightness aggregation sanitizes its own
        // output, so the final score stays finite and the ranking total.
        let (schema, _) = figure4();
        let mut m = SimilarityMatrix::zeros(5, schema.len());
        for col in 0..schema.len() {
            m.set(0, col, f64::NAN);
        }
        m.set(1, 2, 0.8);
        let t = tightness_of_fit(&schema, &m, &TightnessConfig::default());
        assert!(t.score.is_finite(), "score = {}", t.score);
        assert!(t.anchored_score.is_finite());
        assert!(t.matched.iter().all(|e| e.score.is_finite()));
        assert_eq!(sanitize(f64::NAN), 0.0);
        assert_eq!(sanitize(0.4), 0.4);
    }

    #[test]
    fn unrelated_entities_get_the_larger_penalty() {
        // Two disconnected entities, both matched: anchoring on either
        // penalizes the other at δ₂.
        let schema = SchemaBuilder::new("s")
            .entity("patient", |e| e.attr("height", DataType::Real))
            .entity("supply", |e| e.attr("item", DataType::Text))
            .build_unchecked();
        let mut m = SimilarityMatrix::zeros(2, schema.len());
        m.set(0, 1, 0.8); // patient.height
        m.set(1, 3, 0.8); // supply.item
        let t = tightness_of_fit(&schema, &m, &TightnessConfig::default());
        // mean(0.8, 0.8-0.3) = 0.65
        assert!((t.score - 0.65).abs() < 1e-9, "{}", t.score);
    }

    #[test]
    fn colocated_matches_beat_scattered_matches() {
        // Same matrix mass, one schema co-locates it, the other scatters it
        // across unrelated entities — the paper's core ranking claim.
        let colocated = SchemaBuilder::new("a")
            .entity("patient", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .build_unchecked();
        let mut mc = SimilarityMatrix::zeros(2, colocated.len());
        mc.set(0, 1, 0.8);
        mc.set(1, 2, 0.8);

        let scattered = SchemaBuilder::new("b")
            .entity("patient", |e| e.attr("height", DataType::Real))
            .entity("staff", |e| e.attr("gender", DataType::Text))
            .build_unchecked();
        let mut ms = SimilarityMatrix::zeros(2, scattered.len());
        ms.set(0, 1, 0.8);
        ms.set(1, 3, 0.8);

        let config = TightnessConfig::default();
        let tc = tightness_of_fit(&colocated, &mc, &config);
        let ts = tightness_of_fit(&scattered, &ms, &config);
        assert!(tc.score > ts.score, "{} vs {}", tc.score, ts.score);
    }

    #[test]
    fn fk_neighborhood_softens_the_scatter() {
        // Scattered but FK-connected should land between co-located and
        // unrelated.
        let connected = SchemaBuilder::new("c")
            .entity("patient", |e| e.attr("height", DataType::Real))
            .entity("visit", |e| {
                e.attr("gender", DataType::Text)
                    .attr("patient_id", DataType::Integer)
            })
            .foreign_key("visit", &["patient_id"], "patient", &[])
            .build_unchecked();
        // ids: 0 patient, 1 height, 2 visit, 3 gender, 4 patient_id
        let mut m = SimilarityMatrix::zeros(2, connected.len());
        m.set(0, 1, 0.8);
        m.set(1, 3, 0.8);
        let config = TightnessConfig::default();
        let t = tightness_of_fit(&connected, &m, &config);
        // mean(0.8, 0.7) = 0.75: above unrelated (0.65), below colocated (0.8).
        assert!((t.score - 0.75).abs() < 1e-9, "{}", t.score);
    }

    #[test]
    fn no_matches_scores_zero() {
        let schema = SchemaBuilder::new("s")
            .entity("a", |e| e.attr("x", DataType::Text))
            .build_unchecked();
        let m = SimilarityMatrix::zeros(1, schema.len());
        let t = tightness_of_fit(&schema, &m, &TightnessConfig::default());
        assert_eq!(t.score, 0.0);
        assert!(t.best_anchor.is_none());
        assert!(t.matched.is_empty());
    }

    #[test]
    fn threshold_excludes_weak_matches_from_the_average() {
        let schema = SchemaBuilder::new("s")
            .entity("a", |e| {
                e.attr("x", DataType::Text).attr("y", DataType::Text)
            })
            .build_unchecked();
        let mut m = SimilarityMatrix::zeros(2, schema.len());
        m.set(0, 1, 0.9);
        m.set(1, 2, 0.1); // below min_element_score
        let t = tightness_of_fit(&schema, &m, &TightnessConfig::default());
        assert_eq!(t.matched.len(), 1);
        // The weak row is excluded from the average but still counts
        // against coverage (only 1 of 2 query terms matched).
        assert!((t.anchored_score - 0.9).abs() < 1e-9);
        assert!((t.coverage - 0.5).abs() < 1e-12);
        assert!((t.score - 0.45).abs() < 1e-9);
    }

    #[test]
    fn sum_aggregation_rewards_more_matches() {
        let schema = SchemaBuilder::new("s")
            .entity("a", |e| {
                e.attr("x", DataType::Text).attr("y", DataType::Text)
            })
            .build_unchecked();
        let mut m = SimilarityMatrix::zeros(2, schema.len());
        m.set(0, 1, 0.6);
        m.set(1, 2, 0.6);
        let mean_cfg = TightnessConfig::default();
        let sum_cfg = TightnessConfig {
            mean_aggregation: false,
            ..mean_cfg
        };
        let tm = tightness_of_fit(&schema, &m, &mean_cfg);
        let ts = tightness_of_fit(&schema, &m, &sum_cfg);
        assert!((tm.score - 0.6).abs() < 1e-9);
        assert!((ts.score - 1.2).abs() < 1e-9);
    }

    #[test]
    fn coverage_weighting_penalizes_partial_query_matches() {
        // Four query terms; schema A matches all four at 0.7, schema B
        // matches one at 1.0. Coverage weighting must rank A first.
        let a = SchemaBuilder::new("a")
            .entity("e", |e| {
                e.attr("w", DataType::Text)
                    .attr("x", DataType::Text)
                    .attr("y", DataType::Text)
                    .attr("z", DataType::Text)
            })
            .build_unchecked();
        let mut ma = SimilarityMatrix::zeros(4, a.len());
        for (row, col) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            ma.set(row, col, 0.7);
        }
        let b = SchemaBuilder::new("b")
            .entity("e", |e| e.attr("w", DataType::Text))
            .build_unchecked();
        let mut mb = SimilarityMatrix::zeros(4, b.len());
        mb.set(0, 1, 1.0);

        let config = TightnessConfig::default();
        let ta = tightness_of_fit(&a, &ma, &config);
        let tb = tightness_of_fit(&b, &mb, &config);
        assert!((ta.coverage - 1.0).abs() < 1e-12);
        assert!((tb.coverage - 0.25).abs() < 1e-12);
        assert!(ta.score > tb.score, "{} vs {}", ta.score, tb.score);
        // Without coverage weighting, B's single perfect match wins — the
        // very failure mode the weighting exists for.
        let unweighted = TightnessConfig {
            coverage_weighting: false,
            ..config
        };
        let ta2 = tightness_of_fit(&a, &ma, &unweighted);
        let tb2 = tightness_of_fit(&b, &mb, &unweighted);
        assert!(tb2.score > ta2.score);
        assert!((tb2.score - tb2.anchored_score).abs() < 1e-12);
    }

    #[test]
    fn matched_detail_records_best_term_rows() {
        let (schema, m) = figure4();
        let t = tightness_of_fit(&schema, &m, &TightnessConfig::default());
        let terms: Vec<usize> = t.matched.iter().map(|e| e.term).collect();
        assert_eq!(terms, vec![0, 1, 2, 3, 4]);
    }
}
