//! Search results: the rows of the paper's result table plus the
//! per-element detail the visualization encodes.

use schemr_model::{SchemaId, SchemaStats};
use schemr_obs::ResourceLedger;

use crate::tightness::MatchedElement;

/// One ranked search result — "a tabular format, including columns for
/// name, score, matches, entities, attributes, and description".
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Repository id (for drill-in / GraphML requests).
    pub id: SchemaId,
    /// Schema title.
    pub title: String,
    /// Schema summary.
    pub summary: String,
    /// Final relevance score (`t_max` from Phase 3).
    pub score: f64,
    /// Coarse-grain Phase 1 score (TF/IDF × coordination).
    pub coarse_score: f64,
    /// How many distinct query terms matched in Phase 1.
    pub matched_terms: usize,
    /// Element counts for the table's entities/attributes columns.
    pub stats: SchemaStats,
    /// Per-element match detail (drives the similarity color encodings).
    pub matches: Vec<MatchedElement>,
}

/// Wall-clock spent in each phase of one search — experiment E1's
/// latency-breakdown instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Phase 1: candidate extraction.
    pub candidate_extraction: std::time::Duration,
    /// Phase 2: matcher ensemble over the candidates.
    pub matching: std::time::Duration,
    /// Phase 3: tightness-of-fit scoring and final ranking.
    pub scoring: std::time::Duration,
}

impl PhaseTimings {
    /// Total across phases.
    pub fn total(&self) -> std::time::Duration {
        self.candidate_extraction + self.matching + self.scoring
    }
}

/// Wall time spent inside one matcher across all candidates of a search.
#[derive(Debug, Clone, PartialEq)]
pub struct MatcherTiming {
    /// The matcher's registered name (`name`, `context`, …).
    pub name: String,
    /// Total wall time across candidates. Under parallel matching this
    /// is CPU-side wall time summed over threads, so it can exceed the
    /// phase's elapsed time.
    pub wall: std::time::Duration,
}

/// The per-query "explain" trace: where a search spent its time and how
/// much work each stage did. Produced when
/// [`crate::SearchRequest::explain`] is set; surfaced by the server via
/// `/search?…&explain=1` and by the CLI via `--explain`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchTrace {
    /// Hits returned by the Phase 1 index probe.
    pub candidates_from_index: usize,
    /// Candidates that survived repository lookup and were matched.
    pub candidates_evaluated: usize,
    /// Threads Phase 2 ran on.
    pub match_threads_used: usize,
    /// Per-matcher cost split, in ensemble registration order.
    pub matchers: Vec<MatcherTiming>,
}

/// A full search response: ranked results plus instrumentation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchResponse {
    /// Ranked results, best first.
    pub results: Vec<SearchResult>,
    /// Phase timings for this query.
    pub timings: PhaseTimings,
    /// Number of Phase 1 candidates evaluated in Phase 2.
    pub candidates_evaluated: usize,
    /// The explain trace, when the request asked for one.
    pub trace: Option<SearchTrace>,
    /// The id this search was traced under (client-supplied or engine
    /// assigned); `None` when the engine's tracer is disabled. Look the
    /// full span tree up via `Tracer::get` / `GET /debug/traces/{id}`.
    pub trace_id: Option<String>,
    /// What this search cost across every thread that worked on it:
    /// scheduled CPU time plus allocator traffic (the latter zero unless
    /// a counting allocator is installed). `None` when tracing is
    /// disabled. The server renders this as the `X-Schemr-Cost` header.
    pub ledger: Option<ResourceLedger>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_total() {
        let t = PhaseTimings {
            candidate_extraction: std::time::Duration::from_millis(2),
            matching: std::time::Duration::from_millis(5),
            scoring: std::time::Duration::from_millis(1),
        };
        assert_eq!(t.total(), std::time::Duration::from_millis(8));
    }
}
