//! The search engine: repository + index + matcher ensemble + scorer.
//!
//! `SchemrEngine` wires the paper's architecture (Figure 5) together: the
//! schema repository feeds an offline text indexer; queries flow through
//! candidate extraction, the match engine, and tightness-of-fit scoring;
//! ranked results carry the metadata and per-element detail the GUI
//! renders.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use schemr_index::{codec, Index, IndexDocument, IndexRevision, IndexStats, SearchOptions};
use schemr_match::{BoundedRun, Ensemble, PreparedCandidate};
use schemr_model::QueryGraph;
use schemr_obs::{
    CpuProbeDepth, DeepSize, EventResult, LedgerProbe, MetricsRegistry, Profiler, ResourceLedger,
    SearchEvent, SearchOutcome, SpanGuard, SpanTimer, StackSource, Tracer, TracerConfig,
    WorkloadSnapshot,
};
use schemr_repo::{ChangeKind, Repository};

use crate::cache::{ArtifactStamp, CacheKey, CandidateCache, MatchArtifactCache};
use crate::metrics::EngineMetrics;
use crate::request::SearchRequest;
use crate::result::{MatcherTiming, PhaseTimings, SearchResponse, SearchResult, SearchTrace};
use crate::tightness::{tightness_of_fit, TightnessConfig, TightnessScore};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Phase 1 candidate budget (the paper's "top n candidate results").
    pub top_candidates: usize,
    /// Apply the coordination factor in Phase 1 (ablated in E5).
    pub coordination: bool,
    /// Proximity-bonus weight in Phase 1 (0 disables; ablated in E5).
    pub proximity_weight: f64,
    /// WAND/MaxScore top-n pruning in Phase 1: skip postings that
    /// provably cannot place a document in the top n. Results are bitwise
    /// identical either way; `false` forces the exhaustive scan (used by
    /// the pruning bench's baseline arm).
    pub phase1_pruning: bool,
    /// Ensemble early exit in Phase 2: once the top-k result floor is
    /// established, skip a candidate's remaining matchers when its
    /// per-matcher upper bounds prove it cannot enter the top k — the
    /// Phase 1 θ-floor discipline at the ensemble level. The returned
    /// top k is bitwise identical either way; `false` forces every
    /// matcher to run on every candidate (the e2 bench's baseline arm).
    /// Only active on the prepared path under mean tightness
    /// aggregation (a summed score is unbounded by any per-cell bound).
    pub phase2_early_exit: bool,
    /// Phase 3 parameters.
    pub tightness: TightnessConfig,
    /// Threads for Phase 2 matching (1 = sequential).
    pub match_threads: usize,
    /// Default result-list length when the request doesn't set one.
    pub default_limit: usize,
    /// Request-tracing configuration (trace ring, slowlog, event log).
    pub trace: TracerConfig,
    /// Capacity of the revision-keyed Phase 1 candidate cache (entries).
    /// 0 disables caching entirely.
    pub candidate_cache_entries: usize,
    /// Byte budget of the revision-keyed Phase 2 match-artifact cache.
    /// 0 disables the cache *and* the prepared scoring path — Phase 2
    /// falls back to the per-candidate naive ensemble pass.
    pub match_artifact_cache_bytes: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            top_candidates: 50,
            coordination: true,
            proximity_weight: 0.25,
            phase1_pruning: true,
            phase2_early_exit: true,
            tightness: TightnessConfig::default(),
            match_threads: std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .min(8),
            default_limit: 10,
            trace: TracerConfig::default(),
            candidate_cache_entries: 512,
            match_artifact_cache_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Errors from a search call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The request had no keywords and no fragments.
    EmptyQuery,
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::EmptyQuery => write!(f, "query is empty"),
        }
    }
}

impl std::error::Error for SearchError {}

/// A point-in-time deep-memory report across the engine's resident data
/// structures (`GET /debug/memory`). All byte figures are estimates
/// computed from capacities and element sizes ([`DeepSize`]), not
/// allocator measurements — they track growth and attribute it, they do
/// not reconcile with RSS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryReport {
    /// Estimated heap bytes of the whole inverted index (term
    /// dictionary, postings, document table, forward index).
    pub index_deep_bytes: usize,
    /// Estimated heap bytes of the postings lists alone.
    pub index_postings_bytes: usize,
    /// Resident Phase 1 candidate-cache entries.
    pub candidate_cache_entries: usize,
    /// Candidate-cache capacity (entries; 0 = disabled).
    pub candidate_cache_budget: usize,
    /// Resident Phase 2 match-artifact-cache entries.
    pub artifact_cache_entries: usize,
    /// Resident artifact bytes held by the match-artifact cache.
    pub artifact_cache_resident_bytes: usize,
    /// Artifact-cache byte budget (0 = disabled).
    pub artifact_cache_budget_bytes: usize,
    /// Completed traces retained in the recent ring.
    pub trace_ring_len: usize,
    /// Estimated heap bytes of the recent-trace ring.
    pub trace_ring_bytes: usize,
    /// Completed traces retained in the slowlog ring.
    pub slow_ring_len: usize,
    /// Estimated heap bytes of the slowlog ring.
    pub slow_ring_bytes: usize,
    /// Bytes written to the JSONL event log since open, when configured.
    pub event_log_bytes: Option<u64>,
}

/// The Schemr search engine.
pub struct SchemrEngine {
    repo: Arc<Repository>,
    index: RwLock<Index>,
    ensemble: RwLock<Ensemble>,
    config: EngineConfig,
    last_indexed_revision: Mutex<u64>,
    candidate_cache: CandidateCache,
    artifact_cache: MatchArtifactCache,
    /// Generation of the current matcher set; part of every artifact
    /// stamp so [`SchemrEngine::set_ensemble`] invalidates cached
    /// artifacts lazily.
    ensemble_generation: AtomicU64,
    metrics: EngineMetrics,
    tracer: Arc<Tracer>,
    /// Span-stack sampling profiler; present when tracing is enabled
    /// with a non-zero `profile_hz`. Samples the tracer's live span
    /// stacks into folded-stack aggregates.
    profiler: Option<Profiler>,
    /// Resolved CPU-probe depth (`Auto` collapsed against the measured
    /// clock-call cost once, at construction — not per query).
    cpu_probe: CpuProbeDepth,
}

impl SchemrEngine {
    /// Engine over a repository with default config and the standard
    /// (name + context) ensemble. Call [`SchemrEngine::reindex_full`]
    /// before the first search.
    pub fn new(repo: Arc<Repository>) -> Self {
        Self::with_config(repo, EngineConfig::default())
    }

    /// Engine with explicit config.
    pub fn with_config(repo: Arc<Repository>, config: EngineConfig) -> Self {
        let metrics = EngineMetrics::new();
        let tracer = Arc::new(Tracer::new(config.trace.clone()));
        let profiler = if config.trace.enabled && config.trace.profile_hz > 0 {
            let source: Arc<dyn StackSource> = tracer.clone();
            Some(Profiler::start(source, config.trace.profile_hz))
        } else {
            None
        };
        let cpu_probe = config.trace.cpu_probe.resolve();
        let candidate_cache = CandidateCache::new(
            config.candidate_cache_entries,
            metrics.candidate_cache_hits.clone(),
            metrics.candidate_cache_misses.clone(),
            metrics.candidate_cache_evictions.clone(),
            metrics.candidate_cache_invalidations.clone(),
        );
        let artifact_cache = MatchArtifactCache::new(
            config.match_artifact_cache_bytes,
            metrics.match_artifact_cache_hits.clone(),
            metrics.match_artifact_cache_misses.clone(),
            metrics.match_artifact_cache_evictions.clone(),
            metrics.match_artifact_cache_invalidations.clone(),
            metrics.match_artifact_cache_bytes_inserted.clone(),
            metrics.match_artifact_cache_bytes_evicted.clone(),
        );
        SchemrEngine {
            repo,
            index: RwLock::new(Index::new().with_metrics(metrics.index.clone())),
            ensemble: RwLock::new(Ensemble::standard()),
            config,
            last_indexed_revision: Mutex::new(0),
            candidate_cache,
            artifact_cache,
            ensemble_generation: AtomicU64::new(0),
            metrics,
            tracer,
            profiler,
            cpu_probe,
        }
    }

    /// The underlying repository.
    pub fn repository(&self) -> &Arc<Repository> {
        &self.repo
    }

    /// The engine's metric handles.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The engine's metrics registry — the HTTP layer registers its own
    /// request metrics here and renders the whole set at `/metrics`.
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        self.metrics.registry()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's request tracer — the server's `/debug/traces`,
    /// `/debug/slowlog`, and event-log surfaces all read through this.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The span-stack sampling profiler, when enabled
    /// (`trace.enabled && trace.profile_hz > 0`). The server's
    /// `/debug/profile` endpoint reads folded stacks through this.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Replace the matcher ensemble (e.g. with learned weights or an
    /// ablation variant).
    pub fn set_ensemble(&self, ensemble: Ensemble) {
        *self.ensemble.write() = ensemble;
        // Cached match artifacts are matcher-set-specific: a new
        // generation makes every existing entry stale, so a bundle
        // prepared for the old set can never be zipped against the new
        // one. Weight changes (`set_ensemble_weights`) don't bump it —
        // artifacts are weight-independent.
        self.ensemble_generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Replace the ensemble weights in place.
    pub fn set_ensemble_weights(&self, weights: &[f64]) {
        self.ensemble.write().set_weights(weights);
    }

    /// Rebuild the document index from scratch — the offline indexer's
    /// full pass.
    pub fn reindex_full(&self) {
        let _span = SpanTimer::start(self.metrics.reindex_seconds.clone());
        let revision = self.repo.revision();
        let fresh = Index::new().with_metrics(self.metrics.index.clone());
        // Batch the whole corpus through one writer lock and a single
        // snapshot publish instead of re-publishing per document.
        let docs: Vec<IndexDocument> = self
            .repo
            .snapshot()
            .iter()
            .map(|stored| {
                IndexDocument::from_schema(
                    stored.metadata.id,
                    &stored.metadata.title,
                    &stored.metadata.summary,
                    &stored.schema,
                )
            })
            .collect();
        fresh.add_all(&docs);
        *self.index.write() = fresh;
        *self.last_indexed_revision.lock() = revision;
    }

    /// Apply repository changes since the last (re)index — the "scheduled
    /// intervals" incremental path. Returns how many changes were applied.
    pub fn reindex_incremental(&self) -> usize {
        let mut last = self.last_indexed_revision.lock();
        let changes = self.repo.changes_since(*last);
        if changes.is_empty() {
            return 0;
        }
        let index = self.index.read();
        let mut applied = 0usize;
        let mut max_rev = *last;
        for change in &changes {
            match change.kind {
                ChangeKind::Put => {
                    if let Some(stored) = self.repo.get(change.id) {
                        index.add(&IndexDocument::from_schema(
                            stored.metadata.id,
                            &stored.metadata.title,
                            &stored.metadata.summary,
                            &stored.schema,
                        ));
                    }
                }
                ChangeKind::Delete => {
                    index.remove(change.id);
                }
            }
            applied += 1;
            max_rev = max_rev.max(change.revision);
        }
        *last = max_rev;
        applied
    }

    /// Statistics of the live index.
    pub fn index_stats(&self) -> IndexStats {
        self.index.read().stats()
    }

    /// Revision of the live index (instance id + mutation count). Moves
    /// only on logical mutations — background merges leave it in place.
    pub fn index_revision(&self) -> IndexRevision {
        self.index.read().revision()
    }

    /// Data-plane introspection of the live index: corpus aggregates
    /// plus per-postings-list statistics for the `top_lists` heaviest
    /// lists (`GET /debug/index`).
    pub fn index_introspection(&self, top_lists: usize) -> schemr_index::IndexIntrospection {
        self.index.read().introspect(top_lists)
    }

    /// Workload snapshot (heavy-hitter terms/shapes, zero-result panel,
    /// distinct-term estimate) with the `top_n` heaviest entries per
    /// panel. `None` when the workload plane is off (`GET
    /// /debug/workload` returns 404 then).
    pub fn workload_snapshot(&self, top_n: usize) -> Option<WorkloadSnapshot> {
        self.tracer.workload().map(|w| w.snapshot(top_n))
    }

    /// Deep memory accounting across the engine's resident data
    /// structures (`GET /debug/memory`): the index, both revision-keyed
    /// caches, the trace rings, and the event log.
    pub fn memory_report(&self) -> MemoryReport {
        let (index_deep_bytes, postings_bytes) = {
            let index = self.index.read();
            (index.deep_size_of(), index.introspect(0).postings_bytes)
        };
        let candidate = self.candidate_cache.usage();
        let artifact = self.artifact_cache.usage();
        let (trace_ring_bytes, slow_ring_bytes) = self.tracer.ring_bytes();
        let (trace_ring_len, slow_ring_len) = self.tracer.ring_lens();
        MemoryReport {
            index_deep_bytes,
            index_postings_bytes: postings_bytes,
            candidate_cache_entries: candidate.entries,
            candidate_cache_budget: candidate.budget,
            artifact_cache_entries: artifact.entries,
            artifact_cache_resident_bytes: artifact.resident_weight,
            artifact_cache_budget_bytes: artifact.budget,
            trace_ring_len,
            trace_ring_bytes,
            slow_ring_len,
            slow_ring_bytes,
            event_log_bytes: self
                .tracer
                .event_log()
                .map(schemr_obs::EventLog::written_bytes),
        }
    }

    /// Persist the index segment to disk (offline-indexer output).
    pub fn save_index(&self, path: impl AsRef<std::path::Path>) -> Result<(), codec::CodecError> {
        codec::save_to(&self.index.read(), path)
    }

    /// Load a previously saved index segment.
    pub fn load_index(&self, path: impl AsRef<std::path::Path>) -> Result<(), codec::CodecError> {
        let mut loaded = codec::load_from(path)?;
        loaded.set_metrics(self.metrics.index.clone());
        *self.index.write() = loaded;
        *self.last_indexed_revision.lock() = self.repo.revision();
        Ok(())
    }

    /// Phase 1 only: the coarse candidate list for a query graph. Exposed
    /// for the scalability and coordination experiments.
    pub fn extract_candidates(&self, graph: &QueryGraph) -> Vec<schemr_index::Hit> {
        self.extract_candidates_traced(graph, None).0
    }

    /// Phase 1 with tracing. Also returns the analyzed query terms so the
    /// workload sketch can observe them without a second analyzer pass.
    fn extract_candidates_traced(
        &self,
        graph: &QueryGraph,
        span: Option<&SpanGuard<'_>>,
    ) -> (Vec<schemr_index::Hit>, Vec<String>) {
        let options = SearchOptions {
            top_n: self.config.top_candidates,
            coordination: self.config.coordination,
            proximity_weight: self.config.proximity_weight,
            prune: self.config.phase1_pruning,
        };
        let index = self.index.read();
        let terms: Vec<String> = graph
            .flat_texts()
            .iter()
            .flat_map(|t| index.name_analyzer().analyze(t))
            .collect();
        if !self.candidate_cache.enabled() {
            let hits = index.search_terms_traced(&terms, &options, span);
            return (hits, terms);
        }
        let key = CacheKey::new(terms.clone(), &options, self.config.phase2_early_exit);
        // A revision observed *before* the lookup can only be older than
        // the entry's true state, which makes a stale hit impossible and
        // at worst turns a usable entry into a miss.
        if let Some(hits) = self.candidate_cache.get(&key, index.revision()) {
            if let Some(s) = span {
                s.annotate("candidate_cache", "hit");
                s.annotate("hits", hits.len());
            }
            return (hits, terms);
        }
        // The versioned search reads the revision and the postings under
        // one lock hold, so the entry is stamped with exactly the state
        // that produced it — the invariant the cache's correctness rests
        // on.
        let (hits, revision) = index.search_terms_versioned(&terms, &options, span);
        if let Some(s) = span {
            s.annotate("candidate_cache", "miss");
        }
        self.candidate_cache.put(key, revision, hits.clone());
        (hits, terms)
    }

    /// Resolve the prepared match artifacts for `stored` through the
    /// revision-keyed artifact cache, building and admitting them on a
    /// miss. Returns the artifacts and whether the lookup was a hit.
    /// Concurrent `match_chunk` workers may race on a cold entry; both
    /// build the same deterministic bundle and the second put replaces
    /// the first, so the race costs work but never correctness.
    fn prepared_for(
        &self,
        ensemble: &Ensemble,
        generation: u64,
        stored: &schemr_repo::StoredSchema,
    ) -> (Arc<PreparedCandidate>, bool) {
        let stamp = ArtifactStamp {
            schema_revision: stored.metadata.revision,
            ensemble_generation: generation,
        };
        if let Some(artifacts) = self.artifact_cache.get(stored.metadata.id, stamp) {
            return (artifacts, true);
        }
        let artifacts = Arc::new(ensemble.prepare(&stored.schema));
        self.artifact_cache
            .put(stored.metadata.id, stamp, artifacts.clone());
        (artifacts, false)
    }

    /// Merge the index's tombstoned segments when the tombstone ratio
    /// reaches `threshold` (0 < threshold ≤ 1). Returns whether a merge
    /// committed. The scheduler calls this every tick so put/delete churn
    /// cannot degrade Phase 1 indefinitely.
    ///
    /// Unlike the old stop-the-world vacuum, the compaction runs entirely
    /// off-lock — searches keep reading their published snapshots
    /// throughout, and the new layout lands with a single pointer swap.
    pub fn maybe_merge(&self, threshold: f64) -> bool {
        if threshold <= 0.0 {
            return false;
        }
        let index = self.index.read();
        let stats = index.stats();
        let deleted = stats.total_docs - stats.live_docs;
        if deleted == 0 || (deleted as f64) < threshold * stats.total_docs as f64 {
            return false;
        }
        let before_ratio = deleted as f64 / stats.total_docs as f64;
        let started = Instant::now();
        let Some(outcome) = index.merge(threshold) else {
            // A concurrent forced vacuum beat the merge to the segments;
            // nothing was lost and nothing needs recording.
            return false;
        };
        let took = started.elapsed();
        // Leave a maintenance record in the event log so offline analysis
        // of a latency window can see the merge that ran inside it. The
        // `<merge>` query marker keeps the record parseable by every
        // reader of ordinary search lines (it replaces the seed's
        // `<vacuum>` marker — same shape, new maintenance verb).
        if let Some(log) = self.tracer.event_log() {
            let after = index.stats();
            let after_ratio = if after.total_docs == 0 {
                0.0
            } else {
                (after.total_docs - after.live_docs) as f64 / after.total_docs as f64
            };
            let event = SearchEvent {
                trace_id: format!("merge-r{}", index.revision().mutations),
                unix_ms: std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(0, |d| d.as_millis() as u64),
                query: "<merge>".to_string(),
                candidates_from_index: 0,
                candidates_evaluated: 0,
                phase_us: vec![("merge".to_string(), took.as_micros() as u64)],
                total_us: took.as_micros() as u64,
                results: Vec::new(),
                cpu_us: 0,
                alloc_count: 0,
                alloc_bytes: 0,
                tags: vec![
                    (
                        "tombstone_ratio_before".to_string(),
                        format!("{before_ratio:.4}"),
                    ),
                    (
                        "tombstone_ratio_after".to_string(),
                        format!("{after_ratio:.4}"),
                    ),
                    (
                        "docs_reclaimed".to_string(),
                        outcome.docs_reclaimed.to_string(),
                    ),
                    (
                        "segments_before".to_string(),
                        outcome.segments_before.to_string(),
                    ),
                    (
                        "segments_after".to_string(),
                        outcome.segments_after.to_string(),
                    ),
                ],
            };
            let _ = log.append(&event);
        }
        true
    }

    /// Run the full three-phase search.
    pub fn search(&self, request: &SearchRequest) -> Result<Vec<SearchResult>, SearchError> {
        self.search_detailed(request).map(|r| r.results)
    }

    /// Run the full search, returning phase timings too.
    pub fn search_detailed(&self, request: &SearchRequest) -> Result<SearchResponse, SearchError> {
        self.metrics.searches_total.inc();
        let graph = request.query_graph();
        if graph.is_empty() {
            self.metrics.search_errors_total.inc();
            return Err(SearchError::EmptyQuery);
        }
        // Request tracing: when enabled, one root span per search with
        // one child per phase. The disabled path costs a single branch.
        let ctx = self.tracer.begin(request.trace_id.as_deref());
        let want_trace = ctx.is_some();
        // Resource accounting rides the same gate as tracing: the
        // disabled path takes no clock_gettime calls at all. How many
        // clock reads the *traced* path takes is governed by the
        // resolved probe depth — on kernels where the thread-CPU clock
        // is a trapped syscall (tens of µs a read), only the root probe
        // reads it and phase/worker probes collect allocations alone.
        let root_cpu = want_trace && self.cpu_probe != CpuProbeDepth::Off;
        let deep_cpu = want_trace && self.cpu_probe == CpuProbeDepth::Full;
        let probe = want_trace.then(|| LedgerProbe::start_with_cpu(root_cpu));
        let query_text = if want_trace {
            graph.flat_texts().join(" ")
        } else {
            String::new()
        };
        let root = ctx.as_ref().map(|c| c.root_span("search"));
        if let Some(r) = &root {
            r.annotate("query", &query_text);
            if let Some(wait) = request.queue_wait {
                r.annotate("queue_wait_us", wait.as_micros());
            }
        }

        // Phase 1: candidate extraction.
        let t0 = Instant::now();
        let p1 = root.as_ref().map(|r| r.child("candidate_extraction"));
        let p1_probe = want_trace.then(|| LedgerProbe::start_with_cpu(deep_cpu));
        let (hits, analyzed_terms) = self.extract_candidates_traced(&graph, p1.as_ref());
        if let (Some(s), Some(pr)) = (&p1, &p1_probe) {
            annotate_ledger(s, &pr.delta());
        }
        drop(p1);
        let candidate_extraction = t0.elapsed();
        let candidates_from_index = hits.len();

        // Phase 2: matcher ensemble over the candidates.
        let t1 = Instant::now();
        let p2 = root.as_ref().map(|r| r.child("matching"));
        // The matching span's own ledger covers the request thread only;
        // parallel workers account for themselves on their `match_chunk`
        // spans and their deltas are folded into the root ledger below.
        let p2_probe = want_trace.then(|| LedgerProbe::start_with_cpu(deep_cpu));
        let terms = graph.terms();
        let ensemble = self.ensemble.read();
        let matcher_names = ensemble.matcher_names();
        let candidates: Vec<(schemr_index::Hit, schemr_repo::StoredSchema)> = hits
            .into_iter()
            .filter_map(|h| self.repo.get(h.id).map(|s| (h, s)))
            .collect();
        if let Some(s) = &p2 {
            s.annotate("candidates", candidates.len());
        }
        // Prepared matching: query-side artifacts are built once per
        // search, candidate-side artifacts resolve through the
        // revision-keyed cache. A zero byte budget disables the whole
        // prepared path and Phase 2 runs the naive per-candidate pass.
        let ensemble_generation = self.ensemble_generation.load(Ordering::Acquire);
        let equery = self
            .artifact_cache
            .enabled()
            .then(|| ensemble.prepare_query(&terms, &graph));
        // Ensemble early exit: tightness-of-fit runs inside the
        // per-candidate loop so each final score can feed the running
        // top-k floor, and candidates whose matcher bounds fall below
        // the floor skip their remaining matchers. Sound only under
        // mean aggregation (a summed score exceeds any per-cell bound)
        // and on the prepared path (the bounds read prepared
        // artifacts); inactive, θ stays 0 and every candidate is
        // scored in full — bitwise the same either way.
        let k = request.limit.unwrap_or(self.config.default_limit);
        let floor = (self.config.phase2_early_exit
            && self.config.tightness.mean_aggregation
            && equery.is_some()
            && k > 0)
            .then(|| TopKFloor::new(k));
        let min_element_score = self.config.tightness.min_element_score;
        // Candidates pruned before every matcher ran, and the matcher
        // invocations those prunes skipped.
        let mut candidates_pruned = 0u64;
        let mut matchers_skipped = 0u64;
        // Per-matcher wall time, accumulated across candidates (and,
        // under parallel matching, summed over threads).
        let mut matcher_wall: Vec<Duration> = vec![Duration::ZERO; ensemble.len()];
        // Per-candidate per-matcher strengths for the event log; only
        // collected while tracing.
        let mut strengths: Vec<Vec<f64>> = vec![Vec::new(); candidates.len()];
        // Per-thread resource deltas from parallel matching workers,
        // merged into the request ledger after the scope joins.
        let mut worker_ledgers: Vec<ResourceLedger> = Vec::new();
        let threads_used: usize;
        // Wall time spent in tightness-of-fit calls inside the Phase 2
        // loop. Tightness executes there (the early-exit floor needs
        // final scores as they stream in) but is *accounted* to Phase 3,
        // so the matching/scoring split keeps its meaning — Phase 2 =
        // matchers, Phase 3 = tightness + assembly — across engine
        // versions. Under parallel matching this is summed over workers.
        let mut tightness_wall = Duration::ZERO;
        // Per-candidate final scores; `None` marks a candidate the
        // early exit pruned (provably outside the top k, so it carries
        // no result row).
        let scores: Vec<Option<TightnessScore>> = if self.config.match_threads > 1
            && candidates.len() > 1
        {
            let threads = self.config.match_threads.min(candidates.len());
            threads_used = threads;
            let chunk = candidates.len().div_ceil(threads);
            let mut out: Vec<Option<TightnessScore>> = vec![None; candidates.len()];
            let mut chunk_walls: Vec<Vec<Duration>> =
                vec![vec![Duration::ZERO; ensemble.len()]; candidates.len().div_ceil(chunk)];
            let mut chunk_ledgers: Vec<ResourceLedger> =
                vec![ResourceLedger::default(); candidates.len().div_ceil(chunk)];
            // Per-chunk (pruned candidates, skipped matcher calls,
            // in-loop tightness wall).
            let mut chunk_prunes: Vec<(u64, u64, Duration)> =
                vec![(0, 0, Duration::ZERO); candidates.len().div_ceil(chunk)];
            // Span plumbing that crosses into the scoped threads: the
            // context reference and the matching span's index are both
            // Copy, so each worker opens its own `match_chunk` child.
            let tctx = ctx.as_ref();
            let p2_idx = p2.as_ref().map(|s| s.index());
            let equery = equery.as_ref();
            let floor = floor.as_ref();
            let engine = self;
            crossbeam::thread::scope(|scope| {
                for (((((slots, strength_slots), cands), wall), ledger_slot), prune_slot) in out
                    .chunks_mut(chunk)
                    .zip(strengths.chunks_mut(chunk))
                    .zip(candidates.chunks(chunk))
                    .zip(chunk_walls.iter_mut())
                    .zip(chunk_ledgers.iter_mut())
                    .zip(chunk_prunes.iter_mut())
                {
                    let terms = &terms;
                    let graph = &graph;
                    let ensemble = &ensemble;
                    scope.spawn(move |_| {
                        let chunk_span =
                            tctx.and_then(|c| p2_idx.map(|p| c.child_of(p, "match_chunk")));
                        // Worker-thread resource delta; probes are
                        // per-thread, so each worker opens its own.
                        let wprobe = want_trace.then(|| LedgerProbe::start_with_cpu(deep_cpu));
                        if let Some(cs) = &chunk_span {
                            cs.annotate("candidates", cands.len());
                        }
                        let mut cache_hits = 0u64;
                        let mut cache_misses = 0u64;
                        for ((slot, strength_slot), (_, stored)) in
                            slots.iter_mut().zip(strength_slots.iter_mut()).zip(cands)
                        {
                            let run = match equery {
                                Some(eq) => {
                                    let (artifacts, was_hit) =
                                        engine.prepared_for(ensemble, ensemble_generation, stored);
                                    if was_hit {
                                        cache_hits += 1;
                                    } else {
                                        cache_misses += 1;
                                    }
                                    let theta = floor.map_or(0.0, |f| f.theta(min_element_score));
                                    ensemble.run_prepared_bounded(
                                        eq,
                                        terms,
                                        graph,
                                        &artifacts,
                                        &stored.schema,
                                        want_trace,
                                        theta,
                                    )
                                }
                                None => BoundedRun::Scored(ensemble.run(
                                    terms,
                                    graph,
                                    &stored.schema,
                                    want_trace,
                                )),
                            };
                            match run {
                                BoundedRun::Scored(run) => {
                                    for (acc, d) in wall.iter_mut().zip(run.timings) {
                                        *acc += d;
                                    }
                                    *strength_slot = run.strengths;
                                    let tstart = Instant::now();
                                    let t = tightness_of_fit(
                                        &stored.schema,
                                        &run.matrix,
                                        &engine.config.tightness,
                                    );
                                    prune_slot.2 += tstart.elapsed();
                                    if let Some(f) = floor {
                                        f.observe(t.score);
                                    }
                                    *slot = Some(t);
                                }
                                BoundedRun::Pruned { timings, skipped } => {
                                    for (acc, d) in wall.iter_mut().zip(timings) {
                                        *acc += d;
                                    }
                                    prune_slot.0 += 1;
                                    prune_slot.1 += skipped as u64;
                                }
                            }
                        }
                        if let (Some(cs), Some(_)) = (&chunk_span, equery) {
                            // One batch per chunk: "hit" only when every
                            // candidate's artifacts came from the cache.
                            cs_annotate_batch(cs, cache_hits, cache_misses);
                        }
                        if let Some(pr) = &wprobe {
                            let d = pr.delta();
                            if let Some(cs) = &chunk_span {
                                annotate_ledger(cs, &d);
                            }
                            *ledger_slot = d;
                        }
                    });
                }
            })
            .expect("matcher threads do not panic");
            for wall in chunk_walls {
                for (acc, d) in matcher_wall.iter_mut().zip(wall) {
                    *acc += d;
                }
            }
            for (pruned, skipped, tight) in chunk_prunes {
                candidates_pruned += pruned;
                matchers_skipped += skipped;
                tightness_wall += tight;
            }
            worker_ledgers = chunk_ledgers;
            out
        } else {
            threads_used = 1;
            let mut cache_hits = 0u64;
            let mut cache_misses = 0u64;
            let mut out: Vec<Option<TightnessScore>> = Vec::with_capacity(candidates.len());
            for (i, (_, stored)) in candidates.iter().enumerate() {
                let run = match &equery {
                    Some(eq) => {
                        let (artifacts, was_hit) =
                            self.prepared_for(&ensemble, ensemble_generation, stored);
                        if was_hit {
                            cache_hits += 1;
                        } else {
                            cache_misses += 1;
                        }
                        let theta = floor.as_ref().map_or(0.0, |f| f.theta(min_element_score));
                        ensemble.run_prepared_bounded(
                            eq,
                            &terms,
                            &graph,
                            &artifacts,
                            &stored.schema,
                            want_trace,
                            theta,
                        )
                    }
                    None => {
                        BoundedRun::Scored(ensemble.run(&terms, &graph, &stored.schema, want_trace))
                    }
                };
                match run {
                    BoundedRun::Scored(run) => {
                        for (acc, d) in matcher_wall.iter_mut().zip(run.timings) {
                            *acc += d;
                        }
                        strengths[i] = run.strengths;
                        let tstart = Instant::now();
                        let t =
                            tightness_of_fit(&stored.schema, &run.matrix, &self.config.tightness);
                        tightness_wall += tstart.elapsed();
                        if let Some(f) = &floor {
                            f.observe(t.score);
                        }
                        out.push(Some(t));
                    }
                    BoundedRun::Pruned { timings, skipped } => {
                        for (acc, d) in matcher_wall.iter_mut().zip(timings) {
                            *acc += d;
                        }
                        candidates_pruned += 1;
                        matchers_skipped += skipped as u64;
                        out.push(None);
                    }
                }
            }
            if let (Some(s), Some(_)) = (&p2, &equery) {
                // The sequential pass is one candidate batch.
                cs_annotate_batch(s, cache_hits, cache_misses);
            }
            out
        };
        // Materialize each matcher's accumulated wall as a closed child
        // of the matching span.
        if let Some(s) = &p2 {
            for (name, wall) in matcher_names.iter().zip(&matcher_wall) {
                s.add_closed_child(&format!("matcher:{name}"), *wall);
            }
            if floor.is_some() {
                s.annotate("candidates_pruned", candidates_pruned);
                s.annotate("matchers_skipped", matchers_skipped);
            }
        }
        if let (Some(s), Some(pr)) = (&p2, &p2_probe) {
            annotate_ledger(s, &pr.delta());
        }
        drop(p2);
        // The loop's wall minus its hosted tightness time: saturating,
        // because the summed-over-workers tightness wall can exceed the
        // loop's elapsed wall under parallel matching.
        let matching = t1.elapsed().saturating_sub(tightness_wall);

        // Phase 3: final ranking. Tightness-of-fit itself ran inside the
        // Phase 2 loop (the early-exit floor needs final scores as they
        // stream in); its wall was accumulated there and is added back to
        // this phase, which otherwise assembles, sorts, and truncates.
        let t2 = Instant::now();
        let p3 = root.as_ref().map(|r| r.child("tightness_scoring"));
        let p3_probe = want_trace.then(|| LedgerProbe::start_with_cpu(deep_cpu));
        let candidates_evaluated = candidates.len();
        // Candidate ids in Phase 2 order, for mapping ranked results back
        // to their per-matcher strengths.
        let candidate_ids: Vec<schemr_model::SchemaId> = if want_trace {
            candidates.iter().map(|(h, _)| h.id).collect()
        } else {
            Vec::new()
        };
        let mut results: Vec<SearchResult> = candidates
            .into_iter()
            .zip(scores)
            .filter_map(|((hit, stored), tight)| {
                tight.map(|t| SearchResult {
                    id: stored.metadata.id,
                    title: stored.metadata.title,
                    summary: stored.metadata.summary,
                    score: t.score,
                    coarse_score: hit.score,
                    matched_terms: hit.matched_terms,
                    stats: schemr_model::SchemaStats::of(&stored.schema),
                    matches: t.matched,
                })
            })
            .collect();
        results.sort_by(rank_order);
        results.truncate(request.limit.unwrap_or(self.config.default_limit));
        if let Some(s) = &p3 {
            s.annotate("results", results.len());
            if let Some(pr) = &p3_probe {
                annotate_ledger(s, &pr.delta());
            }
        }
        drop(p3);
        let scoring = t2.elapsed() + tightness_wall;

        // Zero-result accounting: the counter feeds the zero-result rate
        // on `/metrics`; the root-span annotation makes empty searches
        // findable in `/debug/traces` without opening each span tree.
        if results.is_empty() {
            self.metrics.search_empty_total.inc();
            if let Some(r) = &root {
                r.annotate("results", 0usize);
            }
        }
        // Workload sketch: heavy-hitter terms, normalized query shapes,
        // and the zero-result shape panel. One short mutex hold on a
        // handful of bounded counters; absent entirely when the plane is
        // off.
        if let Some(workload) = self.tracer.workload() {
            workload.record_query(&analyzed_terms, results.is_empty());
        }

        // Record the phase work into the registry on every search (not just
        // when the caller keeps the timings).
        let m = &self.metrics;
        m.candidates_evaluated_total
            .add(candidates_evaluated as u64);
        m.match_threads_used_total.add(threads_used as u64);
        m.match_candidates_pruned_total.add(candidates_pruned);
        m.match_matchers_skipped_total.add(matchers_skipped);
        // Offer each observation as its bucket's exemplar: a p99 spike on
        // `/metrics` then links straight to `/debug/traces/{id}`. With
        // tracing off the id is empty and the histogram records plainly.
        let tid = ctx.as_ref().map_or("", |c| c.trace_id());
        m.phase_candidate_extraction
            .observe_duration_exemplar(candidate_extraction, tid);
        m.phase_matching.observe_duration_exemplar(matching, tid);
        m.phase_scoring.observe_duration_exemplar(scoring, tid);
        for (name, wall) in matcher_names.iter().zip(&matcher_wall) {
            m.matcher_histogram(name).observe_duration(*wall);
        }

        let trace = request.explain.then(|| SearchTrace {
            candidates_from_index,
            candidates_evaluated,
            match_threads_used: threads_used,
            matchers: matcher_names
                .iter()
                .zip(&matcher_wall)
                .map(|(name, wall)| MatcherTiming {
                    name: name.to_string(),
                    wall: *wall,
                })
                .collect(),
        });

        // Fold the per-worker deltas into the request thread's own delta:
        // the full cost of this search across every thread that touched
        // it. Stamped on the root span so traces, the event log, and the
        // `X-Schemr-Cost` header all agree.
        let ledger = probe.map_or_else(ResourceLedger::default, |p| {
            let mut total = p.delta();
            for wl in &worker_ledgers {
                total.merge(wl);
            }
            total
        });
        if let Some(r) = &root {
            annotate_ledger(r, &ledger);
        }

        // Close the trace: publish to the ring/slowlog/event log and
        // echo the id so callers can fetch the span tree.
        drop(root);
        let trace_id = ctx.map(|ctx| {
            let event_results = results
                .iter()
                .map(|r| {
                    let matcher_scores = candidate_ids
                        .iter()
                        .position(|id| *id == r.id)
                        .map(|pos| {
                            matcher_names
                                .iter()
                                .zip(&strengths[pos])
                                .map(|(name, s)| (name.to_string(), *s))
                                .collect()
                        })
                        .unwrap_or_default();
                    EventResult {
                        id: r.id.to_string(),
                        score: r.score,
                        matcher_scores,
                    }
                })
                .collect();
            let completed = self.tracer.finish(
                ctx,
                SearchOutcome {
                    query: query_text,
                    candidates_from_index,
                    candidates_evaluated,
                    results: event_results,
                    ledger,
                },
            );
            completed.trace_id.clone()
        });

        Ok(SearchResponse {
            results,
            timings: PhaseTimings {
                candidate_extraction,
                matching,
                scoring,
            },
            candidates_evaluated,
            trace,
            trace_id,
            ledger: want_trace.then_some(ledger),
        })
    }
}

/// The running top-k floor shared by Phase 2 workers when the ensemble
/// early exit is active.
///
/// Holds the k best *final* (tightness) scores seen so far in a min-heap
/// and publishes the k-th best as a lock-free snapshot once the heap is
/// full. The pruning floor θ handed to
/// [`Ensemble::run_prepared_bounded`] is `max(kth_best,
/// min_element_score)` — a candidate whose combined-matrix bound is
/// below `min_element_score` matches nothing and scores exactly 0, so it
/// cannot displace any of k already-positive results. Until the heap is
/// full θ stays 0 and nothing is pruned: with fewer than k scored
/// candidates, even a zero-scoring candidate appears in the final list,
/// so every candidate must be scored exactly.
///
/// Soundness does not depend on thread interleavings: the snapshot is
/// monotonically non-decreasing (scores are only ever added), so a
/// candidate pruned against a stale (lower) floor was prunable against
/// the final floor too, and the pruning comparison is strict so a
/// would-be tie with the k-th result (decided by coarse score and id)
/// is never pruned.
struct TopKFloor {
    k: usize,
    /// Min-heap over score bit patterns. Final scores are finite and
    /// non-negative, where `f64::to_bits` is monotone in the value.
    heap: Mutex<std::collections::BinaryHeap<std::cmp::Reverse<u64>>>,
    /// Bits of the k-th best score once `k` candidates are scored; 0
    /// (i.e. 0.0) before that.
    floor_bits: AtomicU64,
}

impl TopKFloor {
    fn new(k: usize) -> Self {
        TopKFloor {
            k,
            heap: Mutex::new(std::collections::BinaryHeap::with_capacity(k + 1)),
            floor_bits: AtomicU64::new(0),
        }
    }

    /// The pruning floor θ for the next candidate: 0.0 (prune nothing)
    /// until k candidates have scored and the k-th best is positive.
    fn theta(&self, min_element_score: f64) -> f64 {
        let f = f64::from_bits(self.floor_bits.load(Ordering::Relaxed));
        if f > 0.0 {
            f.max(min_element_score)
        } else {
            0.0
        }
    }

    /// Fold one scored candidate's final score into the floor.
    fn observe(&self, score: f64) {
        // NaN and negative zero cannot occur (the tightness aggregation
        // sanitizes), but both would corrupt the bit-pattern ordering,
        // so scrub them to 0 rather than trust the invariant.
        let bits = if score > 0.0 { score.to_bits() } else { 0 };
        let mut heap = self.heap.lock();
        if heap.len() < self.k {
            heap.push(std::cmp::Reverse(bits));
        } else if heap
            .peek()
            .is_some_and(|&std::cmp::Reverse(min)| bits > min)
        {
            heap.pop();
            heap.push(std::cmp::Reverse(bits));
        }
        if heap.len() == self.k {
            if let Some(&std::cmp::Reverse(min)) = heap.peek() {
                self.floor_bits.store(min, Ordering::Relaxed);
            }
        }
    }
}

/// Stamp a thread's resource delta onto a span as annotations. Zero
/// fields are skipped rather than printed: `cpu_us` is 0 whenever the
/// probe depth withheld the clock from this span, and the allocation
/// counters are 0 unless a counting allocator is installed
/// (`schemr_obs::CountingAlloc`) — either way an explicit 0 would read
/// as a measurement when it is really an absence.
fn annotate_ledger(span: &SpanGuard<'_>, ledger: &ResourceLedger) {
    if ledger.cpu_us > 0 {
        span.annotate("cpu_us", ledger.cpu_us);
    }
    if ledger.alloc_count > 0 || ledger.alloc_bytes > 0 {
        span.annotate("alloc_count", ledger.alloc_count);
        span.annotate("alloc_bytes", ledger.alloc_bytes);
    }
}

/// The final ranking order: tightness score descending, Phase 1 coarse
/// score descending, schema id ascending. Uses `total_cmp` so the order
/// is total even if a NaN score ever slips through — `partial_cmp`'s
/// `unwrap_or(Equal)` made NaN non-transitive, and a non-total
/// comparator makes the sort order depend on the input permutation
/// (identical corpora could rank differently across runs).
pub(crate) fn rank_order(a: &SearchResult, b: &SearchResult) -> std::cmp::Ordering {
    b.score
        .total_cmp(&a.score)
        .then(b.coarse_score.total_cmp(&a.coarse_score))
        .then(a.id.cmp(&b.id))
}

/// Annotate a matching-phase batch span with its artifact-cache outcome:
/// `artifact_cache=hit` only when every candidate in the batch was served
/// from the cache, plus the raw hit/miss counts.
fn cs_annotate_batch(span: &SpanGuard<'_>, hits: u64, misses: u64) {
    span.annotate("artifact_cache", if misses == 0 { "hit" } else { "miss" });
    span.annotate("artifact_hits", hits);
    span.annotate("artifact_misses", misses);
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_repo::import::import_str;

    fn clinic_repo() -> Arc<Repository> {
        let repo = Arc::new(Repository::new());
        import_str(
            &repo,
            "clinic",
            "rural health clinic",
            "CREATE TABLE patient (id INT, height REAL, gender TEXT, diagnosis TEXT);
             CREATE TABLE doctor (id INT, gender TEXT);
             CREATE TABLE clinic_case (id INT, patient INT REFERENCES patient(id), doctor INT REFERENCES doctor(id))",
        )
        .unwrap();
        import_str(
            &repo,
            "store",
            "a web shop",
            "CREATE TABLE orders (id INT, total DECIMAL, quantity INT);
             CREATE TABLE customer (id INT, name TEXT, address TEXT)",
        )
        .unwrap();
        import_str(
            &repo,
            "hr",
            "human resources",
            "CREATE TABLE employee (id INT, name TEXT, gender TEXT, salary DECIMAL)",
        )
        .unwrap();
        repo
    }

    #[test]
    fn rank_order_is_total_and_pins_the_tie_break() {
        use schemr_model::SchemaId;
        let result = |id: u64, score: f64, coarse: f64| SearchResult {
            id: SchemaId(id),
            title: String::new(),
            summary: String::new(),
            score,
            coarse_score: coarse,
            matched_terms: 0,
            stats: Default::default(),
            matches: Vec::new(),
        };
        // Score descending, then coarse descending, then id ascending.
        let mut rows = [
            result(5, 0.3, 0.9),
            result(2, 0.7, 0.1),
            result(4, 0.3, 0.9),
            result(3, 0.7, 0.5),
            result(1, f64::NAN, 0.8),
        ];
        rows.sort_by(rank_order);
        let order: Vec<u64> = rows.iter().map(|r| r.id.0).collect();
        // total_cmp puts NaN above every finite score (descending), and
        // critically the order is a *total* order: the old
        // `partial_cmp(..).unwrap_or(Equal)` comparator was
        // non-transitive around NaN, so the final ranking depended on
        // the input permutation.
        assert_eq!(order, vec![1, 3, 2, 4, 5]);
        // Same elements, different starting permutation, same ranking.
        let mut shuffled = [
            result(1, f64::NAN, 0.8),
            result(4, 0.3, 0.9),
            result(3, 0.7, 0.5),
            result(5, 0.3, 0.9),
            result(2, 0.7, 0.1),
        ];
        shuffled.sort_by(rank_order);
        let order2: Vec<u64> = shuffled.iter().map(|r| r.id.0).collect();
        assert_eq!(order, order2);
    }

    #[test]
    fn end_to_end_keyword_search_ranks_the_clinic_first() {
        let engine = SchemrEngine::new(clinic_repo());
        engine.reindex_full();
        let results = engine
            .search(&SearchRequest::keywords([
                "patient",
                "height",
                "gender",
                "diagnosis",
            ]))
            .unwrap();
        assert!(!results.is_empty());
        assert_eq!(results[0].title, "clinic");
        assert!(results[0].score > 0.0);
        assert!(!results[0].matches.is_empty());
    }

    #[test]
    fn fragment_search_works() {
        let engine = SchemrEngine::new(clinic_repo());
        engine.reindex_full();
        let request =
            SearchRequest::parse("", &["CREATE TABLE patient (height REAL, gender TEXT)"]).unwrap();
        let results = engine.search(&request).unwrap();
        assert_eq!(results[0].title, "clinic");
    }

    #[test]
    fn empty_query_is_an_error() {
        let engine = SchemrEngine::new(clinic_repo());
        engine.reindex_full();
        assert_eq!(
            engine.search(&SearchRequest::default()),
            Err(SearchError::EmptyQuery)
        );
    }

    #[test]
    fn search_before_indexing_returns_nothing() {
        let engine = SchemrEngine::new(clinic_repo());
        let results = engine
            .search(&SearchRequest::keywords(["patient"]))
            .unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn incremental_reindex_picks_up_changes() {
        let repo = clinic_repo();
        let engine = SchemrEngine::new(repo.clone());
        engine.reindex_full();
        assert_eq!(engine.reindex_incremental(), 0);
        let id = import_str(
            &repo,
            "lab",
            "",
            "CREATE TABLE specimen (assay TEXT, result REAL, collected DATE, vessel TEXT)",
        )
        .unwrap();
        assert!(engine
            .search(&SearchRequest::keywords(["specimen"]))
            .unwrap()
            .is_empty());
        assert_eq!(engine.reindex_incremental(), 1);
        let results = engine
            .search(&SearchRequest::keywords(["specimen", "assay"]))
            .unwrap();
        assert_eq!(results[0].id, id);
        // Deletions propagate too.
        repo.remove(id).unwrap();
        engine.reindex_incremental();
        assert!(engine
            .search(&SearchRequest::keywords(["specimen"]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn detailed_response_carries_timings_and_counts() {
        let engine = SchemrEngine::new(clinic_repo());
        engine.reindex_full();
        let resp = engine
            .search_detailed(&SearchRequest::keywords(["gender"]))
            .unwrap();
        assert!(resp.candidates_evaluated >= 2); // clinic and hr both mention gender
        assert!(resp.timings.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn limit_truncates_results() {
        let engine = SchemrEngine::new(clinic_repo());
        engine.reindex_full();
        let results = engine
            .search(&SearchRequest::keywords(["gender"]).with_limit(1))
            .unwrap();
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn sequential_and_parallel_matching_agree() {
        let repo = clinic_repo();
        let seq = SchemrEngine::with_config(
            repo.clone(),
            EngineConfig {
                match_threads: 1,
                ..Default::default()
            },
        );
        seq.reindex_full();
        let par = SchemrEngine::with_config(
            repo,
            EngineConfig {
                match_threads: 4,
                ..Default::default()
            },
        );
        par.reindex_full();
        let request = SearchRequest::keywords(["patient", "gender"]);
        let a = seq.search(&request).unwrap();
        let b = par.search(&request).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert!((x.score - y.score).abs() < 1e-12);
        }
    }

    #[test]
    fn index_persists_and_reloads() {
        let dir = std::env::temp_dir().join("schemr-engine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.idx");
        let repo = clinic_repo();
        let engine = SchemrEngine::new(repo.clone());
        engine.reindex_full();
        engine.save_index(&path).unwrap();

        let cold = SchemrEngine::new(repo);
        cold.load_index(&path).unwrap();
        let results = cold.search(&SearchRequest::keywords(["patient"])).unwrap();
        assert_eq!(results[0].title, "clinic");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn searches_populate_the_metrics_registry() {
        let engine = SchemrEngine::new(clinic_repo());
        engine.reindex_full();
        engine.search(&SearchRequest::keywords(["gender"])).unwrap();
        engine
            .search(&SearchRequest::keywords(["patient", "height"]))
            .unwrap();
        assert_eq!(
            engine.search(&SearchRequest::default()),
            Err(SearchError::EmptyQuery)
        );

        let reg = engine.metrics_registry();
        assert_eq!(
            reg.counter_value("schemr_search_requests_total", &[]),
            Some(3)
        );
        assert_eq!(
            reg.counter_value("schemr_search_errors_total", &[]),
            Some(1)
        );
        assert!(
            reg.counter_value("schemr_candidates_evaluated_total", &[])
                .unwrap()
                >= 2
        );
        assert!(
            reg.counter_value("schemr_match_threads_used_total", &[])
                .unwrap()
                >= 2
        );
        // Two successful searches → two observations per phase.
        for phase in ["candidate_extraction", "matching", "scoring"] {
            let snap = reg
                .histogram_snapshot("schemr_phase_seconds", &[("phase", phase)])
                .unwrap();
            assert_eq!(snap.count, 2, "phase {phase}");
        }
        // Per-matcher histograms registered lazily during the searches.
        for matcher in ["name", "context"] {
            let snap = reg
                .histogram_snapshot("schemr_matcher_seconds", &[("matcher", matcher)])
                .unwrap();
            assert_eq!(snap.count, 2, "matcher {matcher}");
        }
        // Index counters flowed through the engine-owned handles.
        assert!(
            reg.counter_value("schemr_index_terms_looked_up_total", &[])
                .unwrap()
                >= 3
        );
        // Re-index timing recorded once.
        assert_eq!(
            reg.histogram_snapshot("schemr_reindex_seconds", &[])
                .unwrap()
                .count,
            1
        );
        // And the rendered exposition carries the headline families.
        let text = reg.render_prometheus();
        assert!(text.contains("schemr_search_requests_total 3"));
        assert!(text.contains("schemr_phase_seconds_bucket{phase=\"matching\","));
    }

    #[test]
    fn index_counters_survive_reindex_and_reload() {
        let dir = std::env::temp_dir().join("schemr-engine-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.idx");
        let engine = SchemrEngine::new(clinic_repo());
        engine.reindex_full();
        engine.search(&SearchRequest::keywords(["gender"])).unwrap();
        let before = engine
            .metrics_registry()
            .counter_value("schemr_index_terms_looked_up_total", &[])
            .unwrap();
        assert!(before >= 1);
        // A rebuild swaps the Index value but keeps the same counters.
        engine.save_index(&path).unwrap();
        engine.reindex_full();
        engine.load_index(&path).unwrap();
        engine.search(&SearchRequest::keywords(["gender"])).unwrap();
        let after = engine
            .metrics_registry()
            .counter_value("schemr_index_terms_looked_up_total", &[])
            .unwrap();
        assert!(after > before, "{after} vs {before}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn explain_attaches_a_trace_only_when_requested() {
        let engine = SchemrEngine::new(clinic_repo());
        engine.reindex_full();
        let plain = engine
            .search_detailed(&SearchRequest::keywords(["gender"]))
            .unwrap();
        assert!(plain.trace.is_none());

        let explained = engine
            .search_detailed(&SearchRequest::keywords(["gender"]).with_explain())
            .unwrap();
        let trace = explained.trace.expect("explain requested");
        assert!(trace.candidates_from_index >= trace.candidates_evaluated);
        assert!(trace.candidates_evaluated >= 2);
        assert!(trace.match_threads_used >= 1);
        let names: Vec<&str> = trace.matchers.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["name", "context"]);
    }

    #[test]
    fn parallel_explain_reports_threads_and_matcher_walls() {
        let engine = SchemrEngine::with_config(
            clinic_repo(),
            EngineConfig {
                match_threads: 2,
                ..Default::default()
            },
        );
        engine.reindex_full();
        let resp = engine
            .search_detailed(&SearchRequest::keywords(["gender"]).with_explain())
            .unwrap();
        let trace = resp.trace.unwrap();
        assert_eq!(trace.match_threads_used, 2);
        assert_eq!(trace.matchers.len(), 2);
    }

    #[test]
    fn searches_are_traced_with_three_phase_spans() {
        let engine = SchemrEngine::new(clinic_repo());
        engine.reindex_full();
        let resp = engine
            .search_detailed(
                &SearchRequest::keywords(["patient", "gender"]).with_trace_id("test-trace-1"),
            )
            .unwrap();
        assert_eq!(resp.trace_id.as_deref(), Some("test-trace-1"));
        let trace = engine.tracer().get("test-trace-1").expect("retained");
        assert_eq!(trace.query, "patient gender");
        assert!(trace.candidates_from_index >= trace.candidates_evaluated);
        let phases = trace.phase_names();
        assert_eq!(
            phases,
            vec!["candidate_extraction", "matching", "tightness_scoring"]
        );
        // Matcher walls materialized as children of the matching span.
        let matching_idx = trace
            .spans
            .iter()
            .position(|s| s.name == "matching")
            .unwrap();
        let matcher_children: Vec<&str> = trace
            .spans
            .iter()
            .filter(|s| s.parent == Some(matching_idx) && s.name.starts_with("matcher:"))
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(matcher_children, vec!["matcher:name", "matcher:context"]);
        // Phase 1 annotated with index probe stats.
        let p1 = &trace.spans[trace
            .spans
            .iter()
            .position(|s| s.name == "candidate_extraction")
            .unwrap()];
        assert!(p1.attrs.iter().any(|(k, _)| k == "postings_scanned"));
        // Results carry per-matcher strengths for the event log.
        assert!(!trace.results.is_empty());
        assert_eq!(
            trace.results[0]
                .matcher_scores
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["name", "context"]
        );
        // Generated ids for requests without one; response echoes it.
        let auto = engine
            .search_detailed(&SearchRequest::keywords(["gender"]))
            .unwrap();
        let auto_id = auto.trace_id.expect("tracer enabled");
        assert!(engine.tracer().get(&auto_id).is_some());
    }

    #[test]
    fn parallel_matching_traces_chunk_spans() {
        let engine = SchemrEngine::with_config(
            clinic_repo(),
            EngineConfig {
                match_threads: 2,
                ..Default::default()
            },
        );
        engine.reindex_full();
        let resp = engine
            .search_detailed(&SearchRequest::keywords(["gender"]).with_trace_id("par-1"))
            .unwrap();
        assert_eq!(resp.trace_id.as_deref(), Some("par-1"));
        let trace = engine.tracer().get("par-1").unwrap();
        let matching_idx = trace
            .spans
            .iter()
            .position(|s| s.name == "matching")
            .unwrap();
        let chunks = trace
            .spans
            .iter()
            .filter(|s| s.name == "match_chunk" && s.parent == Some(matching_idx))
            .count();
        assert!(chunks >= 2, "expected >=2 chunk spans, got {chunks}");
    }

    #[test]
    fn disabled_tracer_costs_nothing_and_reports_no_id() {
        let engine = SchemrEngine::with_config(
            clinic_repo(),
            EngineConfig {
                trace: schemr_obs::TracerConfig::disabled(),
                ..Default::default()
            },
        );
        engine.reindex_full();
        let resp = engine
            .search_detailed(&SearchRequest::keywords(["gender"]).with_trace_id("ignored"))
            .unwrap();
        assert!(resp.trace_id.is_none());
        assert!(engine.tracer().recent(10).is_empty());
    }

    #[test]
    fn traced_searches_append_to_the_event_log() {
        let dir = std::env::temp_dir().join(format!("schemr-engine-evlog-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = SchemrEngine::with_config(
            clinic_repo(),
            EngineConfig {
                trace: schemr_obs::TracerConfig {
                    event_log_path: Some(dir.join("events.jsonl")),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        engine.reindex_full();
        engine
            .search(&SearchRequest::keywords(["patient", "height"]))
            .unwrap();
        let events = engine.tracer().event_log().unwrap().read_events().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].query, "patient height");
        assert_eq!(
            events[0]
                .phase_us
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["candidate_extraction", "matching", "tightness_scoring"]
        );
        assert!(!events[0].results.is_empty());
        assert!(events[0].results[0].matcher_scores.len() == 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn warm_artifact_cache_reproduces_cold_and_naive_results_bitwise() {
        let repo = clinic_repo();
        let prepared = SchemrEngine::new(repo.clone());
        prepared.reindex_full();
        let naive = SchemrEngine::with_config(
            repo,
            EngineConfig {
                match_artifact_cache_bytes: 0,
                ..Default::default()
            },
        );
        naive.reindex_full();
        let request = SearchRequest::keywords(["patient", "gender", "height"]);
        let cold = prepared.search(&request).unwrap();
        let cold_misses = prepared.metrics().match_artifact_cache_misses.get();
        assert!(cold_misses > 0, "first search prepares artifacts");
        let warm = prepared.search(&request).unwrap();
        assert!(
            prepared.metrics().match_artifact_cache_hits.get() >= cold_misses,
            "second search reuses every prepared candidate"
        );
        let reference = naive.search(&request).unwrap();
        assert_eq!(cold.len(), reference.len());
        for ((c, w), n) in cold.iter().zip(&warm).zip(&reference) {
            assert_eq!(c.id, w.id);
            assert_eq!(c.id, n.id);
            assert_eq!(c.score.to_bits(), w.score.to_bits());
            assert_eq!(c.score.to_bits(), n.score.to_bits(), "prepared vs naive");
        }
        // The naive engine never touched its (disabled) artifact cache.
        assert_eq!(naive.metrics().match_artifact_cache_misses.get(), 0);
        assert_eq!(naive.metrics().match_artifact_cache_hits.get(), 0);
    }

    #[test]
    fn schema_update_invalidates_cached_artifacts() {
        let repo = clinic_repo();
        let engine = SchemrEngine::new(repo.clone());
        engine.reindex_full();
        let request = SearchRequest::keywords(["gender"]);
        engine.search(&request).unwrap();
        // Replace the hr schema: its cached artifacts are now stale.
        let id = repo
            .snapshot()
            .into_iter()
            .find(|s| s.metadata.title == "hr")
            .unwrap()
            .metadata
            .id;
        let replacement = schemr_parse::parse_fragment(
            "hr",
            "CREATE TABLE staff (id INT, gender TEXT, grade INT)",
        )
        .unwrap();
        repo.update(id, replacement).unwrap();
        engine.reindex_incremental();
        engine.search(&request).unwrap();
        assert!(
            engine.metrics().match_artifact_cache_invalidations.get() >= 1,
            "stale artifacts dropped after the update"
        );
        // The refreshed entry serves the next search.
        let hits_before = engine.metrics().match_artifact_cache_hits.get();
        engine.search(&request).unwrap();
        assert!(engine.metrics().match_artifact_cache_hits.get() > hits_before);
    }

    #[test]
    fn set_ensemble_invalidates_cached_artifacts() {
        let engine = SchemrEngine::new(clinic_repo());
        engine.reindex_full();
        let request = SearchRequest::keywords(["gender"]);
        engine.search(&request).unwrap();
        engine.set_ensemble(Ensemble::standard());
        engine.search(&request).unwrap();
        assert!(
            engine.metrics().match_artifact_cache_invalidations.get() >= 1,
            "artifacts from the old matcher set are stale"
        );
    }

    #[test]
    fn parallel_matching_shares_the_artifact_cache() {
        let engine = SchemrEngine::with_config(
            clinic_repo(),
            EngineConfig {
                match_threads: 4,
                ..Default::default()
            },
        );
        engine.reindex_full();
        let request = SearchRequest::keywords(["patient", "gender"]);
        let first = engine.search(&request).unwrap();
        let second = engine.search(&request).unwrap();
        assert!(engine.metrics().match_artifact_cache_hits.get() > 0);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn matching_spans_report_the_artifact_cache_outcome() {
        let engine = SchemrEngine::new(clinic_repo());
        engine.reindex_full();
        engine
            .search_detailed(&SearchRequest::keywords(["gender"]).with_trace_id("art-cold"))
            .unwrap();
        let cold = engine.tracer().get("art-cold").unwrap();
        let batch = cold
            .spans
            .iter()
            .find(|s| s.attrs.iter().any(|(k, _)| k == "artifact_cache"))
            .expect("a batch span carries the artifact_cache annotation");
        assert!(batch
            .attrs
            .iter()
            .any(|(k, v)| k == "artifact_cache" && v == "miss"));
        engine
            .search_detailed(&SearchRequest::keywords(["gender"]).with_trace_id("art-warm"))
            .unwrap();
        let warm = engine.tracer().get("art-warm").unwrap();
        let batch = warm
            .spans
            .iter()
            .find(|s| s.attrs.iter().any(|(k, _)| k == "artifact_cache"))
            .unwrap();
        assert!(batch
            .attrs
            .iter()
            .any(|(k, v)| k == "artifact_cache" && v == "hit"));
    }

    /// A corpus engineered so the ensemble early exit must fire: a few
    /// schemas match the query exactly (they fill the top-k floor at
    /// ~1.0), while many others reach Phase 2 only through their summary
    /// text — their element names are long alien words whose name-matcher
    /// bound sits far below the floor.
    fn prunable_repo() -> Arc<Repository> {
        use schemr_model::{DataType, SchemaBuilder};
        let repo = Arc::new(Repository::new());
        for name in ["one", "two", "three"] {
            let schema = SchemaBuilder::new(format!("registry {name}"))
                .entity("patient", |e| e.attr("patient", DataType::Text))
                .build_unchecked();
            repo.insert(format!("patient registry {name}"), String::new(), schema)
                .unwrap();
        }
        for i in 0..12 {
            let schema = SchemaBuilder::new(format!("archive {i}"))
                .entity(format!("zzyxqvvplorqbahhnnzw{i:02}"), |e| {
                    e.attr(format!("qqwwrrttyyuunnooppllkkjj{i:02}"), DataType::Text)
                })
                .build_unchecked();
            repo.insert(
                format!("archive {i}"),
                "patient data archive".to_string(),
                schema,
            )
            .unwrap();
        }
        repo
    }

    #[test]
    fn ensemble_early_exit_prunes_hopeless_candidates_and_preserves_the_top_k() {
        let repo = prunable_repo();
        let exit = SchemrEngine::with_config(
            repo.clone(),
            EngineConfig {
                match_threads: 1,
                ..Default::default()
            },
        );
        let full = SchemrEngine::with_config(
            repo,
            EngineConfig {
                match_threads: 1,
                phase2_early_exit: false,
                ..Default::default()
            },
        );
        exit.reindex_full();
        full.reindex_full();
        let request = SearchRequest::keywords(["patient"]).with_limit(2);
        let a = exit.search(&request).unwrap();
        let b = full.search(&request).unwrap();
        assert_eq!(a.len(), b.len(), "early exit changed the result count");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id, "early exit changed the ranking");
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!(x.coarse_score.to_bits(), y.coarse_score.to_bits());
        }
        let pruned = exit.metrics().match_candidates_pruned_total.get();
        let skipped = exit.metrics().match_matchers_skipped_total.get();
        assert!(pruned > 0, "no candidate was pruned");
        assert!(
            skipped >= pruned,
            "a pruned candidate skips at least its first matcher: {skipped} < {pruned}"
        );
        assert_eq!(full.metrics().match_candidates_pruned_total.get(), 0);
        assert_eq!(full.metrics().match_matchers_skipped_total.get(), 0);
    }

    #[test]
    fn parallel_early_exit_matches_the_exhaustive_engine() {
        let repo = prunable_repo();
        let exit = SchemrEngine::with_config(
            repo.clone(),
            EngineConfig {
                match_threads: 4,
                ..Default::default()
            },
        );
        let full = SchemrEngine::with_config(
            repo,
            EngineConfig {
                match_threads: 4,
                phase2_early_exit: false,
                ..Default::default()
            },
        );
        exit.reindex_full();
        full.reindex_full();
        // The floor fills in nondeterministic order across workers, so
        // how *much* is pruned varies run to run — the returned top k
        // must not.
        for limit in [1, 2, 5] {
            let request = SearchRequest::keywords(["patient", "archive"]).with_limit(limit);
            let a = exit.search(&request).unwrap();
            let b = full.search(&request).unwrap();
            assert_eq!(a.len(), b.len(), "limit {limit}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "limit {limit}");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "limit {limit}");
            }
        }
    }

    #[test]
    fn abbreviated_queries_still_find_the_clinic() {
        // The paper's name-matcher motivation, end to end: query uses
        // abbreviations, index has full words.
        let engine = SchemrEngine::new(clinic_repo());
        engine.reindex_full();
        let results = engine
            .search(&SearchRequest::keywords(["pat", "ht"]))
            .unwrap();
        assert!(!results.is_empty());
        assert_eq!(results[0].title, "clinic");
    }
}
