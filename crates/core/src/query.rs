//! Query parsing: raw user input → [`schemr_model::QueryGraph`].

use schemr_model::QueryGraph;
use schemr_parse::{parse_fragment, ParseError};

/// Error building a query graph from user input.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryParseError {
    /// A fragment failed to parse.
    Fragment(ParseError),
    /// Neither keywords nor fragments were supplied.
    Empty,
}

impl std::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryParseError::Fragment(e) => write!(f, "fragment: {e}"),
            QueryParseError::Empty => write!(f, "query is empty"),
        }
    }
}

impl std::error::Error for QueryParseError {}

impl From<ParseError> for QueryParseError {
    fn from(e: ParseError) -> Self {
        QueryParseError::Fragment(e)
    }
}

/// Split a raw keyword string on commas and whitespace:
/// `"patient, height gender"` → `["patient", "height", "gender"]`.
pub fn parse_keywords(input: &str) -> Vec<String> {
    input
        .split([',', ';'])
        .flat_map(str::split_whitespace)
        .map(str::to_string)
        .collect()
}

/// Build a query graph from keyword strings and raw fragment sources
/// (each autodetected as DDL/XSD/header).
pub fn build_query_graph(
    keywords: &[String],
    fragment_sources: &[String],
) -> Result<QueryGraph, QueryParseError> {
    let mut q = QueryGraph::new();
    for kw in keywords {
        q.add_keyword(kw.clone());
    }
    for (i, src) in fragment_sources.iter().enumerate() {
        q.add_fragment(parse_fragment(&format!("fragment{i}"), src)?);
    }
    if q.is_empty() {
        return Err(QueryParseError::Empty);
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_split_on_commas_and_spaces() {
        assert_eq!(
            parse_keywords("patient, height gender;diagnosis"),
            vec!["patient", "height", "gender", "diagnosis"]
        );
        assert!(parse_keywords("  ,, ").is_empty());
    }

    #[test]
    fn figure1_query_graph_from_raw_input() {
        let q = build_query_graph(
            &["diagnosis".to_string()],
            &["CREATE TABLE patient (height REAL, gender TEXT)".to_string()],
        )
        .unwrap();
        assert_eq!(
            q.flat_texts(),
            vec!["patient", "height", "gender", "diagnosis"]
        );
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(build_query_graph(&[], &[]), Err(QueryParseError::Empty));
    }

    #[test]
    fn bad_fragment_is_an_error() {
        let err = build_query_graph(&[], &["CREATE TABLE (".to_string()]).unwrap_err();
        assert!(matches!(err, QueryParseError::Fragment(_)));
    }
}
