//! The `schemr-cli` binary: thin wrapper over [`schemr_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match schemr_cli::run(&args, &mut stdout) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
