//! # schemr-cli
//!
//! The command-line face of the reproduction: everything a user needs to
//! stand up a repository, fill it, search it, and serve it — without
//! writing Rust.
//!
//! ```text
//! schemr-cli init      <repo.json>
//! schemr-cli import    <repo.json> <file-or-dir>...
//! schemr-cli list      <repo.json>
//! schemr-cli show      <repo.json> <schema-id>
//! schemr-cli search    <repo.json> [-k "<keywords>"] [-f <fragment-file>] [-n <limit>] [--explain]
//! schemr-cli export    <repo.json> <schema-id> [--format ddl|graphml|svg]
//! schemr-cli summarize <repo.json> <schema-id> [--entities <n>]
//! schemr-cli stats     <repo.json>
//! schemr-cli serve     <repo.json> [--bind <addr>] [--event-log <path>]
//!                      [--slowlog-ms <n>] [--trace-ring <n>] [--profile-hz <n>]
//!                      [--slo-p99-ms <n>] [--slo-error-pct <f>]
//! schemr-cli profile   <host:port> [--ms <n>]
//! schemr-cli doctor    <host:port>
//! schemr-cli tracelog  tail   <event.log> [-n <limit>]
//! schemr-cli tracelog  stats  <event.log>
//! schemr-cli tracelog  replay <event.log> <repo.json>
//! ```
//!
//! The argument parser is deliberately from scratch (no dependency): each
//! subcommand takes positionals plus `-x value` / `--long value` flags.
//! [`run`] is the testable entry point; the binary only forwards to it.

use std::io::Write;
use std::sync::Arc;

use schemr::{SchemrEngine, SearchRequest};
use schemr_repo::{import, persist, Repository};

/// CLI errors (exit code 2).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io: {e}"))
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Flags that take no value — present or absent.
const BOOL_FLAGS: &[&str] = &["explain"];

/// Parsed flags: `-k v` / `--key v` pairs plus bare positionals.
struct Args {
    positionals: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Args, CliError> {
        let mut positionals = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                if BOOL_FLAGS.contains(&name) {
                    flags.push((name.to_string(), "true".to_string()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| err(format!("flag `{a}` expects a value")))?;
                flags.push((name.to_string(), value.clone()));
            } else {
                positionals.push(a.clone());
            }
        }
        Ok(Args { positionals, flags })
    }

    fn flag(&self, names: &[&str]) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| names.contains(&n.as_str()))
            .map(|(_, v)| v.as_str())
    }

    fn has_flag(&self, names: &[&str]) -> bool {
        self.flag(names).is_some()
    }

    fn positional(&self, ix: usize, what: &str) -> Result<&str, CliError> {
        self.positionals
            .get(ix)
            .map(String::as_str)
            .ok_or_else(|| err(format!("missing {what}")))
    }
}

const USAGE: &str = "\
usage: schemr-cli <command> [...]

commands:
  init      <repo.json>                                create an empty repository
  import    <repo.json> <file-or-dir>...               import DDL/XSD/CSV sources
  list      <repo.json>                                list stored schemas
  show      <repo.json> <id>                           print one schema (DDL + annotations)
  search    <repo.json> [-k words] [-f file] [-n N] [--explain]
                                                       three-phase schema search
                                                       (--explain prints the per-phase trace)
  export    <repo.json> <id> [--format ddl|xsd|graphml|svg]
  summarize <repo.json> <id> [--entities N]            importance-based summary
  stats     <repo.json>                                repository statistics
  serve     <repo.json> [--bind 127.0.0.1:7878]        start the search service
            [--event-log path] [--slowlog-ms N] [--trace-ring N]
            [--max-queue N] [--keepalive-requests N] [--drain-ms N]
            [--profile-hz N]    (span-stack sampling rate; 0 disables)
            [--slo-p99-ms N] [--slo-error-pct F]
                                (objectives for /debug/slo burn rates)
            [--serve-for-ms N]  (serve N ms, then drain and exit —
                                 exit code 0 on a clean drain)
  profile   <host:port> [--ms N]                       sample a running server's
                                                       span stacks for N ms and
                                                       print folded stacks
  doctor    <host:port>                                one-shot health check: folds
                                                       /healthz, SLO burn rates, the
                                                       workload sketch and index/memory
                                                       statistics into one verdict
                                                       (exit 0 healthy, 1 degraded,
                                                       2 unreachable)
  tracelog  tail   <event.log> [-n N]                  print the last N logged searches
  tracelog  stats  <event.log>                         aggregate timings across the log
  tracelog  replay <event.log> <repo.json>             re-run logged queries, diff results
";

/// Run the CLI. Returns the process exit code.
pub fn run(args: &[String], out: &mut impl Write) -> Result<i32, CliError> {
    let Some(command) = args.first().map(String::as_str) else {
        write!(out, "{USAGE}")?;
        return Ok(2);
    };
    let rest = Args::parse(&args[1..])?;
    match command {
        "help" | "--help" | "-h" => {
            write!(out, "{USAGE}")?;
            Ok(0)
        }
        "init" => cmd_init(&rest, out),
        "import" => cmd_import(&rest, out),
        "list" => cmd_list(&rest, out),
        "show" => cmd_show(&rest, out),
        "search" => cmd_search(&rest, out),
        "export" => cmd_export(&rest, out),
        "summarize" => cmd_summarize(&rest, out),
        "stats" => cmd_stats(&rest, out),
        "serve" => cmd_serve(&rest, out),
        "profile" => cmd_profile(&rest, out),
        "doctor" => cmd_doctor(&rest, out),
        "tracelog" => cmd_tracelog(&rest, out),
        other => Err(err(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

fn load_repo(args: &Args) -> Result<(String, Arc<Repository>), CliError> {
    let path = args.positional(0, "repository path")?.to_string();
    let repo = persist::load(&path).map_err(|e| err(format!("open {path}: {e}")))?;
    Ok((path, Arc::new(repo)))
}

fn parse_id(raw: &str) -> Result<schemr_model::SchemaId, CliError> {
    raw.parse()
        .map_err(|_| err(format!("bad schema id `{raw}` (expected e.g. s3)")))
}

fn cmd_init(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    let path = args.positional(0, "repository path")?;
    if std::path::Path::new(path).exists() {
        return Err(err(format!("{path} already exists")));
    }
    persist::save(&Repository::new(), path).map_err(|e| err(e.to_string()))?;
    writeln!(out, "created empty repository at {path}")?;
    Ok(0)
}

fn cmd_import(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    let (path, repo) = load_repo(args)?;
    if args.positionals.len() < 2 {
        return Err(err("import expects at least one file or directory"));
    }
    let mut imported = 0usize;
    let mut failed = 0usize;
    for source in &args.positionals[1..] {
        let p = std::path::Path::new(source);
        if p.is_dir() {
            let (ids, errors) = import::import_dir(&repo, p).map_err(|e| err(e.to_string()))?;
            imported += ids.len();
            failed += errors.len();
            for (file, e) in errors {
                writeln!(out, "  skipped {}: {e}", file.display())?;
            }
        } else {
            match import::import_file(&repo, p) {
                Ok(id) => {
                    writeln!(out, "  imported {} as {id}", p.display())?;
                    imported += 1;
                }
                Err(e) => {
                    writeln!(out, "  skipped {}: {e}", p.display())?;
                    failed += 1;
                }
            }
        }
    }
    persist::save(&repo, &path).map_err(|e| err(e.to_string()))?;
    writeln!(
        out,
        "imported {imported} schema(s), {failed} failed; saved {path}"
    )?;
    Ok(if imported > 0 { 0 } else { 1 })
}

fn cmd_list(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    let (_, repo) = load_repo(args)?;
    for id in repo.ids() {
        let stored = repo.get(id).expect("listed ids exist");
        let st = stored.stats();
        writeln!(
            out,
            "{id}\t{}\t{} entities, {} attributes\t{}",
            stored.metadata.title, st.entities, st.attributes, stored.metadata.summary
        )?;
    }
    writeln!(out, "{} schema(s)", repo.len())?;
    Ok(0)
}

fn cmd_show(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    let (_, repo) = load_repo(args)?;
    let id = parse_id(args.positional(1, "schema id")?)?;
    let stored = repo
        .get(id)
        .ok_or_else(|| err(format!("schema {id} not found")))?;
    writeln!(out, "# {} ({id})", stored.metadata.title)?;
    if !stored.metadata.summary.is_empty() {
        writeln!(out, "# {}", stored.metadata.summary)?;
    }
    if !stored.metadata.description.is_empty() {
        writeln!(out, "# {}", stored.metadata.description)?;
    }
    write!(out, "{}", schemr_parse::printer::print_ddl(&stored.schema))?;
    let annotations = schemr_codebook::annotate(&stored.schema);
    if !annotations.is_empty() {
        writeln!(out, "\n-- codebook annotations:")?;
        for a in annotations {
            writeln!(
                out,
                "--   {:<28} {}",
                stored.schema.path(a.element),
                a.semantic_type
            )?;
        }
    }
    Ok(0)
}

fn cmd_search(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    let (_, repo) = load_repo(args)?;
    let mut request = SearchRequest::default();
    if let Some(kw) = args.flag(&["k", "keywords"]) {
        request.keywords = schemr::parse_keywords(kw);
    }
    if let Some(file) = args.flag(&["f", "fragment"]) {
        let source = std::fs::read_to_string(file)?;
        let fragment = schemr_parse::parse_fragment("fragment", &source)
            .map_err(|e| err(format!("fragment {file}: {e}")))?;
        request.fragments.push(fragment);
    }
    if let Some(n) = args.flag(&["n", "limit"]) {
        request.limit = Some(n.parse().map_err(|_| err("limit must be an integer"))?);
    }
    if request.is_empty() {
        return Err(err("search needs -k keywords and/or -f fragment-file"));
    }
    if args.has_flag(&["explain"]) {
        request.explain = true;
    }
    let engine = SchemrEngine::new(repo);
    engine.reindex_full();
    let response = engine
        .search_detailed(&request)
        .map_err(|e| err(e.to_string()))?;
    write!(out, "{}", schemr_viz::format_results(&response.results))?;
    writeln!(
        out,
        "({} candidates, {:.1} ms)",
        response.candidates_evaluated,
        response.timings.total().as_secs_f64() * 1e3
    )?;
    if let Some(trace) = &response.trace {
        writeln!(out, "trace:")?;
        writeln!(
            out,
            "  candidates: {} from index, {} evaluated on {} thread(s)",
            trace.candidates_from_index, trace.candidates_evaluated, trace.match_threads_used
        )?;
        let t = &response.timings;
        for (name, d) in [
            ("candidate_extraction", t.candidate_extraction),
            ("matching", t.matching),
            ("scoring", t.scoring),
        ] {
            writeln!(
                out,
                "  phase {:<21} {:>9.3} ms",
                name,
                d.as_secs_f64() * 1e3
            )?;
        }
        for m in &trace.matchers {
            writeln!(
                out,
                "  matcher {:<19} {:>9.3} ms",
                m.name,
                m.wall.as_secs_f64() * 1e3
            )?;
        }
    }
    Ok(0)
}

fn cmd_export(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    let (_, repo) = load_repo(args)?;
    let id = parse_id(args.positional(1, "schema id")?)?;
    let stored = repo
        .get(id)
        .ok_or_else(|| err(format!("schema {id} not found")))?;
    match args.flag(&["format"]).unwrap_or("ddl") {
        "ddl" => write!(out, "{}", schemr_parse::printer::print_ddl(&stored.schema))?,
        "xsd" => write!(
            out,
            "{}",
            schemr_parse::xsd_printer::print_xsd(&stored.schema)
        )?,
        "graphml" => write!(
            out,
            "{}",
            schemr_viz::to_graphml(&stored.schema, &schemr_viz::GraphmlOptions::default())
        )?,
        "svg" => {
            let roots = stored.schema.roots();
            let layout = schemr_viz::tree_layout(&stored.schema, &roots, 3);
            write!(
                out,
                "{}",
                schemr_viz::render_svg(&stored.schema, &layout, &schemr_viz::SvgOptions::default())
            )?;
        }
        other => {
            return Err(err(format!(
                "unknown format `{other}` (ddl|xsd|graphml|svg)"
            )))
        }
    }
    Ok(0)
}

fn cmd_summarize(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    let (_, repo) = load_repo(args)?;
    let id = parse_id(args.positional(1, "schema id")?)?;
    let stored = repo
        .get(id)
        .ok_or_else(|| err(format!("schema {id} not found")))?;
    let max_entities = match args.flag(&["entities"]) {
        Some(n) => n.parse().map_err(|_| err("entities must be an integer"))?,
        None => 5,
    };
    let summary = schemr_viz::summarize(&stored.schema, max_entities, 6);
    write!(out, "{}", schemr_parse::printer::print_ddl(&summary))?;
    Ok(0)
}

fn cmd_stats(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    let (_, repo) = load_repo(args)?;
    let mut entities = 0usize;
    let mut attributes = 0usize;
    let mut fks = 0usize;
    for id in repo.ids() {
        let st = repo.get(id).expect("listed ids exist").stats();
        entities += st.entities;
        attributes += st.attributes;
        fks += st.foreign_keys;
    }
    writeln!(out, "schemas:      {}", repo.len())?;
    writeln!(out, "entities:     {entities}")?;
    writeln!(out, "attributes:   {attributes}")?;
    writeln!(out, "foreign keys: {fks}")?;
    writeln!(out, "revision:     {}", repo.revision())?;
    let engine = SchemrEngine::new(repo);
    engine.reindex_full();
    let ix = engine.index_stats();
    writeln!(out, "index terms:  {}", ix.distinct_terms)?;
    writeln!(out, "postings:     {}", ix.postings)?;
    Ok(0)
}

fn cmd_serve(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    let (_, repo) = load_repo(args)?;
    let bind = args.flag(&["bind"]).unwrap_or("127.0.0.1:7878").to_string();
    let mut config = schemr::EngineConfig::default();
    if let Some(path) = args.flag(&["event-log"]) {
        config.trace.event_log_path = Some(path.into());
    }
    if let Some(ms) = args.flag(&["slowlog-ms"]) {
        let ms: u64 = ms
            .parse()
            .map_err(|_| err("slowlog-ms must be an integer (milliseconds)"))?;
        config.trace.slow_threshold = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = args.flag(&["trace-ring"]) {
        config.trace.ring_capacity = n
            .parse()
            .map_err(|_| err("trace-ring must be an integer"))?;
    }
    if let Some(hz) = args.flag(&["profile-hz"]) {
        config.trace.profile_hz = hz
            .parse()
            .map_err(|_| err("profile-hz must be an integer (samples per second; 0 disables)"))?;
    }
    let mut server_config = schemr_server::ServerConfig {
        bind,
        workers: 4,
        ..Default::default()
    };
    if let Some(n) = args.flag(&["max-queue"]) {
        server_config.max_queue = n.parse().map_err(|_| err("max-queue must be an integer"))?;
    }
    if let Some(n) = args.flag(&["keepalive-requests"]) {
        server_config.keepalive_requests = n
            .parse()
            .map_err(|_| err("keepalive-requests must be an integer"))?;
    }
    if let Some(ms) = args.flag(&["drain-ms"]) {
        let ms: u64 = ms
            .parse()
            .map_err(|_| err("drain-ms must be an integer (milliseconds)"))?;
        server_config.drain_deadline = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = args.flag(&["slo-p99-ms"]) {
        let ms: u64 = ms
            .parse()
            .map_err(|_| err("slo-p99-ms must be an integer (milliseconds)"))?;
        server_config.slo.p99_latency = std::time::Duration::from_millis(ms);
    }
    if let Some(pct) = args.flag(&["slo-error-pct"]) {
        server_config.slo.error_budget_pct = pct
            .parse()
            .map_err(|_| err("slo-error-pct must be a number (percent of requests)"))?;
    }
    let serve_for = match args.flag(&["serve-for-ms"]) {
        Some(ms) => Some(std::time::Duration::from_millis(
            ms.parse()
                .map_err(|_| err("serve-for-ms must be an integer (milliseconds)"))?,
        )),
        None => None,
    };
    let engine = Arc::new(SchemrEngine::with_config(repo, config));
    engine.reindex_full();
    let server = schemr_server::SchemrServer::start(engine, server_config)?;
    match serve_for {
        // Bounded run (smoke tests, CI): serve for the window, then
        // drain. The exit code reports whether the drain was clean.
        Some(window) => {
            writeln!(
                out,
                "serving on http://{} for {} ms, then draining",
                server.addr(),
                window.as_millis()
            )?;
            out.flush()?;
            std::thread::sleep(window);
            let clean = server.shutdown();
            writeln!(
                out,
                "drain {}",
                if clean { "clean" } else { "exceeded deadline" }
            )?;
            Ok(if clean { 0 } else { 1 })
        }
        None => {
            writeln!(out, "serving on http://{} — Ctrl-C to stop", server.addr())?;
            out.flush()?;
            // Serve until the process is killed.
            loop {
                std::thread::park();
            }
        }
    }
}

/// One `GET` against a running server: connect, send, read to EOF,
/// return (status, body). `timeout_ms` bounds the read.
fn http_get(addr: &str, target: &str, timeout_ms: u64) -> Result<(u16, String), CliError> {
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| err(format!("connect {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(timeout_ms)))
        .map_err(|e| err(format!("socket setup: {e}")))?;
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| err(format!("send request: {e}")))?;
    let mut raw = String::new();
    std::io::Read::read_to_string(&mut stream, &mut raw)
        .map_err(|e| err(format!("read response: {e}")))?;
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    Ok((status, body.to_string()))
}

/// `profile <host:port> [--ms N]` — ask a running server to sample its
/// live span stacks for a window and print the folded stacks, ready to
/// pipe into a flamegraph renderer.
fn cmd_profile(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    let addr = args
        .positional(0, "server address (host:port)")?
        .to_string();
    let ms: u64 = match args.flag(&["ms"]) {
        Some(v) => v
            .parse()
            .map_err(|_| err("ms must be an integer (milliseconds)"))?,
        None => 500,
    };
    // The server blocks for the whole window before answering; allow it
    // that plus generous headroom before giving up on the read.
    let (status, body) = http_get(&addr, &format!("/debug/profile?ms={ms}"), ms + 10_000)?;
    if status != 200 {
        return Err(err(format!(
            "{addr} answered {status}: {}",
            body.trim().lines().next().unwrap_or("")
        )));
    }
    write!(out, "{body}")?;
    Ok(0)
}

/// Render a byte count the way an operator reads it.
fn fmt_bytes(b: f64) -> String {
    if b >= 1024.0 * 1024.0 {
        format!("{:.1} MiB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{b:.0} B")
    }
}

/// `doctor <host:port>` — one-shot operational check against a running
/// server. Folds `/healthz`, `/debug/slo`, `/debug/workload`,
/// `/debug/index` and `/debug/memory` into a single operator-readable
/// verdict: exit 0 when healthy, 1 when serving but degraded, 2 when
/// unreachable. The debug endpoints are loopback-gated, so run doctor on
/// the host the server lives on.
fn cmd_doctor(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    use schemr_obs::json::Json;
    const TIMEOUT_MS: u64 = 5_000;
    /// Tombstone fraction past which a vacuum is overdue.
    const TOMBSTONE_WARN: f64 = 0.30;
    /// Zero-result fraction that signals a corpus/workload mismatch…
    const ZERO_RATE_WARN: f64 = 0.50;
    /// …once the sample is big enough to mean something.
    const ZERO_RATE_MIN_QUERIES: u64 = 20;

    let addr = args
        .positional(0, "server address (host:port)")?
        .to_string();
    let fetch = |target: &str| -> Result<(u16, Json), CliError> {
        let (status, body) = http_get(&addr, target, TIMEOUT_MS)?;
        let json = Json::parse(&body)
            .map_err(|e| err(format!("{target} answered {status} with bad JSON: {e}")))?;
        Ok((status, json))
    };
    let get_u64 = |j: &Json, key: &str| j.get(key).and_then(Json::as_u64).unwrap_or(0);
    let get_f64 = |j: &Json, key: &str| j.get(key).and_then(Json::as_f64).unwrap_or(0.0);

    let mut problems: Vec<String> = Vec::new();
    writeln!(out, "schemr doctor @ {addr}")?;

    // /healthz — liveness and the folded SLO signal.
    let (_, health) = fetch("/healthz")?;
    let state = health
        .get("status")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    writeln!(
        out,
        "  health     {state} (revision {}, {} doc(s) indexed)",
        get_u64(&health, "revision"),
        get_u64(&health, "indexed_docs"),
    )?;
    if state != "ok" {
        problems.push(format!("health status is `{state}`"));
    }

    // /debug/slo — burn rates per rolling window.
    let (slo_status, slo) = fetch("/debug/slo")?;
    if slo_status == 200 {
        let degraded = slo.get("degraded").and_then(Json::as_bool).unwrap_or(false);
        let windows = slo.get("windows").and_then(Json::as_arr).unwrap_or(&[]);
        let burns: Vec<String> = windows
            .iter()
            .map(|w| {
                format!(
                    "{} latency×{:.2} errors×{:.2}",
                    w.get("window").and_then(Json::as_str).unwrap_or("?"),
                    get_f64(w, "latency_burn"),
                    get_f64(w, "error_burn"),
                )
            })
            .collect();
        writeln!(
            out,
            "  slo        p99 objective {} ms, error budget {}%: {}",
            get_u64(&slo, "p99_objective_ms"),
            get_f64(&slo, "error_budget_pct"),
            if burns.is_empty() {
                "no windows".to_string()
            } else {
                burns.join(", ")
            },
        )?;
        if degraded {
            problems.push("fast-window SLO burn rate above 1.0".to_string());
        }
    } else {
        writeln!(out, "  slo        unavailable (http {slo_status})")?;
    }

    // /debug/workload — the heavy-hitter sketch. 404 means the workload
    // plane is off (tracing disabled or sketch capacity 0): a
    // configuration note, not a failure.
    let (wl_status, wl_body) = http_get(&addr, "/debug/workload", TIMEOUT_MS)?;
    if wl_status == 200 {
        let wl =
            Json::parse(&wl_body).map_err(|e| err(format!("/debug/workload: bad JSON: {e}")))?;
        let total = get_u64(&wl, "total_queries");
        let zero = get_u64(&wl, "zero_result_queries");
        let rate = get_f64(&wl, "zero_result_rate");
        let top = wl
            .get("top_terms")
            .and_then(Json::as_arr)
            .and_then(|a| a.first())
            .and_then(|h| h.get("key"))
            .and_then(Json::as_str)
            .map(|k| format!(", top term \"{k}\""))
            .unwrap_or_default();
        writeln!(
            out,
            "  workload   {total} query(ies), {zero} zero-result ({:.1}%), ~{:.0} distinct term(s){top}",
            rate * 100.0,
            get_f64(&wl, "distinct_terms_estimate"),
        )?;
        if total >= ZERO_RATE_MIN_QUERIES && rate > ZERO_RATE_WARN {
            problems.push(format!(
                "zero-result rate {:.0}% — the corpus is not answering the workload",
                rate * 100.0
            ));
        }
    } else {
        writeln!(out, "  workload   analytics off (http {wl_status})")?;
    }

    // /debug/index — postings statistics; tombstone ratio is the vacuum
    // pressure gauge.
    let (_, index) = fetch("/debug/index?limit=1")?;
    let tombstone = get_f64(&index, "tombstone_ratio");
    writeln!(
        out,
        "  index      {} live doc(s), {} term(s), {} posting(s), tombstone ratio {:.1}%",
        get_u64(&index, "live_docs"),
        get_u64(&index, "distinct_terms"),
        get_u64(&index, "postings"),
        tombstone * 100.0,
    )?;
    if tombstone > TOMBSTONE_WARN {
        problems.push(format!(
            "index tombstone ratio {:.0}% — vacuum is overdue",
            tombstone * 100.0
        ));
    }

    // /debug/memory — deep resident bytes per structure.
    let (_, mem) = fetch("/debug/memory")?;
    let nested = |obj: &str, key: &str| {
        mem.get(obj)
            .and_then(|o| o.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    writeln!(
        out,
        "  memory     index {} deep, artifact cache {}, trace rings {}",
        fmt_bytes(nested("index", "deep_bytes")),
        fmt_bytes(nested("match_artifact_cache", "resident_bytes")),
        fmt_bytes(nested("trace_ring", "bytes") + nested("slowlog_ring", "bytes")),
    )?;

    if problems.is_empty() {
        writeln!(out, "verdict: healthy")?;
        Ok(0)
    } else {
        for p in &problems {
            writeln!(out, "  !! {p}")?;
        }
        writeln!(out, "verdict: degraded ({} finding(s))", problems.len())?;
        Ok(1)
    }
}

fn load_events(args: &Args, ix: usize) -> Result<(String, Vec<schemr_obs::SearchEvent>), CliError> {
    let path = args.positional(ix, "event-log path")?.to_string();
    let events = schemr_obs::read_events_at(std::path::Path::new(&path))
        .map_err(|e| err(format!("read {path}: {e}")))?;
    Ok((path, events))
}

/// `tracelog tail|stats|replay` — inspect and re-execute the durable
/// search event log written by `serve --event-log` (or any engine with
/// `TracerConfig::event_log_path` set).
fn cmd_tracelog(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    match args.positional(0, "tracelog subcommand (tail|stats|replay)")? {
        "tail" => cmd_tracelog_tail(args, out),
        "stats" => cmd_tracelog_stats(args, out),
        "replay" => cmd_tracelog_replay(args, out),
        other => Err(err(format!(
            "unknown tracelog subcommand `{other}` (tail|stats|replay)"
        ))),
    }
}

fn cmd_tracelog_tail(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    let (_, events) = load_events(args, 1)?;
    let limit = match args.flag(&["n", "limit"]) {
        Some(n) => n.parse().map_err(|_| err("limit must be an integer"))?,
        None => 20usize,
    };
    let start = events.len().saturating_sub(limit);
    for ev in &events[start..] {
        let top = ev.results.first().map(|r| r.id.as_str()).unwrap_or("-");
        writeln!(
            out,
            "{}\t{:>9.3} ms\t{} result(s)\ttop={}\t\"{}\"",
            ev.trace_id,
            ev.total_us as f64 / 1e3,
            ev.results.len(),
            top,
            ev.query
        )?;
    }
    writeln!(out, "{} of {} event(s)", events.len() - start, events.len())?;
    Ok(0)
}

fn cmd_tracelog_stats(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    let (_, events) = load_events(args, 1)?;
    writeln!(out, "events:       {}", events.len())?;
    if events.is_empty() {
        return Ok(0);
    }
    let n = events.len() as f64;
    let total: u64 = events.iter().map(|e| e.total_us).sum();
    writeln!(out, "mean total:   {:.3} ms", total as f64 / n / 1e3)?;
    // Mean per phase, in the order phases first appear in the log.
    let mut phases: Vec<(String, u64)> = Vec::new();
    for ev in &events {
        for (name, us) in &ev.phase_us {
            match phases.iter_mut().find(|(n, _)| n == name) {
                Some((_, sum)) => *sum += us,
                None => phases.push((name.clone(), *us)),
            }
        }
    }
    for (name, sum) in &phases {
        writeln!(out, "mean {:<21} {:>9.3} ms", name, *sum as f64 / n / 1e3)?;
    }
    let slowest = events.iter().max_by_key(|e| e.total_us).expect("non-empty");
    writeln!(
        out,
        "slowest:      {} ({:.3} ms, \"{}\")",
        slowest.trace_id,
        slowest.total_us as f64 / 1e3,
        slowest.query
    )?;
    let empty = events.iter().filter(|e| e.results.is_empty()).count();
    writeln!(out, "empty results: {empty}")?;
    Ok(0)
}

/// Re-execute every logged query against the repository as it stands
/// now and diff the result lists. Queries are replayed from the logged
/// normalized term text, so fragment structure is flattened to keywords;
/// on an unchanged repository the top-1 (and normally the full list)
/// must come back identical.
fn cmd_tracelog_replay(args: &Args, out: &mut impl Write) -> Result<i32, CliError> {
    let (_, events) = load_events(args, 1)?;
    let repo_path = args.positional(2, "repository path")?;
    let repo = persist::load(repo_path).map_err(|e| err(format!("open {repo_path}: {e}")))?;
    let engine = SchemrEngine::new(Arc::new(repo));
    engine.reindex_full();

    let mut drifted = 0usize;
    let mut replayed = 0usize;
    for ev in &events {
        let keywords = schemr::parse_keywords(&ev.query);
        if keywords.is_empty() {
            writeln!(out, "{}\tskipped (empty query)", ev.trace_id)?;
            continue;
        }
        let request = SearchRequest {
            keywords,
            limit: Some(ev.results.len().max(1)),
            ..SearchRequest::default()
        };
        let response = engine
            .search_detailed(&request)
            .map_err(|e| err(e.to_string()))?;
        replayed += 1;
        let logged: Vec<String> = ev.results.iter().map(|r| r.id.clone()).collect();
        let now: Vec<String> = response.results.iter().map(|r| r.id.to_string()).collect();
        if logged == now {
            writeln!(out, "{}\tok ({} result(s))", ev.trace_id, now.len())?;
        } else if logged.first() == now.first() {
            writeln!(
                out,
                "{}\ttop-1 stable, tail drifted (logged {:?}, now {:?})",
                ev.trace_id, logged, now
            )?;
        } else {
            drifted += 1;
            writeln!(
                out,
                "{}\tTOP-1 DRIFTED (logged {:?}, now {:?})",
                ev.trace_id, logged, now
            )?;
        }
    }
    writeln!(
        out,
        "replayed {replayed} of {} event(s); {drifted} with a changed top-1",
        events.len()
    )?;
    Ok(if drifted == 0 { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> (i32, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let code = match run(&args, &mut out) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("CLI ERR: {e}");
                2
            }
        };
        (code, String::from_utf8(out).unwrap())
    }

    fn run_err(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap_err().to_string()
    }

    fn temp_repo() -> (tempdir::TempDirGuard, String) {
        let dir = tempdir::guard("schemr-cli-test");
        let path = dir.path.join("repo.json").display().to_string();
        let (code, _) = run_str(&["init", &path]);
        assert_eq!(code, 0);
        (dir, path)
    }

    /// Minimal temp-dir helper (std only).
    mod tempdir {
        pub struct TempDirGuard {
            pub path: std::path::PathBuf,
        }
        impl Drop for TempDirGuard {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.path);
            }
        }
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        pub fn guard(prefix: &str) -> TempDirGuard {
            let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&path).unwrap();
            TempDirGuard { path }
        }
    }

    #[test]
    fn no_args_prints_usage() {
        let (code, out) = run_str(&[]);
        assert_eq!(code, 2);
        assert!(out.contains("usage:"));
        let (code, out) = run_str(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("search"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run_err(&["frobnicate"]).contains("unknown command"));
    }

    #[test]
    fn init_import_list_show_roundtrip() {
        let (dir, repo) = temp_repo();
        let ddl = dir.path.join("clinic.sql");
        std::fs::write(
            &ddl,
            "CREATE TABLE patient (height REAL, gender TEXT, latitude REAL, dob DATE)",
        )
        .unwrap();
        let (code, out) = run_str(&["import", &repo, ddl.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("imported 1 schema"));

        let (code, out) = run_str(&["list", &repo]);
        assert_eq!(code, 0);
        assert!(out.contains("clinic"));
        assert!(out.contains("1 schema(s)"));

        let (code, out) = run_str(&["show", &repo, "s0"]);
        assert_eq!(code, 0);
        assert!(out.contains("CREATE TABLE patient"));
        assert!(
            out.contains("latitude"),
            "codebook annotation expected: {out}"
        );
    }

    #[test]
    fn search_finds_the_right_schema() {
        let (dir, repo) = temp_repo();
        std::fs::write(
            dir.path.join("clinic.sql"),
            "CREATE TABLE patient (height REAL, gender TEXT, diagnosis TEXT)",
        )
        .unwrap();
        std::fs::write(
            dir.path.join("store.sql"),
            "CREATE TABLE orders (total DECIMAL, quantity INT, customer TEXT)",
        )
        .unwrap();
        let (code, _) = run_str(&["import", &repo, dir.path.to_str().unwrap()]);
        assert_eq!(code, 0);

        let (code, out) = run_str(&["search", &repo, "-k", "patient, height", "-n", "1"]);
        assert_eq!(code, 0);
        assert!(out.contains("clinic"), "{out}");
        assert!(!out.lines().any(|l| l.starts_with("2")), "limit 1: {out}");

        // Fragment search from a file.
        let frag = dir.path.join("frag.sql");
        std::fs::write(&frag, "CREATE TABLE orders (total DECIMAL)").unwrap();
        let (code, out) = run_str(&["search", &repo, "-f", frag.to_str().unwrap()]);
        assert_eq!(code, 0);
        assert!(out.lines().nth(2).unwrap().contains("store"), "{out}");
    }

    #[test]
    fn search_explain_prints_the_trace() {
        let (dir, repo) = temp_repo();
        std::fs::write(
            dir.path.join("clinic.sql"),
            "CREATE TABLE patient (height REAL, gender TEXT, diagnosis TEXT)",
        )
        .unwrap();
        run_str(&["import", &repo, dir.path.to_str().unwrap()]);

        let (code, plain) = run_str(&["search", &repo, "-k", "patient"]);
        assert_eq!(code, 0);
        assert!(!plain.contains("trace:"));

        let (code, out) = run_str(&["search", &repo, "-k", "patient", "--explain"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("trace:"), "{out}");
        assert!(out.contains("phase candidate_extraction"), "{out}");
        assert!(out.contains("phase matching"));
        assert!(out.contains("phase scoring"));
        assert!(out.contains("matcher name"));
        assert!(out.contains("matcher context"));
        assert!(out.contains("evaluated on"));
    }

    #[test]
    fn export_formats() {
        let (dir, repo) = temp_repo();
        std::fs::write(
            dir.path.join("a.sql"),
            "CREATE TABLE t (a INT, b TEXT, c DATE, d REAL)",
        )
        .unwrap();
        run_str(&["import", &repo, dir.path.to_str().unwrap()]);
        let (_, ddl) = run_str(&["export", &repo, "s0"]);
        assert!(ddl.contains("CREATE TABLE t"));
        let (_, graphml) = run_str(&["export", &repo, "s0", "--format", "graphml"]);
        assert!(graphml.contains("<graphml"));
        let (_, svg) = run_str(&["export", &repo, "s0", "--format", "svg"]);
        assert!(svg.starts_with("<svg"));
        let (_, xsd) = run_str(&["export", &repo, "s0", "--format", "xsd"]);
        assert!(xsd.contains("xs:schema"));
        assert!(run_err(&["export", &repo, "s0", "--format", "pdf"]).contains("unknown format"));
    }

    #[test]
    fn summarize_caps_entities() {
        let (dir, repo) = temp_repo();
        std::fs::write(
            dir.path.join("warehouse.sql"),
            "CREATE TABLE fact (a INT, b INT, s_id INT, p_id INT);
             CREATE TABLE dim_s (id INT, x TEXT);
             CREATE TABLE dim_p (id INT, y TEXT);
             CREATE TABLE scratch (j TEXT)",
        )
        .unwrap();
        run_str(&["import", &repo, dir.path.to_str().unwrap()]);
        let (code, out) = run_str(&["summarize", &repo, "s0", "--entities", "2"]);
        assert_eq!(code, 0);
        assert_eq!(out.matches("CREATE TABLE").count(), 2);
        assert!(out.contains("fact"));
    }

    #[test]
    fn stats_reports_counts() {
        let (dir, repo) = temp_repo();
        std::fs::write(
            dir.path.join("a.sql"),
            "CREATE TABLE t (a INT, b TEXT, c DATE, d REAL)",
        )
        .unwrap();
        run_str(&["import", &repo, dir.path.to_str().unwrap()]);
        let (code, out) = run_str(&["stats", &repo]);
        assert_eq!(code, 0);
        assert!(out.contains("schemas:      1"));
        assert!(out.contains("attributes:   4"));
    }

    #[test]
    fn errors_are_informative() {
        assert!(run_err(&["list", "/nonexistent/repo.json"]).contains("open"));
        let (dir, repo) = temp_repo();
        let _ = dir;
        assert!(run_err(&["show", &repo, "zzz"]).contains("bad schema id"));
        assert!(run_err(&["show", &repo, "s99"]).contains("not found"));
        assert!(run_err(&["search", &repo]).contains("needs -k"));
        assert!(run_err(&["import", &repo]).contains("at least one"));
        assert!(run_err(&["search", &repo, "-k"]).contains("expects a value"));
    }

    #[test]
    fn init_refuses_to_overwrite() {
        let (_dir, repo) = temp_repo();
        assert!(run_err(&["init", &repo]).contains("already exists"));
    }

    /// Run searches through an engine configured to write `log`, so the
    /// tracelog tests exercise the same JSONL the server produces.
    fn write_event_log(repo: &str, log: &std::path::Path, queries: &[&str]) {
        let repo = Arc::new(persist::load(repo).unwrap());
        let engine = SchemrEngine::with_config(
            repo,
            schemr::EngineConfig {
                trace: schemr_obs::TracerConfig {
                    event_log_path: Some(log.to_path_buf()),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        engine.reindex_full();
        for q in queries {
            let request = SearchRequest {
                keywords: schemr::parse_keywords(q),
                ..SearchRequest::default()
            };
            engine.search_detailed(&request).unwrap();
        }
    }

    #[test]
    fn tracelog_tail_and_stats_summarize_the_log() {
        let (dir, repo) = temp_repo();
        std::fs::write(
            dir.path.join("clinic.sql"),
            "CREATE TABLE patient (height REAL, gender TEXT, diagnosis TEXT)",
        )
        .unwrap();
        run_str(&["import", &repo, dir.path.to_str().unwrap()]);
        let log = dir.path.join("events.log");
        write_event_log(&repo, &log, &["patient height", "gender"]);
        let log_s = log.to_str().unwrap();

        let (code, out) = run_str(&["tracelog", "tail", log_s]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("patient height"), "{out}");
        assert!(out.contains("top=s0"), "{out}");
        assert!(out.contains("2 of 2 event(s)"), "{out}");

        let (code, out) = run_str(&["tracelog", "tail", log_s, "-n", "1"]);
        assert_eq!(code, 0);
        assert!(
            !out.contains("patient height"),
            "limit 1 keeps newest: {out}"
        );
        assert!(out.contains("1 of 2 event(s)"), "{out}");

        let (code, out) = run_str(&["tracelog", "stats", log_s]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("events:       2"), "{out}");
        assert!(out.contains("mean candidate_extraction"), "{out}");
        assert!(out.contains("mean matching"), "{out}");
        assert!(out.contains("mean tightness_scoring"), "{out}");
        assert!(out.contains("slowest:"), "{out}");
    }

    #[test]
    fn tracelog_replay_reproduces_logged_results() {
        let (dir, repo) = temp_repo();
        std::fs::write(
            dir.path.join("clinic.sql"),
            "CREATE TABLE patient (height REAL, gender TEXT, diagnosis TEXT)",
        )
        .unwrap();
        std::fs::write(
            dir.path.join("store.sql"),
            "CREATE TABLE orders (total DECIMAL, quantity INT, customer TEXT)",
        )
        .unwrap();
        run_str(&["import", &repo, dir.path.to_str().unwrap()]);
        let log = dir.path.join("events.log");
        write_event_log(&repo, &log, &["patient height", "orders total customer"]);

        let (code, out) = run_str(&["tracelog", "replay", log.to_str().unwrap(), &repo]);
        assert_eq!(
            code, 0,
            "replay must reproduce top-1 on an unchanged repo: {out}"
        );
        assert!(
            out.contains("replayed 2 of 2 event(s); 0 with a changed top-1"),
            "{out}"
        );
        assert!(!out.contains("DRIFTED"), "{out}");
    }

    #[test]
    fn tracelog_errors_are_informative() {
        assert!(run_err(&["tracelog"]).contains("tracelog subcommand"));
        assert!(run_err(&["tracelog", "frob", "x"]).contains("unknown tracelog subcommand"));
        assert!(run_err(&["tracelog", "tail", "/nonexistent/events.log"]).contains("read"));
        let (_dir, repo) = temp_repo();
        assert!(run_err(&["serve", &repo, "--slowlog-ms", "abc"]).contains("slowlog-ms"));
        assert!(run_err(&["serve", &repo, "--trace-ring", "x"]).contains("trace-ring"));
        assert!(run_err(&["serve", &repo, "--max-queue", "x"]).contains("max-queue"));
        assert!(
            run_err(&["serve", &repo, "--keepalive-requests", "x"]).contains("keepalive-requests")
        );
        assert!(run_err(&["serve", &repo, "--drain-ms", "x"]).contains("drain-ms"));
        assert!(run_err(&["serve", &repo, "--serve-for-ms", "x"]).contains("serve-for-ms"));
        assert!(run_err(&["serve", &repo, "--profile-hz", "x"]).contains("profile-hz"));
        assert!(run_err(&["serve", &repo, "--slo-p99-ms", "abc"]).contains("slo-p99-ms"));
        assert!(run_err(&["serve", &repo, "--slo-error-pct", "x"]).contains("slo-error-pct"));
        assert!(run_err(&["profile"]).contains("server address"));
        assert!(run_err(&["profile", "127.0.0.1:1", "--ms", "x"]).contains("ms must be"));
        assert!(run_err(&["doctor"]).contains("server address"));
        assert!(run_err(&["doctor", "127.0.0.1:1"]).contains("connect"));
    }

    fn start_server(engine: Arc<SchemrEngine>) -> schemr_server::SchemrServer {
        schemr_server::SchemrServer::start(
            engine,
            schemr_server::ServerConfig {
                bind: "127.0.0.1:0".to_string(),
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn doctor_reports_a_healthy_server() {
        let (dir, repo) = temp_repo();
        std::fs::write(
            dir.path.join("clinic.sql"),
            "CREATE TABLE patient (height REAL, gender TEXT, diagnosis TEXT)",
        )
        .unwrap();
        run_str(&["import", &repo, dir.path.to_str().unwrap()]);
        let repo = Arc::new(persist::load(&repo).unwrap());
        let engine = Arc::new(SchemrEngine::with_config(
            repo,
            schemr::EngineConfig {
                trace: schemr_obs::TracerConfig {
                    profile_hz: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
        ));
        engine.reindex_full();
        // Feed the workload sketch so doctor has analytics to report.
        engine
            .search(&SearchRequest::keywords(["patient", "height"]))
            .unwrap();
        let server = start_server(engine);
        let addr = server.addr().to_string();

        let (code, out) = run_str(&["doctor", &addr]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("verdict: healthy"), "{out}");
        assert!(out.contains("health     ok"), "{out}");
        assert!(out.contains("1 query(ies), 0 zero-result"), "{out}");
        assert!(out.contains("tombstone ratio 0.0%"), "{out}");
        assert!(out.contains("slo"), "{out}");
        assert!(out.contains("memory     index"), "{out}");
        server.shutdown();
    }

    #[test]
    fn doctor_flags_an_empty_server_as_degraded() {
        let engine = Arc::new(SchemrEngine::with_config(
            Arc::new(Repository::new()),
            schemr::EngineConfig {
                trace: schemr_obs::TracerConfig {
                    profile_hz: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
        ));
        engine.reindex_full();
        let server = start_server(engine);
        let addr = server.addr().to_string();

        let (code, out) = run_str(&["doctor", &addr]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("health     unavailable"), "{out}");
        assert!(out.contains("verdict: degraded"), "{out}");
        assert!(out.contains("health status is `unavailable`"), "{out}");
        server.shutdown();
    }

    #[test]
    fn serve_for_a_bounded_window_exits_with_a_clean_drain() {
        let (_dir, repo) = temp_repo();
        let (code, out) = run_str(&[
            "serve",
            &repo,
            "--bind",
            "127.0.0.1:0",
            "--serve-for-ms",
            "100",
            "--drain-ms",
            "2000",
            "--max-queue",
            "8",
            "--keepalive-requests",
            "4",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("then draining"), "{out}");
        assert!(out.contains("drain clean"), "{out}");
    }
}
