//! **E3 — Name-matcher robustness to the paper's three perturbation
//! classes.**
//!
//! "We found this matcher to be particularly helpful for properly ranking
//! schemas containing abbreviated terms, alternate grammatical forms, and
//! delimiter characters not in the original query."
//!
//! Part A sweeps each perturbation class at increasing rates and measures
//! the mean similarity the n-gram [`NameMatcher`] vs the exact
//! [`TokenMatcher`] assigns to (original, perturbed) name pairs — the
//! matcher-level view.
//!
//! Part B re-runs retrieval (MRR) on corpora perturbed with one class at a
//! time, with each matcher alone in the ensemble — the end-to-end view.
//!
//! Run with `cargo run --release -p schemr-bench --bin e3_name_robustness`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use schemr_bench::{variants, Table, Testbed};
use schemr_corpus::{Corpus, CorpusConfig, PerturbConfig, Perturber, Workload, WorkloadConfig};
use schemr_match::{NameMatcher, TokenMatcher};

/// Two-word names drawn from the kind of vocabulary the corpus uses.
const BASE_NAMES: &[&str] = &[
    "patient_height",
    "patient_gender",
    "blood_pressure",
    "customer_address",
    "order_quantity",
    "species_abundance",
    "station_temperature",
    "account_balance",
    "student_grade",
    "vehicle_mileage",
    "first_name",
    "visit_date",
];

fn scalar_sweep() {
    println!("Part A: mean similarity of (original, perturbed) name pairs\n");
    let name = NameMatcher::new();
    let token = TokenMatcher::new();
    type ClassMaker = fn(f64) -> PerturbConfig;
    let classes: [(&str, ClassMaker); 3] = [
        ("abbreviation", PerturbConfig::only_abbreviation),
        ("morphology", PerturbConfig::only_morphology),
        ("delimiter", PerturbConfig::only_delimiter),
    ];
    let mut table = Table::new(&["class", "rate", "ngram-name", "exact-token", "gap"]);
    for (class_name, make) in classes {
        for rate in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let perturber = Perturber::new(make(rate));
            let mut rng = StdRng::seed_from_u64(1234);
            let (mut sum_n, mut sum_t, mut n) = (0.0f64, 0.0f64, 0usize);
            for base in BASE_NAMES {
                for _ in 0..20 {
                    let variant = perturber.perturb_name(base, &mut rng);
                    sum_n += name.similarity(base, &variant);
                    sum_t += token.similarity(base, &variant);
                    n += 1;
                }
            }
            let mean_n = sum_n / n as f64;
            let mean_t = sum_t / n as f64;
            table.row(&[
                class_name.to_string(),
                format!("{rate:.2}"),
                format!("{mean_n:.3}"),
                format!("{mean_t:.3}"),
                format!("{:+.3}", mean_n - mean_t),
            ]);
        }
    }
    table.print();
}

fn retrieval_sweep(quick: bool) {
    println!("\nPart B: retrieval MRR with each matcher alone, per QUERY perturbation class\n");
    // The paper's scenario: the repository holds full names; the *user*
    // types abbreviated / inflected / re-delimited terms. The corpus is
    // unperturbed (families differ by attribute churn only); the workload
    // perturbs query terms with one class at a time.
    let classes: [(&str, PerturbConfig); 4] = [
        ("none", PerturbConfig::none()),
        ("abbreviation 0.7", PerturbConfig::only_abbreviation(0.7)),
        ("morphology 0.7", PerturbConfig::only_morphology(0.7)),
        ("delimiter 1.0", PerturbConfig::only_delimiter(1.0)),
    ];
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: if quick { 300 } else { 2_000 },
        seed: 21,
        perturb: PerturbConfig::none(),
        ..CorpusConfig::default()
    });
    let bed = Testbed::build(&corpus);
    let mut table = Table::new(&["query perturbation", "ngram-name MRR", "exact-token MRR"]);
    for (class_name, perturb) in classes {
        let workload = Workload::generate(
            &corpus,
            &WorkloadConfig {
                queries: if quick { 20 } else { 100 },
                seed: 22,
                perturb,
                ..Default::default()
            },
        );
        bed.engine.set_ensemble(variants::name_only_ensemble());
        let ngram = bed.evaluate(&workload, 10);
        bed.engine.set_ensemble(variants::token_only_ensemble());
        let token = bed.evaluate(&workload, 10);
        table.row(&[
            class_name.to_string(),
            format!("{:.3}", ngram.mrr),
            format!("{:.3}", token.mrr),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: the two matchers tie on unperturbed queries; once the user\n\
         abbreviates or inflects terms, the n-gram matcher keeps ranking the right\n\
         families while exact-token matching falls off — the paper's motivation for\n\
         the name matcher."
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("E3: name-matcher robustness (n-gram vs exact-token)\n");
    scalar_sweep();
    retrieval_sweep(quick);
}
