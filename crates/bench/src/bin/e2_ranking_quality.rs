//! **E2 — Ranking quality: full Schemr vs baselines.**
//!
//! The paper claims Schemr ranks "schemas according to a query's semantic
//! intent" by combining document search, schema matching, and structure-
//! aware scoring. This harness quantifies that with labeled synthetic
//! ground truth: P@10 / MRR / NDCG@10 / MAP for:
//!
//! * `full`       — the complete three-phase pipeline,
//! * `tfidf`      — Phase 1 only (pure document search, the Lucene baseline),
//! * `name-only`  — ensemble reduced to the n-gram name matcher,
//! * `token-only` — ensemble reduced to exact-token matching,
//! * `no-struct`  — full ensemble but structural penalties disabled.
//!
//! Run with `cargo run --release -p schemr-bench --bin e2_ranking_quality`.

use schemr_bench::{variants, Table, Testbed};
use schemr_corpus::{Corpus, CorpusConfig, RankingMetrics, Workload, WorkloadConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: if quick { 500 } else { 5_000 },
        seed: 11,
        ..CorpusConfig::default()
    });
    let workload = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries: if quick { 30 } else { 200 },
            seed: 13,
            ..Default::default()
        },
    );
    println!(
        "E2: ranking quality over {} schemas, {} queries (keyword/fragment/mixed)\n",
        corpus.len(),
        workload.len()
    );

    let mut table = Table::new(&["variant", "P@10", "MRR", "NDCG@10", "MAP"]);
    let mut push = |name: &str, m: RankingMetrics| {
        table.row(&[
            name.to_string(),
            format!("{:.3}", m.p_at_10),
            format!("{:.3}", m.mrr),
            format!("{:.3}", m.ndcg_at_10),
            format!("{:.3}", m.map),
        ]);
    };

    // Full pipeline.
    let bed = Testbed::build(&corpus);
    push("full", bed.evaluate(&workload, 10));

    // Phase-1-only TF/IDF baseline (same index, coarse ranking).
    let coarse = bed.evaluate_with(&workload, 10, |q| bed.run_query_coarse(q, 10));
    push("tfidf (phase 1 only)", coarse);

    // Name-matcher-only ensemble.
    bed.engine.set_ensemble(variants::name_only_ensemble());
    push("name-only ensemble", bed.evaluate(&workload, 10));

    // Exact-token-only ensemble.
    bed.engine.set_ensemble(variants::token_only_ensemble());
    push("token-only ensemble", bed.evaluate(&workload, 10));

    // Standard ensemble + similarity-flooding structural matcher.
    bed.engine.set_ensemble(variants::flooding_ensemble());
    push("+flooding ensemble", bed.evaluate(&workload, 10));
    bed.engine.set_ensemble(variants::standard_ensemble());

    // Structural penalties off.
    let flat = Testbed::build_with_config(&corpus, variants::no_structure());
    push("no structural penalty", flat.evaluate(&workload, 10));

    table.print();
    println!(
        "\nExpected shape: full leads on MAP/NDCG; the ensemble variants beat the\n\
         phase-1 TF/IDF baseline; the exact-token ensemble trails on P@10/NDCG/MAP\n\
         (it finds the unperturbed family members and misses the rest — its MRR\n\
         stays high because *one* exact survivor usually exists). Structural\n\
         penalties are near-neutral here; E4 isolates where they matter\n\
         (scattered-distractor discrimination)."
    );
}
