//! **E1 — Search latency and phase breakdown vs corpus size.**
//!
//! The paper claims the document index is "a fast and scalable filter for
//! relevant candidate schemas" and demonstrates search over 30,000 public
//! schemas. This harness measures, per corpus size: mean end-to-end search
//! latency, the per-phase breakdown (candidate extraction / matching /
//! tightness scoring), and the index size. Per-phase p50/p95/p99 come from
//! the engine's own `schemr_phase_seconds` histograms (the same series
//! `/metrics` exports) and are written to `results/e1_scalability.json`.
//!
//! Run with `cargo run --release -p schemr-bench --bin e1_scalability`
//! (pass `--quick` for a fast smoke run).
//!
//! Pass `--check-overhead` to instead compare traced vs untraced search
//! latency on one corpus (per-query paired timings, median ratio) and exit
//! nonzero when request tracing costs more than 5% — the CI guard that
//! keeps `schemr-trace` honest about being cheap enough to leave on.
//!
//! Pass `--churn` to measure Phase 1 under index churn instead: ~20% of
//! the corpus is tombstoned without vacuuming, repeated queries exercise
//! the revision-keyed candidate cache, and an interleaved
//! put/delete/search segment runs through the scheduler (which vacuums
//! past the tombstone threshold). Results land in `results/e1_churn.json`.
//!
//! Pass `--phase2` to measure Phase 2 matching cost instead: large
//! candidate sets (raised `top_candidates`) over wide generated schemas,
//! per-candidate matching wall time (p50/p95/p99) and an
//! allocations-per-query proxy (a counting global allocator), for four
//! configurations — naive (prepared path disabled), cold artifact cache
//! (every query invalidated), warm, and exhaustive (warm cache with the
//! ensemble early exit disabled). Results land in
//! `results/e2_matching.json`. Combine with `--check-speedup` to exit
//! nonzero unless warm-cache matching is at least 2x faster per candidate
//! than cold — the CI guard on the prepared-matching pipeline. Combine
//! with `--check-kernel` to also gate the intersection kernel and the
//! early exit: a synthetic count oracle checks `intersection_size`
//! against a bench-local scalar merge across dense / asymmetric / large
//! regimes, an engine-level oracle checks that the early exit returns
//! bitwise-identical top-k lists over the whole workload, both before
//! anything is timed; then a paired microbenchmark of the kernel against
//! the scalar reference must clear its speedup bar (when the `simd`
//! feature is compiled in) and the early exit must not regress warm
//! matching.
//!
//! Pass `--phase1-pruning` to compare WAND/MaxScore top-k pruning against
//! the exhaustive Phase 1 scan at top-n 10 and 50: per-query p50/p95/p99,
//! postings-scanned deltas, and an inline bitwise result-identity oracle.
//! Results land in `results/e4_pruning.json`. Combine with
//! `--check-pruning` to exit nonzero unless pruning cuts postings scanned
//! by at least 2x or wins at least 30% on p50 at top-n 50 — the CI guard
//! that keeps the pruner actually pruning.
//!
//! Pass `--serve` to exercise the HTTP serving path instead: a loadgen
//! over real sockets measures keep-alive search latency (p50/p99, 5xx
//! count) at low load, then saturates a deliberately tiny server (two
//! pinned workers, one queue slot) and measures the shed rate and the
//! p99 of the `503 + Retry-After` responses, then drains both servers
//! under the deadline. Results land in `results/e5_serving.json`.
//! Combine with `--check-serving` to exit nonzero on any low-load 5xx,
//! a saturation run that never sheds, or an unclean drain — the CI
//! guard on admission control and graceful shutdown.

use schemr::{EngineConfig, IndexScheduler};
use schemr_bench::{Table, Testbed};
use schemr_corpus::{
    Corpus, CorpusConfig, GeneratedQuery, GeneratorConfig, Workload, WorkloadConfig,
};
use schemr_match::Ensemble;
use schemr_model::SchemaId;
use schemr_obs::alloc::{process_alloc_count, CountingAlloc};
use schemr_obs::{HistogramSnapshot, TracerConfig};
use schemr_server::{SchemrServer, ServerConfig};
use schemr_text::GramSet;
use std::net::TcpStream;
use std::time::{Duration, Instant};

// The shared counting allocator from `obs::alloc` — the
// allocations-per-query proxy the `--phase2` report uses, and the same
// type the per-query ledger reads when a server opts in via the
// `obs-alloc` feature. One relaxed atomic add per allocation — cheap
// enough to leave on for every mode.
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const PHASES: &[&str] = &["candidate_extraction", "matching", "scoring"];

/// One corpus size's measurements, ready for the JSON report.
struct SizeReport {
    corpus: usize,
    docs: usize,
    terms: usize,
    queries: usize,
    mean_total_ms: f64,
    mean_candidates: f64,
    /// Mean scheduled CPU per query in ms, from the per-query resource
    /// ledger (can exceed wall time under parallel matching).
    mean_cpu_ms: f64,
    /// Mean allocator calls per query, from the ledger (the bench
    /// installs the counting allocator).
    mean_allocs: f64,
    /// `(phase, snapshot)` in `PHASES` order.
    phases: Vec<(&'static str, HistogramSnapshot)>,
}

fn json_report(top_candidates: usize, sizes: &[SizeReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"e1_scalability\",\n");
    out.push_str(&format!("  \"top_candidates\": {top_candidates},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, s) in sizes.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"corpus\": {},\n", s.corpus));
        out.push_str(&format!("      \"docs\": {},\n", s.docs));
        out.push_str(&format!("      \"terms\": {},\n", s.terms));
        out.push_str(&format!("      \"queries\": {},\n", s.queries));
        out.push_str(&format!(
            "      \"mean_total_ms\": {:.4},\n",
            s.mean_total_ms
        ));
        out.push_str(&format!(
            "      \"mean_candidates\": {:.2},\n",
            s.mean_candidates
        ));
        out.push_str(&format!("      \"mean_cpu_ms\": {:.4},\n", s.mean_cpu_ms));
        out.push_str(&format!("      \"mean_allocs\": {:.0},\n", s.mean_allocs));
        out.push_str("      \"phases\": {\n");
        for (j, (name, snap)) in s.phases.iter().enumerate() {
            out.push_str(&format!(
                "        \"{}\": {{\"count\": {}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}}}{}\n",
                name,
                snap.count,
                snap.quantile(0.50) * 1e3,
                snap.quantile(0.95) * 1e3,
                snap.quantile(0.99) * 1e3,
                if j + 1 < s.phases.len() { "," } else { "" }
            ));
        }
        out.push_str("      }\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < sizes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Wall-clock for one full pass over the workload.
fn run_workload(bed: &Testbed, workload: &Workload) -> f64 {
    let start = Instant::now();
    for q in &workload.queries {
        bed.engine
            .search_detailed(&Testbed::to_request(q, 10))
            .expect("nonempty query");
    }
    start.elapsed().as_secs_f64()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Wall-clock for one query on one engine.
fn time_query(bed: &Testbed, q: &GeneratedQuery) -> f64 {
    let start = Instant::now();
    bed.engine
        .search_detailed(&Testbed::to_request(q, 10))
        .expect("nonempty query");
    start.elapsed().as_secs_f64()
}

/// `--check-overhead`: full-observability vs obs-off latency on one
/// corpus.
///
/// The traced side runs with `EngineConfig::default()`, which now means
/// span tracing *plus* the per-query resource ledger (thread-CPU probes
/// on every phase and worker) *plus* the sampling profiler at its
/// default rate *plus* the workload heavy-hitter sketch — every
/// observability tier, priced together.
/// Each query is timed on both engines back to back (alternating which
/// side goes first), and the verdict is the median of the per-query
/// traced/untraced ratios. Pairing adjacent timings cancels the slow
/// machine drift (CPU frequency, co-tenants) that dominates round-level
/// comparisons on shared hardware, and the median discards the pairs a
/// scheduler hiccup lands in. Returns the process exit code.
fn check_overhead(quick: bool) -> i32 {
    let size = if quick { 1_000 } else { 5_000 };
    let queries = if quick { 30 } else { 60 };
    let rounds = if quick { 7 } else { 11 };
    const BUDGET_PCT: f64 = 5.0;

    let corpus = Corpus::generate(&CorpusConfig {
        target_size: size,
        seed: 42,
        ..CorpusConfig::default()
    });
    let workload = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries,
            seed: 7,
            ..Default::default()
        },
    );
    let traced = Testbed::build_with_config(&corpus, EngineConfig::default());
    let untraced = Testbed::build_with_config(
        &corpus,
        EngineConfig {
            trace: TracerConfig::disabled(),
            ..EngineConfig::default()
        },
    );

    // The traced engine must actually be paying for everything this
    // check prices: the profiler thread sampling at the default rate,
    // and a ledger (CPU probes on every phase) on every response.
    assert!(
        traced.engine.profiler().is_some(),
        "default config must start the profiler so --check-overhead covers it"
    );
    assert!(
        untraced.engine.profiler().is_none(),
        "the baseline must not run a profiler"
    );
    let probe_resp = traced
        .engine
        .search_detailed(&Testbed::to_request(&workload.queries[0], 10))
        .expect("nonempty query");
    assert!(
        probe_resp.ledger.is_some(),
        "traced responses must carry a resource ledger"
    );
    assert!(
        traced.engine.tracer().workload().is_some(),
        "default config must run the workload sketch so --check-overhead covers it"
    );
    assert!(
        traced
            .engine
            .workload_snapshot(1)
            .is_some_and(|s| s.total_queries > 0),
        "the workload sketch must observe the timed search path"
    );
    assert!(
        untraced.engine.tracer().workload().is_none(),
        "the baseline must not maintain a workload sketch"
    );

    // Warm both engines before timing anything.
    run_workload(&traced, &workload);
    run_workload(&untraced, &workload);

    // One measurement block: every query timed on both engines back to
    // back (alternating which side goes first), repeated for `rounds`
    // rounds; the per-query estimate is the minimum across rounds —
    // under purely additive interference (a co-tenant stealing a core, a
    // scheduler hiccup) the fastest observation is the closest to the
    // intrinsic cost — and the block's verdict is the median of the
    // per-query ratios of minima.
    let measure = || {
        let n = workload.queries.len();
        let mut best_on = vec![f64::INFINITY; n];
        let mut best_off = vec![f64::INFINITY; n];
        let mut on_total = 0.0;
        let mut off_total = 0.0;
        for round in 0..rounds {
            for (qi, q) in workload.queries.iter().enumerate() {
                let (t_on, t_off) = if (round + qi) % 2 == 0 {
                    let on = time_query(&traced, q);
                    let off = time_query(&untraced, q);
                    (on, off)
                } else {
                    let off = time_query(&untraced, q);
                    let on = time_query(&traced, q);
                    (on, off)
                };
                on_total += t_on;
                off_total += t_off;
                best_on[qi] = best_on[qi].min(t_on);
                best_off[qi] = best_off[qi].min(t_off);
            }
        }
        let mut ratios: Vec<f64> = best_on
            .iter()
            .zip(&best_off)
            .filter(|(_, off)| **off > 0.0)
            .map(|(on, off)| on / off)
            .collect();
        ((median(&mut ratios) - 1.0) * 100.0, on_total, off_total)
    };

    println!("E1 --check-overhead: observability cost, per-query paired timings");
    println!(
        "  traced side: span tracing + resource ledger + profiler @ default hz + workload sketch"
    );
    println!("  corpus {size}, {queries} queries x {rounds} rounds, best-of-rounds per query");

    // A measurement block can only over-report: interference is additive
    // and lands on either side at random, so a block that says "within
    // budget" had a window calm enough to see the intrinsic costs, while
    // a block that says "over budget" may just have been unlucky — this
    // box loses double-digit percentages to co-tenants for seconds at a
    // time. Re-measuring on failure converts that asymmetry into a
    // stable gate: transient noise has to corrupt every attempt to force
    // a false failure, while a real regression fails all of them.
    const ATTEMPTS: usize = 4;
    let mut verdicts = Vec::with_capacity(ATTEMPTS);
    for attempt in 1..=ATTEMPTS {
        let (overhead_pct, on_total, off_total) = measure();
        println!(
            "  attempt {attempt}: overhead {overhead_pct:+.2}% \
             (obs on {:.0} ms, obs off {:.0} ms, budget {BUDGET_PCT}%)",
            on_total * 1e3,
            off_total * 1e3
        );
        verdicts.push(overhead_pct);
        if overhead_pct < BUDGET_PCT {
            println!("  PASS: observability fits the {BUDGET_PCT}% budget");
            return 0;
        }
    }
    let all = verdicts
        .iter()
        .map(|v| format!("{v:+.2}%"))
        .collect::<Vec<_>>()
        .join(" ");
    println!(
        "  FAIL: observability exceeds the {BUDGET_PCT}% budget in all {ATTEMPTS} attempts ({all})"
    );
    1
}

/// `--churn`: Phase 1 latency with ~20% tombstones, with and without the
/// candidate cache, plus an interleaved put/delete/search segment.
///
/// Three segments, all over the same generated corpus and workload:
///
/// 1. **tombstoned, no cache** — the raw Phase 1 scan cost with 20% of
///    the corpus deleted but not vacuumed (live-df bookkeeping at work).
/// 2. **tombstoned, cache cold/warm** — the same engine with the
///    revision-keyed cache; the warm passes are served without touching
///    the postings at all.
/// 3. **interleaved** — rounds of delete + insert + scheduler tick +
///    search; every mutation moves the index revision, so the cache
///    invalidates and refills, and the scheduler vacuums once tombstones
///    cross the threshold.
fn run_churn(quick: bool) {
    let size = if quick { 1_000 } else { 5_000 };
    let rounds = if quick { 3 } else { 5 };
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: size,
        seed: 42,
        ..CorpusConfig::default()
    });
    let workload = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries: if quick { 20 } else { 60 },
            seed: 7,
            ..Default::default()
        },
    );
    let n_queries = workload.queries.len();

    // Two engines over identical content: one with the candidate cache,
    // one with it disabled, so the repeated-query speedup and the raw
    // tombstoned-scan cost are separable.
    let cached = Testbed::build_with_config(&corpus, EngineConfig::default());
    let uncached = Testbed::build_with_config(
        &corpus,
        EngineConfig {
            candidate_cache_entries: 0,
            ..EngineConfig::default()
        },
    );

    // Tombstone ~20% of documents without vacuuming — the state the
    // incremental live-df accounting exists for.
    for bed in [&cached, &uncached] {
        for id in bed.ids.iter().step_by(5) {
            bed.engine.repository().remove(*id).expect("id is live");
        }
        bed.engine.reindex_incremental();
    }
    let stats = cached.engine.index_stats();
    println!(
        "E1 --churn: corpus {size}, {} live / {} total docs ({:.0}% tombstones), {n_queries} queries x {rounds} rounds\n",
        stats.live_docs,
        stats.total_docs,
        100.0 * (stats.total_docs - stats.live_docs) as f64 / stats.total_docs as f64
    );

    // Mean per-query Phase 1 wall time (ms) for one pass over the workload.
    let phase1_pass = |bed: &Testbed| -> f64 {
        let mut total_hits = 0usize;
        let start = Instant::now();
        for q in &workload.queries {
            let graph = Testbed::to_request(q, 10).query_graph();
            total_hits += bed.engine.extract_candidates(&graph).len();
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(total_hits > 0, "churn workload found no candidates");
        elapsed * 1e3 / n_queries as f64
    };

    let mut uncached_ms: Vec<f64> = (0..rounds).map(|_| phase1_pass(&uncached)).collect();
    let cold_ms = phase1_pass(&cached);
    let mut warm_ms: Vec<f64> = (0..rounds).map(|_| phase1_pass(&cached)).collect();

    // Interleaved put/delete/search on the cached engine, through the
    // scheduler so vacuuming kicks in once tombstones accumulate.
    let scheduler = IndexScheduler::new(cached.engine.clone());
    let mut live: Vec<SchemaId> = cached
        .ids
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 5 != 0)
        .map(|(_, &id)| id)
        .collect();
    let batch = (size / 20).max(1);
    let mut next_insert = 0usize;
    let mut interleaved = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        for _ in 0..batch {
            if let Some(id) = live.pop() {
                cached.engine.repository().remove(id).expect("live id");
            }
        }
        for _ in 0..batch {
            let labeled = &corpus.schemas[next_insert % corpus.schemas.len()];
            next_insert += 1;
            let id = cached
                .engine
                .repository()
                .insert(
                    labeled.title.clone(),
                    labeled.summary.clone(),
                    labeled.schema.clone(),
                )
                .expect("corpus schemas validate");
            live.push(id);
        }
        scheduler.tick();
        interleaved.push(phase1_pass(&cached));
    }

    let reg = cached.engine.metrics_registry();
    let counter = |name: &str| reg.counter_value(name, &[]).unwrap_or(0);
    let (hits, misses) = (
        counter("schemr_candidate_cache_hits_total"),
        counter("schemr_candidate_cache_misses_total"),
    );
    let (evictions, invalidations) = (
        counter("schemr_candidate_cache_evictions_total"),
        counter("schemr_candidate_cache_invalidations_total"),
    );
    let (postings_scanned, merges) = (
        counter("schemr_index_postings_scanned_total"),
        counter("schemr_index_merges_total"),
    );

    let uncached_med = median(&mut uncached_ms);
    let warm_med = median(&mut warm_ms);
    let interleaved_med = median(&mut interleaved);
    let mut table = Table::new(&["segment", "p1/query (ms)"]);
    table.row(&["tombstoned, no cache".into(), format!("{uncached_med:.4}")]);
    table.row(&["tombstoned, cache cold".into(), format!("{cold_ms:.4}")]);
    table.row(&["tombstoned, cache warm".into(), format!("{warm_med:.4}")]);
    table.row(&["interleaved churn".into(), format!("{interleaved_med:.4}")]);
    table.print();
    println!(
        "\ncache: {hits} hits, {misses} misses, {evictions} evictions, {invalidations} invalidations"
    );
    println!(
        "index: {postings_scanned} postings scanned, {merges} merges (scheduler: {})",
        scheduler.merge_count()
    );

    let json = format!(
        "{{\n  \"experiment\": \"e1_churn\",\n  \"corpus\": {size},\n  \"live_docs\": {},\n  \"total_docs\": {},\n  \"queries\": {n_queries},\n  \"rounds\": {rounds},\n  \"p1_tombstoned_no_cache_ms\": {uncached_med:.4},\n  \"p1_cache_cold_ms\": {cold_ms:.4},\n  \"p1_cache_warm_ms\": {warm_med:.4},\n  \"p1_interleaved_ms\": {interleaved_med:.4},\n  \"cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"evictions\": {evictions}, \"invalidations\": {invalidations}}},\n  \"index\": {{\"postings_scanned\": {postings_scanned}, \"merges\": {merges}}}\n}}\n",
        stats.live_docs, stats.total_docs
    );
    let out_path = std::path::Path::new("results").join("e1_churn.json");
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(&out_path, &json)) {
        Ok(()) => println!("\nwrote churn measurements to {}", out_path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", out_path.display()),
    }
    println!(
        "\nExpected shape: warm-cache Phase 1 is far below the no-cache scan; the\n\
         no-cache scan itself no longer pays a per-query tombstone rescan (live\n\
         df is maintained incrementally); interleaved churn stays near the\n\
         steady-state cost because the scheduler merges past the threshold."
    );
}

/// Per-candidate matching samples and allocation counts for one
/// `--phase2` configuration.
struct Phase2Segment {
    /// Per-query `matching wall / candidates evaluated`, in seconds.
    samples: Vec<f64>,
    /// Allocations observed across the segment's search calls.
    allocs: u64,
    /// Search calls in the segment.
    queries: u64,
}

impl Phase2Segment {
    fn sorted(mut self) -> Self {
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self
    }

    /// Quantile of the (sorted) per-candidate cost, in microseconds.
    fn us(&self, q: f64) -> f64 {
        let i = ((self.samples.len() - 1) as f64 * q).round() as usize;
        self.samples[i] * 1e6
    }

    fn allocs_per_query(&self) -> f64 {
        self.allocs as f64 / self.queries as f64
    }
}

/// One pass over the workload on `bed`, sampling per-candidate matching
/// cost. When `invalidate`, the ensemble generation is bumped before
/// every query so each search sees a fully cold artifact cache.
fn phase2_pass(bed: &Testbed, workload: &Workload, invalidate: bool, seg: &mut Phase2Segment) {
    for q in &workload.queries {
        if invalidate {
            // Replacing the ensemble stamps a new generation: every
            // cached artifact goes stale, so this query pays the full
            // preparation cost — the cold measurement.
            bed.engine.set_ensemble(Ensemble::standard());
        }
        let a0 = process_alloc_count();
        let resp = bed
            .engine
            .search_detailed(&Testbed::to_request(q, 10))
            .expect("nonempty query");
        seg.allocs += process_alloc_count() - a0;
        seg.queries += 1;
        if resp.candidates_evaluated > 0 {
            seg.samples
                .push(resp.timings.matching.as_secs_f64() / resp.candidates_evaluated as f64);
        }
    }
}

/// Deterministic splitmix64 — the bench-local PRNG for the synthetic
/// kernel oracle (independent of `rand`'s shimmed distributions).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The bench-local reference the kernel is checked and timed against: a
/// plain scalar two-pointer merge count over sorted-dedup slices.
fn reference_merge_count(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// The synthetic kernel oracle plus paired microbenchmark.
///
/// Across regimes chosen to drive every `intersection_size` dispatch
/// path — dense block-merge bodies, vector-width multiples, the
/// galloping branch, sub-vector scalar tails, disjoint and heavily
/// overlapping pools — the kernel must report exactly the reference
/// merge count. The merge-path regimes (size ratio below the galloping
/// threshold) are then timed, best-of-rounds, against the scalar
/// reference on identical pairs. Returns the kernel's speedup over the
/// reference; panics on any count mismatch.
fn kernel_oracle_and_microbench() -> f64 {
    // (|a|, |b|, shared per mille, timed): `timed` marks merge-path
    // regimes — asymmetric pairs dispatch to galloping in both builds,
    // so timing them would not isolate the kernel.
    const REGIMES: &[(usize, usize, u64, bool)] = &[
        (64, 64, 300, true),
        (512, 512, 1000, true),
        (1_000, 900, 0, true),
        (4_096, 4_096, 200, true),
        (40, 4_000, 500, false), // ratio ≥ GALLOP_RATIO → galloping path
        (7, 5, 400, false),      // below vector width → scalar tail only
    ];
    const PAIRS: usize = 24;
    const REPS: usize = 48;
    const ROUNDS: usize = 5;

    let mut state = 0x5EED_u64;
    let pool: Vec<u64> = (0..4096).map(|_| splitmix64(&mut state)).collect();
    let mut draw = |len: usize, shared_per_mille: u64| -> Vec<u64> {
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            let r = splitmix64(&mut state);
            if r % 1000 < shared_per_mille {
                v.push(pool[(splitmix64(&mut state) % pool.len() as u64) as usize]);
            } else {
                v.push(r);
            }
        }
        v
    };

    let mut timed_pairs: Vec<(GramSet, GramSet, Vec<u64>, Vec<u64>)> = Vec::new();
    for &(la, lb, shared, timed) in REGIMES {
        for p in 0..PAIRS {
            let (ra, rb) = (draw(la, shared), draw(lb, shared));
            let sorted = |mut v: Vec<u64>| {
                v.sort_unstable();
                v.dedup();
                v
            };
            let (sa, sb) = (sorted(ra.clone()), sorted(rb.clone()));
            let (ga, gb) = (GramSet::from_hashes(ra), GramSet::from_hashes(rb));
            assert_eq!(
                ga.intersection_size(&gb),
                reference_merge_count(&sa, &sb),
                "kernel oracle: regime ({la},{lb},{shared}), pair {p}: \
                 intersection_size disagrees with the scalar reference"
            );
            if timed {
                timed_pairs.push((ga, gb, sa, sb));
            }
        }
    }

    // Paired best-of-rounds timing on the merge-path pairs (the oracle
    // pass above already resolved the process-wide kernel OnceLock).
    let (mut best_kernel, mut best_ref) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let mut acc = 0usize;
        for _ in 0..REPS {
            for (ga, gb, _, _) in &timed_pairs {
                acc += std::hint::black_box(ga).intersection_size(std::hint::black_box(gb));
            }
        }
        let t_kernel = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);

        let start = Instant::now();
        let mut acc = 0usize;
        for _ in 0..REPS {
            for (_, _, sa, sb) in &timed_pairs {
                acc += reference_merge_count(std::hint::black_box(sa), std::hint::black_box(sb));
            }
        }
        let t_ref = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);

        best_kernel = best_kernel.min(t_kernel);
        best_ref = best_ref.min(t_ref);
    }
    best_ref / best_kernel.max(1e-12)
}

/// `--phase2`: per-candidate Phase 2 cost — naive vs cold vs warm
/// artifact cache, plus an exhaustive arm (warm cache, ensemble early
/// exit disabled) pricing the early exit. Returns the process exit code
/// (nonzero only under `--check-speedup` when the warm cache misses the
/// 2x bar, or under `--check-kernel` when the intersection kernel or the
/// early exit misses its bar).
fn run_phase2(quick: bool, check_speedup: bool, check_kernel: bool) -> i32 {
    let size = if quick { 400 } else { 2_000 };
    let queries = if quick { 12 } else { 30 };
    let rounds = if quick { 3 } else { 5 };
    let top = if quick { 100 } else { 200 };
    const SPEEDUP_BAR: f64 = 2.0;
    // The kernel bar applies only when the `simd` feature is compiled in:
    // the AVX2 block merge must beat the bench-local scalar merge on the
    // merge-path regimes. Without the feature the dispatch resolves to an
    // equivalent scalar merge and the microbenchmark is reported but not
    // gated.
    const KERNEL_BAR: f64 = 1.2;
    // The early exit must never make warm matching slower: where no
    // bound clears the floor it degenerates to the plain prepared run
    // plus a cheap θ load, so a regression past noise is a bug.
    const EXIT_BAR: f64 = 0.9;

    // Wide schemas: more elements per candidate → matching dominates.
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: size,
        seed: 42,
        generator: GeneratorConfig {
            entities: (4, 9),
            attributes: (8, 18),
            ..GeneratorConfig::default()
        },
        ..CorpusConfig::default()
    });
    let workload = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries,
            seed: 7,
            ..Default::default()
        },
    );
    // Sequential matching so per-candidate wall time is not divided
    // across threads, and a raised candidate budget so Phase 2 is the
    // bulk of every search.
    let build = |artifact_bytes: usize, early_exit: bool| {
        Testbed::build_with_config(
            &corpus,
            EngineConfig {
                top_candidates: top,
                match_threads: 1,
                match_artifact_cache_bytes: artifact_bytes,
                phase2_early_exit: early_exit,
                ..EngineConfig::default()
            },
        )
    };
    let naive_bed = build(0, true);
    let prepared_bed = build(64 * 1024 * 1024, true);
    let exhaustive_bed = build(64 * 1024 * 1024, false);

    // Inline bitwise oracles, before anything is timed. First the
    // synthetic kernel oracle (which also microbenchmarks the merge
    // kernel against a bench-local scalar reference), then an
    // engine-level pass: the early exit must return the exact top-k the
    // exhaustive engine returns — same ids, same order, bitwise-equal
    // scores — for every workload query, or the performance numbers
    // could be bought with a ranking change.
    let kernel_speedup = kernel_oracle_and_microbench();
    for (qi, q) in workload.queries.iter().enumerate() {
        let req = Testbed::to_request(q, 10);
        let a = prepared_bed.engine.search(&req).expect("nonempty query");
        let b = exhaustive_bed.engine.search(&req).expect("nonempty query");
        assert_eq!(
            a.len(),
            b.len(),
            "query {qi}: early exit changed the result count"
        );
        for (rank, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                x.id, y.id,
                "query {qi}, rank {rank}: early exit reordered results"
            );
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "query {qi}, rank {rank}: early exit changed a score bit pattern"
            );
            assert_eq!(x.coarse_score.to_bits(), y.coarse_score.to_bits());
        }
    }

    // Warm the OS/caches once on each engine before any timing.
    run_workload(&naive_bed, &workload);
    run_workload(&prepared_bed, &workload);
    run_workload(&exhaustive_bed, &workload);

    let mut naive = Phase2Segment {
        samples: Vec::new(),
        allocs: 0,
        queries: 0,
    };
    let mut cold = Phase2Segment {
        samples: Vec::new(),
        allocs: 0,
        queries: 0,
    };
    let mut warm = Phase2Segment {
        samples: Vec::new(),
        allocs: 0,
        queries: 0,
    };
    let mut exhaustive = Phase2Segment {
        samples: Vec::new(),
        allocs: 0,
        queries: 0,
    };
    for _ in 0..rounds {
        phase2_pass(&naive_bed, &workload, false, &mut naive);
        phase2_pass(&prepared_bed, &workload, true, &mut cold);
    }
    // Prime once after the cold segment's final invalidation, then
    // measure warm rounds — every candidate served from the cache. The
    // exhaustive engine's warm passes are interleaved so the exit-on /
    // exit-off comparison is paired against the same machine state.
    run_workload(&prepared_bed, &workload);
    for _ in 0..rounds {
        phase2_pass(&prepared_bed, &workload, false, &mut warm);
        phase2_pass(&exhaustive_bed, &workload, false, &mut exhaustive);
    }
    // The exit ratio is gated, so it gets the robust estimator: per-query
    // best-of-rounds on both arms (samples arrive in the same query order
    // every round), then the median of the paired per-query ratios. The
    // pooled-quantile speedups below keep their historical definition.
    let best_of_rounds = |samples: &[f64]| -> Vec<f64> {
        let nq = samples.len() / rounds;
        let mut best = samples[..nq].to_vec();
        for r in 1..rounds {
            for (b, s) in best.iter_mut().zip(&samples[r * nq..(r + 1) * nq]) {
                *b = b.min(*s);
            }
        }
        best
    };
    let speedup_exit = {
        let w = best_of_rounds(&warm.samples);
        let e = best_of_rounds(&exhaustive.samples);
        let mut ratios: Vec<f64> = e.iter().zip(&w).map(|(e, w)| e / w.max(1e-12)).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        ratios[ratios.len() / 2]
    };

    let naive = naive.sorted();
    let cold = cold.sorted();
    let warm = warm.sorted();
    let exhaustive = exhaustive.sorted();

    let speedup_vs_cold = cold.us(0.50) / warm.us(0.50);
    let speedup_vs_naive = naive.us(0.50) / warm.us(0.50);

    let reg = prepared_bed.engine.metrics_registry();
    let counter = |name: &str| reg.counter_value(name, &[]).unwrap_or(0);
    let (hits, misses) = (
        counter("schemr_match_artifact_cache_hits_total"),
        counter("schemr_match_artifact_cache_misses_total"),
    );
    let (evictions, invalidations) = (
        counter("schemr_match_artifact_cache_evictions_total"),
        counter("schemr_match_artifact_cache_invalidations_total"),
    );
    let (bytes_in, bytes_out) = (
        counter("schemr_match_artifact_cache_bytes_inserted_total"),
        counter("schemr_match_artifact_cache_bytes_evicted_total"),
    );
    let (pruned, skipped) = (
        counter("schemr_match_candidates_pruned_total"),
        counter("schemr_match_matchers_skipped_total"),
    );

    println!(
        "E1 --phase2: per-candidate matching cost, corpus {size}, top-n {top}, {} queries x {rounds} rounds\n",
        workload.queries.len()
    );
    let mut table = Table::new(&[
        "segment",
        "p50 (us)",
        "p95 (us)",
        "p99 (us)",
        "allocs/query",
    ]);
    for (name, seg) in [
        ("naive", &naive),
        ("cache cold", &cold),
        ("cache warm", &warm),
        ("warm, no exit", &exhaustive),
    ] {
        table.row(&[
            name.into(),
            format!("{:.2}", seg.us(0.50)),
            format!("{:.2}", seg.us(0.95)),
            format!("{:.2}", seg.us(0.99)),
            format!("{:.0}", seg.allocs_per_query()),
        ]);
    }
    table.print();
    println!(
        "\nwarm vs cold speedup: {speedup_vs_cold:.2}x; warm vs naive: {speedup_vs_naive:.2}x; \
         exit vs no-exit: {speedup_exit:.2}x"
    );
    println!(
        "kernel: simd {}, {kernel_speedup:.2}x vs scalar reference on merge-path regimes",
        if cfg!(feature = "simd") { "on" } else { "off" },
    );
    println!("early exit: {pruned} candidates pruned, {skipped} matcher invocations skipped");
    println!(
        "artifact cache: {hits} hits, {misses} misses, {evictions} evictions, {invalidations} invalidations, {bytes_in} bytes in, {bytes_out} bytes evicted"
    );

    let seg_json = |seg: &Phase2Segment| {
        format!(
            "{{\"per_candidate_us\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}}, \"allocs_per_query\": {:.0}}}",
            seg.us(0.50),
            seg.us(0.95),
            seg.us(0.99),
            seg.allocs_per_query()
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"e2_matching\",\n  \"corpus\": {size},\n  \"top_candidates\": {top},\n  \"queries\": {},\n  \"rounds\": {rounds},\n  \"naive\": {},\n  \"cold\": {},\n  \"warm\": {},\n  \"exhaustive\": {},\n  \"speedup_warm_vs_cold\": {speedup_vs_cold:.2},\n  \"speedup_warm_vs_naive\": {speedup_vs_naive:.2},\n  \"speedup_exit\": {speedup_exit:.2},\n  \"kernel\": {{\"simd_compiled\": {}, \"speedup_vs_scalar\": {kernel_speedup:.2}}},\n  \"early_exit\": {{\"candidates_pruned\": {pruned}, \"matchers_skipped\": {skipped}}},\n  \"artifact_cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"evictions\": {evictions}, \"invalidations\": {invalidations}, \"bytes_inserted\": {bytes_in}, \"bytes_evicted\": {bytes_out}}}\n}}\n",
        workload.queries.len(),
        seg_json(&naive),
        seg_json(&cold),
        seg_json(&warm),
        seg_json(&exhaustive),
        cfg!(feature = "simd"),
    );
    let out_path = std::path::Path::new("results").join("e2_matching.json");
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(&out_path, &json)) {
        Ok(()) => println!("\nwrote matching measurements to {}", out_path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", out_path.display()),
    }

    let mut failures = Vec::new();
    if check_speedup && speedup_vs_cold < SPEEDUP_BAR {
        failures.push(format!(
            "warm cache is only {speedup_vs_cold:.2}x faster than cold (bar {SPEEDUP_BAR}x)"
        ));
    }
    if check_kernel {
        if cfg!(feature = "simd") && kernel_speedup < KERNEL_BAR {
            failures.push(format!(
                "simd kernel is only {kernel_speedup:.2}x vs the scalar reference (bar {KERNEL_BAR}x)"
            ));
        }
        if speedup_exit < EXIT_BAR {
            failures.push(format!(
                "early exit regressed warm matching to {speedup_exit:.2}x (bar {EXIT_BAR}x)"
            ));
        }
    }
    if check_speedup || check_kernel {
        if failures.is_empty() {
            println!(
                "\nPASS: bars cleared with bitwise-identical results \
                 (warm vs cold {speedup_vs_cold:.2}x, kernel {kernel_speedup:.2}x, \
                 exit {speedup_exit:.2}x)"
            );
            0
        } else {
            for f in &failures {
                println!("\nFAIL: {f}");
            }
            1
        }
    } else {
        println!(
            "\nExpected shape: warm-cache matching skips all text analysis (hashed\n\
             signatures + sorted merges only), so its per-candidate cost and\n\
             allocations sit well below both the naive path and the cold cache;\n\
             the early exit keeps warm matching at or below the exhaustive arm."
        );
        0
    }
}

/// Read one HTTP/1.1 response off `stream`: status, whether the server
/// advertised keep-alive, and the body length. The body is read fully
/// (per `Content-Length`) and discarded so the connection is ready for
/// the next request.
fn read_http_response(stream: &mut TcpStream) -> std::io::Result<(u16, bool, usize)> {
    use std::io::Read;
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if stream.read(&mut byte)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        head.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&head);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let header = |name: &str| {
        head.lines().find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
        })
    };
    let keep_alive = header("connection").is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"));
    let len: usize = header("content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok((status, keep_alive, len))
}

/// One timed request over an (optionally reused) keep-alive connection.
/// Returns the round-trip seconds, the status, and the connection if the
/// server kept it open.
fn timed_request(
    addr: std::net::SocketAddr,
    conn: Option<TcpStream>,
    target: &str,
) -> std::io::Result<(f64, u16, Option<TcpStream>, bool)> {
    use std::io::Write;
    let (mut stream, reused) = match conn {
        Some(s) => (s, true),
        None => (TcpStream::connect(addr)?, false),
    };
    let start = Instant::now();
    stream.write_all(format!("GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())?;
    let (status, keep_alive, _) = read_http_response(&mut stream)?;
    let elapsed = start.elapsed().as_secs_f64();
    Ok((elapsed, status, keep_alive.then_some(stream), reused))
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[i] * 1e3
}

/// `--serve`: loadgen against the real serving path. Returns the process
/// exit code (nonzero only under `--check-serving`).
fn run_serving(quick: bool, check: bool) -> i32 {
    use std::io::Write;

    let size = if quick { 300 } else { 2_000 };
    let clients = 4usize;
    let per_client = if quick { 40 } else { 150 };
    let shed_probes = if quick { 20 } else { 60 };

    let corpus = Corpus::generate(&CorpusConfig {
        target_size: size,
        seed: 42,
        ..CorpusConfig::default()
    });
    let workload = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries: 20,
            seed: 7,
            ..Default::default()
        },
    );
    let targets: Vec<String> = workload
        .queries
        .iter()
        .map(|q| format!("/search?q={}&limit=10", q.keywords.join("+")))
        .collect();

    // --- Phase A: low load, keep-alive clients, ample queue ---
    let bed = Testbed::build(&corpus);
    let server = SchemrServer::start(
        bed.engine.clone(),
        ServerConfig {
            workers: clients,
            max_queue: 64,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();

    let mut handles = Vec::new();
    for c in 0..clients {
        let targets = targets.clone();
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(per_client);
            let mut errors_5xx = 0u64;
            let mut reuses = 0u64;
            let mut conn: Option<TcpStream> = None;
            for i in 0..per_client {
                let target = &targets[(c + i) % targets.len()];
                match timed_request(addr, conn.take(), target) {
                    Ok((secs, status, keep, reused)) => {
                        latencies.push(secs);
                        if status >= 500 {
                            errors_5xx += 1;
                        }
                        if reused {
                            reuses += 1;
                        }
                        conn = keep;
                    }
                    Err(e) => panic!("low-load request failed: {e}"),
                }
            }
            (latencies, errors_5xx, reuses)
        }));
    }
    let mut low_latencies = Vec::with_capacity(clients * per_client);
    let mut low_5xx = 0u64;
    let mut low_reuses = 0u64;
    for h in handles {
        let (lat, e, r) = h.join().expect("loadgen thread");
        low_latencies.extend(lat);
        low_5xx += e;
        low_reuses += r;
    }
    low_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let low_requests = low_latencies.len();
    let low_p50 = quantile_ms(&low_latencies, 0.50);
    let low_p99 = quantile_ms(&low_latencies, 0.99);

    let reg = bed.engine.metrics_registry();
    let served_reuse = reg
        .counter_value("schemr_http_keepalive_reuse_total", &[])
        .unwrap_or(0);
    let low_drain_start = Instant::now();
    let low_clean_drain = server.shutdown();
    let low_drain_ms = low_drain_start.elapsed().as_secs_f64() * 1e3;

    // --- Phase B: saturation — both workers pinned, one queue slot ---
    let bed2 = Testbed::build(&corpus);
    let server = SchemrServer::start(
        bed2.engine.clone(),
        ServerConfig {
            workers: 2,
            max_queue: 1,
            read_timeout: Some(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();

    // Pin both workers with half-sent requests, then occupy the single
    // queue slot, so every further connection must be shed.
    let mut pins = Vec::new();
    for _ in 0..2 {
        let mut pin = TcpStream::connect(addr).expect("connect pin");
        pin.write_all(b"GET /healthz HTTP/1.1\r\nHost: bench")
            .expect("send partial request");
        pins.push(pin);
        std::thread::sleep(Duration::from_millis(100));
    }
    let filler = TcpStream::connect(addr).expect("connect filler");
    std::thread::sleep(Duration::from_millis(150));

    let mut shed_latencies = Vec::with_capacity(shed_probes);
    let mut sheds = 0u64;
    let mut others = 0u64;
    for i in 0..shed_probes {
        let target = &targets[i % targets.len()];
        let mut stream = TcpStream::connect(addr).expect("connect probe");
        let start = Instant::now();
        stream
            .write_all(
                format!("GET {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
                    .as_bytes(),
            )
            .expect("send probe");
        match read_http_response(&mut stream) {
            Ok((503, _, _)) => {
                sheds += 1;
                shed_latencies.push(start.elapsed().as_secs_f64());
            }
            Ok(_) => others += 1,
            Err(_) => others += 1,
        }
    }
    shed_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let shed_rate = sheds as f64 / shed_probes as f64;
    let shed_p99 = quantile_ms(&shed_latencies, 0.99);

    // Release the pinned workers and the queued filler, then drain.
    for mut pin in pins {
        pin.write_all(b"\r\nConnection: close\r\n\r\n")
            .expect("release pin");
        let _ = read_http_response(&mut pin);
    }
    drop(filler);
    let sat_drain_start = Instant::now();
    let sat_clean_drain = server.shutdown();
    let sat_drain_ms = sat_drain_start.elapsed().as_secs_f64() * 1e3;

    println!("E1 --serve: HTTP serving path, corpus {size}\n");
    let mut table = Table::new(&[
        "segment", "requests", "5xx/shed", "p50 (ms)", "p99 (ms)", "drain",
    ]);
    table.row(&[
        "low load (keep-alive)".into(),
        low_requests.to_string(),
        format!("{low_5xx} 5xx"),
        format!("{low_p50:.3}"),
        format!("{low_p99:.3}"),
        if low_clean_drain {
            format!("clean {low_drain_ms:.0} ms")
        } else {
            "EXCEEDED".into()
        },
    ]);
    table.row(&[
        "saturation (shed path)".into(),
        shed_probes.to_string(),
        format!("{sheds} shed ({:.0}%)", shed_rate * 100.0),
        format!("{:.3}", quantile_ms(&shed_latencies, 0.50)),
        format!("{shed_p99:.3}"),
        if sat_clean_drain {
            format!("clean {sat_drain_ms:.0} ms")
        } else {
            "EXCEEDED".into()
        },
    ]);
    table.print();
    println!(
        "\nkeep-alive: {low_reuses} client-side reuses, {served_reuse} server-counted reuses; \
         {others} saturation probes served past the queue"
    );

    let json = format!(
        "{{\n  \"experiment\": \"e5_serving\",\n  \"corpus\": {size},\n  \"low_load\": {{\"clients\": {clients}, \"requests\": {low_requests}, \"errors_5xx\": {low_5xx}, \"keepalive_reuses\": {served_reuse}, \"p50_ms\": {low_p50:.4}, \"p99_ms\": {low_p99:.4}, \"clean_drain\": {low_clean_drain}, \"drain_ms\": {low_drain_ms:.1}}},\n  \"saturation\": {{\"workers\": 2, \"max_queue\": 1, \"probes\": {shed_probes}, \"shed\": {sheds}, \"shed_rate\": {shed_rate:.3}, \"shed_p50_ms\": {:.4}, \"shed_p99_ms\": {shed_p99:.4}, \"clean_drain\": {sat_clean_drain}, \"drain_ms\": {sat_drain_ms:.1}}}\n}}\n",
        quantile_ms(&shed_latencies, 0.50),
    );
    let out_path = std::path::Path::new("results").join("e5_serving.json");
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(&out_path, &json)) {
        Ok(()) => println!("\nwrote serving measurements to {}", out_path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", out_path.display()),
    }

    if check {
        let mut code = 0;
        if low_5xx > 0 {
            println!("FAIL: {low_5xx} 5xx responses under low load");
            code = 1;
        }
        if sheds == 0 {
            println!("FAIL: saturation produced no 503 sheds — admission control inert");
            code = 1;
        }
        if !low_clean_drain || !sat_clean_drain {
            println!("FAIL: drain exceeded its deadline");
            code = 1;
        }
        if code == 0 {
            println!(
                "\nPASS: zero 5xx at low load, {:.0}% shed under saturation, both drains clean",
                shed_rate * 100.0
            );
        }
        code
    } else {
        println!(
            "\nExpected shape: low-load latency is the engine's search cost plus\n\
             sub-millisecond HTTP overhead with zero 5xx; under saturation every\n\
             probe is shed immediately (bounded 503 latency, no unbounded queueing);\n\
             both servers drain inside the deadline."
        );
        0
    }
}

/// Latency quantile (ms) over sorted per-query timings (seconds).
fn q_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[i] * 1e3
}

/// Index scan-work counters for one engine: `(postings_scanned,
/// pruned_postings, pruned_lists)`.
fn scan_counters(bed: &Testbed) -> (u64, u64, u64) {
    let reg = bed.engine.metrics_registry();
    let counter = |name: &str| reg.counter_value(name, &[]).unwrap_or(0);
    (
        counter("schemr_index_postings_scanned_total"),
        counter("schemr_index_postings_pruned_total"),
        counter("schemr_index_lists_pruned_total"),
    )
}

/// One Phase 1 mode's measurements at one `top_n`.
struct PruneModeReport {
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    postings_scanned: u64,
    pruned_postings: u64,
    pruned_lists: u64,
    /// Mean allocator calls per `extract_candidates` call — Phase 1 only
    /// (the query graph is prebuilt), so this is the number that verifies
    /// the zero-allocation dictionary-lookup claim: it must stay a small
    /// constant, not grow with terms × fields the way the old
    /// clone-per-lookup path did.
    allocs_per_query: f64,
}

impl PruneModeReport {
    fn json(&self) -> String {
        format!(
            "{{\"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"postings_scanned\": {}, \"pruned_postings\": {}, \"pruned_lists\": {}, \"allocs_per_query\": {:.1}}}",
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.postings_scanned,
            self.pruned_postings,
            self.pruned_lists,
            self.allocs_per_query
        )
    }
}

/// `--phase1-pruning`: WAND/MaxScore top-k pruning vs the exhaustive
/// Phase 1 scan, on identical corpora at top-n 10 and 50.
///
/// For each top-n, two cache-disabled engines (pruning on / pruning off)
/// run the same workload. Every query is first checked for *bitwise*
/// result identity between the two modes — ids, score bit patterns,
/// matched-term counts, order — so the performance numbers can never be
/// bought with a ranking change. Then one counted pass per engine
/// captures postings-scanned deltas, and paired best-of-rounds timings
/// give per-query Phase 1 p50/p95/p99. Results land in
/// `results/e4_pruning.json`.
///
/// With `--check-pruning` the run exits nonzero unless pruning cuts
/// postings scanned by at least 2x **or** wins at least 30% on p50
/// latency — the CI guard that keeps the pruner actually pruning. The
/// gate reads the top-n 50 row at full size; `--quick` gates at top-n
/// 10 instead, because on its 1k-document corpus a 50-slot floor keeps
/// most of the corpus in contention and pruning has no headroom by
/// construction. Returns the process exit code.
fn run_phase1_pruning(quick: bool, check: bool) -> i32 {
    let size = if quick { 1_000 } else { 10_000 };
    let queries = if quick { 20 } else { 60 };
    let rounds = if quick { 5 } else { 9 };
    let gate_top_n = if quick { 10 } else { 50 };
    const SCAN_BAR: f64 = 2.0;
    const SPEEDUP_BAR: f64 = 1.3;

    let corpus = Corpus::generate(&CorpusConfig {
        target_size: size,
        seed: 42,
        ..CorpusConfig::default()
    });
    let workload = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries,
            seed: 7,
            ..Default::default()
        },
    );
    let n_queries = workload.queries.len();

    println!(
        "E1 --phase1-pruning: WAND/MaxScore vs exhaustive Phase 1, corpus {size}, \
         {n_queries} queries x {rounds} rounds\n"
    );

    let measure = |top_n: usize| -> (PruneModeReport, PruneModeReport) {
        // The candidate cache is disabled on both sides so every query
        // pays the real postings scan this mode is pricing.
        let build = |prune: bool| {
            Testbed::build_with_config(
                &corpus,
                EngineConfig {
                    top_candidates: top_n,
                    phase1_pruning: prune,
                    candidate_cache_entries: 0,
                    ..EngineConfig::default()
                },
            )
        };
        let pruned = build(true);
        let exhaustive = build(false);

        // Inline equivalence oracle: pruning must be invisible in the
        // results before its performance is worth measuring.
        for (qi, q) in workload.queries.iter().enumerate() {
            let graph = Testbed::to_request(q, 10).query_graph();
            let a = pruned.engine.extract_candidates(&graph);
            let b = exhaustive.engine.extract_candidates(&graph);
            assert_eq!(
                a.len(),
                b.len(),
                "top_n {top_n}, query {qi}: pruning changed the candidate count"
            );
            for (rank, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    x.id, y.id,
                    "top_n {top_n}, query {qi}, rank {rank}: pruning reordered candidates"
                );
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "top_n {top_n}, query {qi}, rank {rank}: pruning changed a score bit pattern"
                );
                assert_eq!(x.matched_terms, y.matched_terms);
            }
        }

        // One counted pass per engine: scan-work deltas, plus a Phase
        // 1-only allocation count (graphs prebuilt so graph construction
        // is not charged to the extraction loop).
        let pass = |bed: &Testbed| -> f64 {
            let graphs: Vec<_> = workload
                .queries
                .iter()
                .map(|q| Testbed::to_request(q, 10).query_graph())
                .collect();
            let mut hits = 0usize;
            let a0 = process_alloc_count();
            for graph in &graphs {
                hits += bed.engine.extract_candidates(graph).len();
            }
            let allocs = process_alloc_count() - a0;
            assert!(hits > 0, "workload found no candidates");
            allocs as f64 / graphs.len() as f64
        };
        let p0 = scan_counters(&pruned);
        let p_allocs = pass(&pruned);
        let p1 = scan_counters(&pruned);
        let e0 = scan_counters(&exhaustive);
        let e_allocs = pass(&exhaustive);
        let e1 = scan_counters(&exhaustive);

        // Paired per-query timings, best-of-rounds (see --check-overhead
        // for why: additive interference makes the minimum the closest
        // observation to the intrinsic cost).
        let time_p1 = |bed: &Testbed, q: &GeneratedQuery| -> f64 {
            let graph = Testbed::to_request(q, 10).query_graph();
            let start = Instant::now();
            let hits = bed.engine.extract_candidates(&graph);
            let elapsed = start.elapsed().as_secs_f64();
            assert!(hits.len() <= top_n);
            elapsed
        };
        let mut best_p = vec![f64::INFINITY; n_queries];
        let mut best_e = vec![f64::INFINITY; n_queries];
        for round in 0..rounds {
            for (qi, q) in workload.queries.iter().enumerate() {
                let (tp, te) = if (round + qi) % 2 == 0 {
                    let tp = time_p1(&pruned, q);
                    let te = time_p1(&exhaustive, q);
                    (tp, te)
                } else {
                    let te = time_p1(&exhaustive, q);
                    let tp = time_p1(&pruned, q);
                    (tp, te)
                };
                best_p[qi] = best_p[qi].min(tp);
                best_e[qi] = best_e[qi].min(te);
            }
        }
        best_p.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        best_e.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

        let report =
            |sorted: &[f64], before: (u64, u64, u64), after: (u64, u64, u64), allocs: f64| {
                PruneModeReport {
                    p50_ms: q_ms(sorted, 0.50),
                    p95_ms: q_ms(sorted, 0.95),
                    p99_ms: q_ms(sorted, 0.99),
                    postings_scanned: after.0 - before.0,
                    pruned_postings: after.1 - before.1,
                    pruned_lists: after.2 - before.2,
                    allocs_per_query: allocs,
                }
            };
        (
            report(&best_p, p0, p1, p_allocs),
            report(&best_e, e0, e1, e_allocs),
        )
    };

    let mut table = Table::new(&[
        "top-n",
        "mode",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "postings scanned",
        "postings pruned",
        "lists pruned",
        "allocs/query",
    ]);
    let mut blocks = Vec::new();
    let mut gate = None;
    for top_n in [10usize, 50] {
        let (p, e) = measure(top_n);
        let scan_reduction = e.postings_scanned as f64 / (p.postings_scanned.max(1)) as f64;
        let p50_speedup = e.p50_ms / p.p50_ms.max(1e-9);
        for (name, m) in [("exhaustive", &e), ("pruned", &p)] {
            table.row(&[
                top_n.to_string(),
                name.into(),
                format!("{:.4}", m.p50_ms),
                format!("{:.4}", m.p95_ms),
                format!("{:.4}", m.p99_ms),
                m.postings_scanned.to_string(),
                m.pruned_postings.to_string(),
                m.pruned_lists.to_string(),
                format!("{:.1}", m.allocs_per_query),
            ]);
        }
        blocks.push(format!(
            "    {{\"top_n\": {top_n}, \"exhaustive\": {}, \"pruned\": {}, \"scan_reduction\": {scan_reduction:.2}, \"p50_speedup\": {p50_speedup:.2}}}",
            e.json(),
            p.json()
        ));
        if top_n == gate_top_n {
            gate = Some((scan_reduction, p50_speedup));
        }
    }
    table.print();

    let (scan_reduction, p50_speedup) = gate.expect("gate top-n measured");
    println!(
        "\ntop-n {gate_top_n}: {scan_reduction:.2}x fewer postings scanned, {p50_speedup:.2}x \
         p50 speedup (bars: {SCAN_BAR}x scan or {SPEEDUP_BAR}x p50)"
    );

    let json = format!(
        "{{\n  \"experiment\": \"e4_pruning\",\n  \"corpus\": {size},\n  \"queries\": {n_queries},\n  \"rounds\": {rounds},\n  \"configs\": [\n{}\n  ]\n}}\n",
        blocks.join(",\n")
    );
    let out_path = std::path::Path::new("results").join("e4_pruning.json");
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(&out_path, &json)) {
        Ok(()) => println!("wrote pruning measurements to {}", out_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", out_path.display()),
    }

    if check {
        if scan_reduction >= SCAN_BAR || p50_speedup >= SPEEDUP_BAR {
            println!("\nPASS: pruning clears the bar with bitwise-identical results");
            0
        } else {
            println!(
                "\nFAIL: pruning cleared neither bar ({scan_reduction:.2}x scan, \
                 {p50_speedup:.2}x p50)"
            );
            1
        }
    } else {
        println!(
            "\nExpected shape: identical hits bit for bit, while the pruned side\n\
             skips the bulk of the common-term postings once rare terms have\n\
             filled the top-n floor — fewer postings scanned and a lower p50\n\
             at both top-n settings."
        );
        0
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if std::env::args().any(|a| a == "--check-overhead") {
        std::process::exit(check_overhead(quick));
    }
    if std::env::args().any(|a| a == "--serve") {
        let check = std::env::args().any(|a| a == "--check-serving");
        std::process::exit(run_serving(quick, check));
    }
    if std::env::args().any(|a| a == "--phase2") {
        let check = std::env::args().any(|a| a == "--check-speedup");
        let check_kernel = std::env::args().any(|a| a == "--check-kernel");
        std::process::exit(run_phase2(quick, check, check_kernel));
    }
    if std::env::args().any(|a| a == "--phase1-pruning") {
        let check = std::env::args().any(|a| a == "--check-pruning");
        std::process::exit(run_phase1_pruning(quick, check));
    }
    if std::env::args().any(|a| a == "--churn") {
        run_churn(quick);
        return;
    }
    let sizes: &[usize] = if quick {
        &[500, 1_000, 2_000]
    } else {
        &[1_000, 5_000, 10_000, 30_000]
    };
    let queries = if quick { 10 } else { 40 };

    println!("E1: search latency & phase breakdown vs corpus size (top-n = 50)\n");
    let mut table = Table::new(&[
        "corpus",
        "docs",
        "terms",
        "p1 (ms)",
        "p2 (ms)",
        "p3 (ms)",
        "total (ms)",
        "p95 sum",
        "candidates",
        "cpu (ms)",
        "allocs",
    ]);
    let mut reports: Vec<SizeReport> = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let corpus = Corpus::generate(&CorpusConfig {
            target_size: size,
            seed: 42,
            ..CorpusConfig::default()
        });
        let bed = Testbed::build(&corpus);
        let workload = Workload::generate(
            &corpus,
            &WorkloadConfig {
                queries,
                seed: 7,
                ..Default::default()
            },
        );
        let mut p1 = Duration::ZERO;
        let mut p2 = Duration::ZERO;
        let mut p3 = Duration::ZERO;
        let mut cands = 0usize;
        let mut cpu_us = 0u64;
        let mut allocs = 0u64;
        for q in &workload.queries {
            let resp = bed
                .engine
                .search_detailed(&Testbed::to_request(q, 10))
                .expect("nonempty query");
            p1 += resp.timings.candidate_extraction;
            p2 += resp.timings.matching;
            p3 += resp.timings.scoring;
            cands += resp.candidates_evaluated;
            if let Some(ledger) = resp.ledger {
                cpu_us += ledger.cpu_us;
                allocs += ledger.alloc_count;
            }
        }
        // Each testbed has a private registry, so these snapshots cover
        // exactly this corpus size's workload.
        let registry = bed.engine.metrics_registry();
        let phases: Vec<(&'static str, HistogramSnapshot)> = PHASES
            .iter()
            .map(|&phase| {
                let snap = registry
                    .histogram_snapshot("schemr_phase_seconds", &[("phase", phase)])
                    .expect("engine registers phase histograms");
                (phase, snap)
            })
            .collect();
        let n = workload.queries.len() as f64;
        let ms = |d: Duration| format!("{:.2}", d.as_secs_f64() * 1000.0 / n);
        let stats = bed.engine.index_stats();
        let p95_total_ms: f64 = phases.iter().map(|(_, s)| s.quantile(0.95) * 1e3).sum();
        table.row(&[
            size.to_string(),
            stats.live_docs.to_string(),
            stats.distinct_terms.to_string(),
            ms(p1),
            ms(p2),
            ms(p3),
            format!("{:.2}", (p1 + p2 + p3).as_secs_f64() * 1000.0 / n),
            format!("{p95_total_ms:.2}"),
            format!("{:.1}", cands as f64 / n),
            format!("{:.2}", cpu_us as f64 / 1e3 / n),
            format!("{:.0}", allocs as f64 / n),
        ]);
        reports.push(SizeReport {
            corpus: size,
            docs: stats.live_docs,
            terms: stats.distinct_terms,
            queries: workload.queries.len(),
            mean_total_ms: (p1 + p2 + p3).as_secs_f64() * 1e3 / n,
            mean_candidates: cands as f64 / n,
            mean_cpu_ms: cpu_us as f64 / 1e3 / n,
            mean_allocs: allocs as f64 / n,
            phases,
        });
    }
    table.print();

    let json = json_report(50, &reports);
    let out_path = std::path::Path::new("results").join("e1_scalability.json");
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(&out_path, &json)) {
        Ok(()) => println!("\nwrote per-phase p50/p95/p99 to {}", out_path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", out_path.display()),
    }
    println!(
        "\nExpected shape: phase 1 grows sublinearly with corpus size (inverted index);\n\
         phases 2+3 are flat (bounded by top-n candidates), so total latency stays\n\
         interactive at 30k schemas — the paper's scalability claim."
    );
}
