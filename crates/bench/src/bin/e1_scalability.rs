//! **E1 — Search latency and phase breakdown vs corpus size.**
//!
//! The paper claims the document index is "a fast and scalable filter for
//! relevant candidate schemas" and demonstrates search over 30,000 public
//! schemas. This harness measures, per corpus size: mean end-to-end search
//! latency, the per-phase breakdown (candidate extraction / matching /
//! tightness scoring), and the index size. Per-phase p50/p95/p99 come from
//! the engine's own `schemr_phase_seconds` histograms (the same series
//! `/metrics` exports) and are written to `results/e1_scalability.json`.
//!
//! Run with `cargo run --release -p schemr-bench --bin e1_scalability`
//! (pass `--quick` for a fast smoke run).
//!
//! Pass `--check-overhead` to instead compare traced vs untraced search
//! latency on one corpus (per-query paired timings, median ratio) and exit
//! nonzero when request tracing costs more than 5% — the CI guard that
//! keeps `schemr-trace` honest about being cheap enough to leave on.

use schemr::EngineConfig;
use schemr_bench::{Table, Testbed};
use schemr_corpus::{Corpus, CorpusConfig, GeneratedQuery, Workload, WorkloadConfig};
use schemr_obs::{HistogramSnapshot, TracerConfig};
use std::time::{Duration, Instant};

const PHASES: &[&str] = &["candidate_extraction", "matching", "scoring"];

/// One corpus size's measurements, ready for the JSON report.
struct SizeReport {
    corpus: usize,
    docs: usize,
    terms: usize,
    queries: usize,
    mean_total_ms: f64,
    mean_candidates: f64,
    /// `(phase, snapshot)` in `PHASES` order.
    phases: Vec<(&'static str, HistogramSnapshot)>,
}

fn json_report(top_candidates: usize, sizes: &[SizeReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"e1_scalability\",\n");
    out.push_str(&format!("  \"top_candidates\": {top_candidates},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, s) in sizes.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"corpus\": {},\n", s.corpus));
        out.push_str(&format!("      \"docs\": {},\n", s.docs));
        out.push_str(&format!("      \"terms\": {},\n", s.terms));
        out.push_str(&format!("      \"queries\": {},\n", s.queries));
        out.push_str(&format!(
            "      \"mean_total_ms\": {:.4},\n",
            s.mean_total_ms
        ));
        out.push_str(&format!(
            "      \"mean_candidates\": {:.2},\n",
            s.mean_candidates
        ));
        out.push_str("      \"phases\": {\n");
        for (j, (name, snap)) in s.phases.iter().enumerate() {
            out.push_str(&format!(
                "        \"{}\": {{\"count\": {}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}}}{}\n",
                name,
                snap.count,
                snap.quantile(0.50) * 1e3,
                snap.quantile(0.95) * 1e3,
                snap.quantile(0.99) * 1e3,
                if j + 1 < s.phases.len() { "," } else { "" }
            ));
        }
        out.push_str("      }\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < sizes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Wall-clock for one full pass over the workload.
fn run_workload(bed: &Testbed, workload: &Workload) -> f64 {
    let start = Instant::now();
    for q in &workload.queries {
        bed.engine
            .search_detailed(&Testbed::to_request(q, 10))
            .expect("nonempty query");
    }
    start.elapsed().as_secs_f64()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Wall-clock for one query on one engine.
fn time_query(bed: &Testbed, q: &GeneratedQuery) -> f64 {
    let start = Instant::now();
    bed.engine
        .search_detailed(&Testbed::to_request(q, 10))
        .expect("nonempty query");
    start.elapsed().as_secs_f64()
}

/// `--check-overhead`: traced vs untraced latency on one corpus.
///
/// Each query is timed on both engines back to back (alternating which
/// side goes first), and the verdict is the median of the per-query
/// traced/untraced ratios. Pairing adjacent timings cancels the slow
/// machine drift (CPU frequency, co-tenants) that dominates round-level
/// comparisons on shared hardware, and the median discards the pairs a
/// scheduler hiccup lands in. Returns the process exit code.
fn check_overhead(quick: bool) -> i32 {
    let size = if quick { 1_000 } else { 5_000 };
    let queries = if quick { 30 } else { 60 };
    let rounds = if quick { 7 } else { 11 };
    const BUDGET_PCT: f64 = 5.0;

    let corpus = Corpus::generate(&CorpusConfig {
        target_size: size,
        seed: 42,
        ..CorpusConfig::default()
    });
    let workload = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries,
            seed: 7,
            ..Default::default()
        },
    );
    let traced = Testbed::build_with_config(&corpus, EngineConfig::default());
    let untraced = Testbed::build_with_config(
        &corpus,
        EngineConfig {
            trace: TracerConfig::disabled(),
            ..EngineConfig::default()
        },
    );

    // Warm both engines before timing anything.
    run_workload(&traced, &workload);
    run_workload(&untraced, &workload);

    let mut ratios = Vec::with_capacity(rounds * workload.queries.len());
    let mut on_total = 0.0;
    let mut off_total = 0.0;
    for round in 0..rounds {
        for (qi, q) in workload.queries.iter().enumerate() {
            let (t_on, t_off) = if (round + qi) % 2 == 0 {
                let on = time_query(&traced, q);
                let off = time_query(&untraced, q);
                (on, off)
            } else {
                let off = time_query(&untraced, q);
                let on = time_query(&traced, q);
                (on, off)
            };
            on_total += t_on;
            off_total += t_off;
            if t_off > 0.0 {
                ratios.push(t_on / t_off);
            }
        }
    }
    let overhead_pct = (median(&mut ratios) - 1.0) * 100.0;

    println!("E1 --check-overhead: tracing cost, per-query paired timings");
    println!(
        "  corpus {size}, {queries} queries x {rounds} rounds = {} pairs",
        ratios.len()
    );
    println!("  total wall, tracing on:  {:.2} ms", on_total * 1e3);
    println!("  total wall, tracing off: {:.2} ms", off_total * 1e3);
    println!("  overhead: {overhead_pct:+.2}% (budget {BUDGET_PCT}%, median paired ratio)");
    if overhead_pct < BUDGET_PCT {
        println!("  PASS: tracing fits the {BUDGET_PCT}% budget");
        0
    } else {
        println!("  FAIL: tracing exceeds the {BUDGET_PCT}% budget");
        1
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if std::env::args().any(|a| a == "--check-overhead") {
        std::process::exit(check_overhead(quick));
    }
    let sizes: &[usize] = if quick {
        &[500, 1_000, 2_000]
    } else {
        &[1_000, 5_000, 10_000, 30_000]
    };
    let queries = if quick { 10 } else { 40 };

    println!("E1: search latency & phase breakdown vs corpus size (top-n = 50)\n");
    let mut table = Table::new(&[
        "corpus",
        "docs",
        "terms",
        "p1 (ms)",
        "p2 (ms)",
        "p3 (ms)",
        "total (ms)",
        "p95 sum",
        "candidates",
    ]);
    let mut reports: Vec<SizeReport> = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let corpus = Corpus::generate(&CorpusConfig {
            target_size: size,
            seed: 42,
            ..CorpusConfig::default()
        });
        let bed = Testbed::build(&corpus);
        let workload = Workload::generate(
            &corpus,
            &WorkloadConfig {
                queries,
                seed: 7,
                ..Default::default()
            },
        );
        let mut p1 = Duration::ZERO;
        let mut p2 = Duration::ZERO;
        let mut p3 = Duration::ZERO;
        let mut cands = 0usize;
        for q in &workload.queries {
            let resp = bed
                .engine
                .search_detailed(&Testbed::to_request(q, 10))
                .expect("nonempty query");
            p1 += resp.timings.candidate_extraction;
            p2 += resp.timings.matching;
            p3 += resp.timings.scoring;
            cands += resp.candidates_evaluated;
        }
        // Each testbed has a private registry, so these snapshots cover
        // exactly this corpus size's workload.
        let registry = bed.engine.metrics_registry();
        let phases: Vec<(&'static str, HistogramSnapshot)> = PHASES
            .iter()
            .map(|&phase| {
                let snap = registry
                    .histogram_snapshot("schemr_phase_seconds", &[("phase", phase)])
                    .expect("engine registers phase histograms");
                (phase, snap)
            })
            .collect();
        let n = workload.queries.len() as f64;
        let ms = |d: Duration| format!("{:.2}", d.as_secs_f64() * 1000.0 / n);
        let stats = bed.engine.index_stats();
        let p95_total_ms: f64 = phases.iter().map(|(_, s)| s.quantile(0.95) * 1e3).sum();
        table.row(&[
            size.to_string(),
            stats.live_docs.to_string(),
            stats.distinct_terms.to_string(),
            ms(p1),
            ms(p2),
            ms(p3),
            format!("{:.2}", (p1 + p2 + p3).as_secs_f64() * 1000.0 / n),
            format!("{p95_total_ms:.2}"),
            format!("{:.1}", cands as f64 / n),
        ]);
        reports.push(SizeReport {
            corpus: size,
            docs: stats.live_docs,
            terms: stats.distinct_terms,
            queries: workload.queries.len(),
            mean_total_ms: (p1 + p2 + p3).as_secs_f64() * 1e3 / n,
            mean_candidates: cands as f64 / n,
            phases,
        });
    }
    table.print();

    let json = json_report(50, &reports);
    let out_path = std::path::Path::new("results").join("e1_scalability.json");
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(&out_path, &json)) {
        Ok(()) => println!("\nwrote per-phase p50/p95/p99 to {}", out_path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", out_path.display()),
    }
    println!(
        "\nExpected shape: phase 1 grows sublinearly with corpus size (inverted index);\n\
         phases 2+3 are flat (bounded by top-n candidates), so total latency stays\n\
         interactive at 30k schemas — the paper's scalability claim."
    );
}
