//! **E1 — Search latency and phase breakdown vs corpus size.**
//!
//! The paper claims the document index is "a fast and scalable filter for
//! relevant candidate schemas" and demonstrates search over 30,000 public
//! schemas. This harness measures, per corpus size: mean end-to-end search
//! latency, the per-phase breakdown (candidate extraction / matching /
//! tightness scoring), and the index size.
//!
//! Run with `cargo run --release -p schemr-bench --bin e1_scalability`
//! (pass `--quick` for a fast smoke run).

use schemr_bench::{Table, Testbed};
use schemr_corpus::{Corpus, CorpusConfig, Workload, WorkloadConfig};
use std::time::Duration;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[500, 1_000, 2_000]
    } else {
        &[1_000, 5_000, 10_000, 30_000]
    };
    let queries = if quick { 10 } else { 40 };

    println!("E1: search latency & phase breakdown vs corpus size (top-n = 50)\n");
    let mut table = Table::new(&[
        "corpus",
        "docs",
        "terms",
        "p1 (ms)",
        "p2 (ms)",
        "p3 (ms)",
        "total (ms)",
        "candidates",
    ]);
    for &size in sizes {
        let corpus = Corpus::generate(&CorpusConfig {
            target_size: size,
            seed: 42,
            ..CorpusConfig::default()
        });
        let bed = Testbed::build(&corpus);
        let workload = Workload::generate(
            &corpus,
            &WorkloadConfig {
                queries,
                seed: 7,
                ..Default::default()
            },
        );
        let mut p1 = Duration::ZERO;
        let mut p2 = Duration::ZERO;
        let mut p3 = Duration::ZERO;
        let mut cands = 0usize;
        for q in &workload.queries {
            let resp = bed
                .engine
                .search_detailed(&Testbed::to_request(q, 10))
                .expect("nonempty query");
            p1 += resp.timings.candidate_extraction;
            p2 += resp.timings.matching;
            p3 += resp.timings.scoring;
            cands += resp.candidates_evaluated;
        }
        let n = workload.queries.len() as f64;
        let ms = |d: Duration| format!("{:.2}", d.as_secs_f64() * 1000.0 / n);
        let stats = bed.engine.index_stats();
        table.row(&[
            size.to_string(),
            stats.live_docs.to_string(),
            stats.distinct_terms.to_string(),
            ms(p1),
            ms(p2),
            ms(p3),
            format!("{:.2}", (p1 + p2 + p3).as_secs_f64() * 1000.0 / n),
            format!("{:.1}", cands as f64 / n),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: phase 1 grows sublinearly with corpus size (inverted index);\n\
         phases 2+3 are flat (bounded by top-n candidates), so total latency stays\n\
         interactive at 30k schemas — the paper's scalability claim."
    );
}
