//! **E9 — The paper's proposed extensions, measured.**
//!
//! The Applications section sketches two ranking-relevant integrations:
//!
//! * community signals — "collaboration functionality that provides usage
//!   statistics and comments on schemas would improve schema search
//!   results" (Part A),
//! * the data-type codebook — "a codebook that contains data types like
//!   units, date/time, and geographic location" (Part B, as an extra
//!   ensemble matcher).
//!
//! Run with `cargo run --release -p schemr-bench --bin e9_extensions`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schemr_bench::{variants, Table, Testbed};
use schemr_codebook::CodebookMatcher;
use schemr_collab::{CommunityRanker, CommunityStore};
use schemr_corpus::{Corpus, CorpusConfig, PerturbConfig, Workload, WorkloadConfig};
use schemr_match::Ensemble;

/// Part A: simulate a click history over training queries (users click
/// relevant results far more often than irrelevant ones), then measure
/// held-out ranking quality with and without community re-ranking.
fn community(quick: bool) {
    println!("Part A: community-signal re-ranking\n");
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: if quick { 400 } else { 2_000 },
        seed: 91,
        ..CorpusConfig::default()
    });
    let bed = Testbed::build(&corpus);
    // Hard queries (heavy abbreviation) leave the engine headroom that
    // community signals can reclaim.
    let hard = PerturbConfig {
        abbreviation: 0.5,
        morphology: 0.3,
        delimiter: 0.0,
        synonym: 0.3,
    };
    let train = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries: if quick { 40 } else { 200 },
            seed: 92,
            perturb: hard,
            ..Default::default()
        },
    );
    let test = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries: if quick { 30 } else { 120 },
            seed: 93,
            perturb: hard,
            ..Default::default()
        },
    );

    // Click model: P(click | relevant shown) = 0.6, P(click | other) = 0.03.
    let store = CommunityStore::new();
    let mut rng = StdRng::seed_from_u64(94);
    for q in &train.queries {
        let relevant: std::collections::HashSet<usize> = q.relevant.iter().copied().collect();
        let results = bed
            .engine
            .search(&Testbed::to_request(q, 10))
            .expect("nonempty");
        for r in &results {
            store.record_impression(r.id);
            let ix = bed.corpus_index(r.id);
            let p = if ix.is_some_and(|i| relevant.contains(&i)) {
                0.6
            } else {
                0.03
            };
            if rng.random_bool(p) {
                store.record_click(r.id);
            }
        }
    }

    let ranker = CommunityRanker::new(&store);
    let mut table = Table::new(&["ranking", "P@10", "MRR", "NDCG@10"]);
    for (name, boosted) in [("engine only", false), ("engine + community", true)] {
        let m = bed.evaluate_with(&test, 10, |q| {
            // Re-rank the whole candidate pool, then truncate — community
            // signals can pull a schema into the top 10, not just permute
            // it.
            let mut results = bed
                .engine
                .search(&Testbed::to_request(q, 50))
                .expect("nonempty");
            if boosted {
                ranker.rerank(&mut results);
            }
            results
                .iter()
                .take(10)
                .filter_map(|r| bed.corpus_index(r.id))
                .collect()
        });
        table.row(&[
            name.to_string(),
            format!("{:.3}", m.p_at_10),
            format!("{:.3}", m.mrr),
            format!("{:.3}", m.ndcg_at_10),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: clicks concentrate on truly relevant schemas, so the\n\
         community-boosted ranking matches or beats the engine-only ranking.\n"
    );
}

/// Part B: the codebook matcher on a synonym-heavy corpus — families where
/// members renamed columns through synonym classes (gender↔sex,
/// birthday↔dob) that pure name similarity cannot bridge.
fn codebook(quick: bool) {
    println!("Part B: codebook matcher in the ensemble (synonym-heavy corpus)\n");
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: if quick { 400 } else { 2_000 },
        seed: 95,
        perturb: PerturbConfig {
            synonym: 0.7,
            abbreviation: 0.1,
            morphology: 0.1,
            delimiter: 0.3,
        },
        ..CorpusConfig::default()
    });
    let workload = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries: if quick { 30 } else { 120 },
            seed: 96,
            perturb: PerturbConfig {
                synonym: 0.5,
                ..PerturbConfig::none()
            },
            ..Default::default()
        },
    );
    let bed = Testbed::build(&corpus);

    let mut table = Table::new(&["ensemble", "P@10", "MRR", "NDCG@10"]);
    // The codebook is a coarse signal (family credit between any two
    // geographic or quantity columns), so it enters at a low weight.
    let with_codebook = || {
        let mut e = Ensemble::standard();
        e.push(Box::new(CodebookMatcher::new()), 0.25);
        e
    };
    for (name, ensemble) in [
        ("name + context", variants::standard_ensemble()),
        ("name + context + codebook@0.25", with_codebook()),
    ] {
        bed.engine.set_ensemble(ensemble);
        let m = bed.evaluate(&workload, 10);
        table.row(&[
            name.to_string(),
            format!("{:.3}", m.p_at_10),
            format!("{:.3}", m.mrr),
            format!("{:.3}", m.ndcg_at_10),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: on synonym-renamed families the codebook matcher adds\n\
         recall the n-gram matcher cannot (dob↔birthday, sex↔gender), nudging\n\
         the metrics up; on ordinary corpora it is neutral."
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("E9: proposed-extension ablations\n");
    community(quick);
    codebook(quick);
}
