//! **E8 — The paper's corpus filtering rules.**
//!
//! "These schemas came from a collection of 10 million HTML tables, and
//! were filtered by removing schemas containing non-alphabetical
//! characters, schemas that only appeared once on the web, and trivial
//! schemas with three or less elements."
//!
//! This harness generates a raw corpus (families + WebTables-style junk),
//! applies the filter, and reports removals per rule plus before/after
//! shape statistics.
//!
//! Run with `cargo run --release -p schemr-bench --bin e8_corpus_filter`.

use schemr_bench::Table;
use schemr_corpus::{Corpus, CorpusConfig, CorpusFilter};
use schemr_model::SchemaStats;

fn shape(corpus: &Corpus) -> (f64, f64, f64) {
    let n = corpus.len().max(1) as f64;
    let mut entities = 0usize;
    let mut attrs = 0usize;
    let mut fks = 0usize;
    for s in &corpus.schemas {
        let st = SchemaStats::of(&s.schema);
        entities += st.entities;
        attrs += st.attributes;
        fks += st.foreign_keys;
    }
    (entities as f64 / n, attrs as f64 / n, fks as f64 / n)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let raw = Corpus::generate(&CorpusConfig {
        target_size: if quick { 2_000 } else { 30_000 },
        seed: 81,
        raw_noise: 0.6,
        ..CorpusConfig::default()
    });
    println!(
        "E8: corpus filter (raw corpus of {} schemas, 60% junk overlay)\n",
        raw.len()
    );

    let (filtered, (non_alpha, singleton, trivial)) = CorpusFilter::apply(&raw);

    let mut table = Table::new(&["stage / rule", "schemas"]);
    table.row(&["raw".into(), raw.len().to_string()]);
    table.row(&["- non-alphabetical".into(), non_alpha.to_string()]);
    table.row(&["- singleton".into(), singleton.to_string()]);
    table.row(&["- trivial (≤3 elements)".into(), trivial.to_string()]);
    table.row(&["filtered".into(), filtered.len().to_string()]);
    table.print();

    let (re, ra, rf) = shape(&raw);
    let (fe, fa, ff) = shape(&filtered);
    let mut stats = Table::new(&["corpus", "avg entities", "avg attributes", "avg FKs"]);
    stats.row(&[
        "raw".into(),
        format!("{re:.2}"),
        format!("{ra:.2}"),
        format!("{rf:.2}"),
    ]);
    stats.row(&[
        "filtered".into(),
        format!("{fe:.2}"),
        format!("{fa:.2}"),
        format!("{ff:.2}"),
    ]);
    println!();
    stats.print();

    println!(
        "\nExpected shape: every junk schema is removed by exactly one rule; the\n\
         filtered corpus is larger-bodied (higher average attribute count) and\n\
         contains only multi-member families — the corpus the paper searched."
    );
}
