//! **E4 — Tightness-of-fit ablation.**
//!
//! The paper's Phase 3 intuition: schemas whose matched elements sit close
//! together (same entity, or FK neighborhood) fit the query's semantic
//! intent better than schemas with the same matches scattered across
//! unrelated entities.
//!
//! Part A reproduces the Figure 4 micro-example: a query whose terms
//! co-locate in one candidate but scatter in another; the co-located
//! candidate must rank first, and the margin must come from the penalties.
//!
//! Part B ablates Phase 3 design choices on fragment-heavy retrieval:
//! full vs no-penalties vs sum-vs-mean aggregation vs no coverage
//! weighting.
//!
//! Run with `cargo run --release -p schemr-bench --bin e4_tightness_ablation`.

use schemr::{EngineConfig, SearchRequest, TightnessConfig};
use schemr_bench::{variants, Table, Testbed};
use schemr_corpus::{Corpus, CorpusConfig, Workload, WorkloadConfig};
use schemr_repo::import::import_str;
use schemr_repo::Repository;
use std::sync::Arc;

fn micro_example() {
    println!("Part A: Figure-4-style micro example\n");
    let repo = Arc::new(Repository::new());
    // Co-located: height & gender in one patient table.
    import_str(
        &repo,
        "colocated",
        "",
        "CREATE TABLE patient (id INT, height REAL, gender TEXT, dob DATE)",
    )
    .unwrap();
    // Neighborhood: split across FK-joined tables.
    import_str(
        &repo,
        "neighborhood",
        "",
        "CREATE TABLE patient (id INT, height REAL);
         CREATE TABLE visit (id INT, gender TEXT, patient_id INT REFERENCES patient(id))",
    )
    .unwrap();
    // Scattered: same columns in unrelated tables.
    import_str(
        &repo,
        "scattered",
        "",
        "CREATE TABLE patient (id INT, height REAL);
         CREATE TABLE warehouse (id INT, gender TEXT)",
    )
    .unwrap();

    let engine = schemr::SchemrEngine::new(repo);
    engine.reindex_full();
    let results = engine
        .search(&SearchRequest::keywords(["patient", "height", "gender"]))
        .unwrap();
    let mut table = Table::new(&["rank", "schema", "score"]);
    for (i, r) in results.iter().enumerate() {
        table.row(&[
            (i + 1).to_string(),
            r.title.clone(),
            format!("{:.3}", r.score),
        ]);
    }
    table.print();
    println!("\nExpected order: colocated > neighborhood > scattered.\n");
}

/// Part B: scatter discrimination at scale. For N generated concepts we
/// index the clean base schema and its scattered twin (identical
/// attribute names, structure destroyed, no FKs). Queries use one base
/// entity's exact attribute names, so coarse score and coverage tie — only
/// the structural penalty can tell the two apart.
fn scatter_discrimination(quick: bool) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use schemr_corpus::{GeneratorConfig, SchemaGenerator};

    println!("Part B: scatter discrimination at scale\n");
    let n = if quick { 30 } else { 150 };
    let mut rng = StdRng::seed_from_u64(41);
    let generator = SchemaGenerator::new(GeneratorConfig {
        entities: (2, 4),
        tree_probability: 0.0,
        fk_probability: 1.0,
        compound_rate: 0.6,
        ..GeneratorConfig::default()
    });

    // Build the paired corpus.
    let repo = Arc::new(Repository::new());
    let mut cases: Vec<(schemr_model::SchemaId, schemr_model::SchemaId, Vec<String>)> = Vec::new();
    for i in 0..n {
        let domain = &schemr_corpus::vocab::DOMAINS[i % schemr_corpus::vocab::DOMAINS.len()];
        let base = generator.generate(&format!("base{i}"), domain, &mut rng);
        // Scattered twin: same attribute names, one entity each, no FKs.
        let mut twin = schemr_model::Schema::new(format!("twin{i}"));
        let hosts: Vec<_> = (0..3)
            .map(|h| twin.add_root(schemr_model::Element::entity(format!("export{i}_{h}"))))
            .collect();
        for id in base.ids() {
            let el = base.element(id);
            if el.kind == schemr_model::ElementKind::Attribute {
                let host = hosts[rng.random_range(0..hosts.len())];
                twin.add_child(
                    host,
                    schemr_model::Element::attribute(el.name.clone(), el.data_type),
                );
            }
        }
        // Query: the attribute names of the base's largest entity.
        let entity = *base
            .entities()
            .iter()
            .max_by_key(|&&e| base.children(e).len())
            .unwrap();
        let keywords: Vec<String> = base
            .children(entity)
            .into_iter()
            .filter(|&c| base.element(c).kind == schemr_model::ElementKind::Attribute)
            .take(5)
            .map(|a| base.element(a).name.clone())
            .collect();
        let base_id = repo.insert(format!("base{i}"), "", base).unwrap();
        let twin_id = repo.insert(format!("twin{i}"), "", twin).unwrap();
        cases.push((base_id, twin_id, keywords));
    }

    let mut table = Table::new(&["variant", "base wins", "ties", "twin wins", "mean Δscore"]);
    for (name, config) in [
        ("penalties on", variants::full()),
        ("penalties off", variants::no_structure()),
    ] {
        let engine = schemr::SchemrEngine::with_config(repo.clone(), config);
        engine.reindex_full();
        let (mut wins, mut ties, mut losses, mut delta) = (0usize, 0usize, 0usize, 0.0f64);
        for (base_id, twin_id, keywords) in &cases {
            let kw: Vec<&str> = keywords.iter().map(String::as_str).collect();
            let results = engine
                .search(&SearchRequest::keywords(kw).with_limit(repo.len()))
                .unwrap();
            let score_of = |id| results.iter().find(|r| r.id == id).map_or(0.0, |r| r.score);
            let (sb, st) = (score_of(*base_id), score_of(*twin_id));
            delta += sb - st;
            if (sb - st).abs() < 1e-9 {
                ties += 1;
            } else if sb > st {
                wins += 1;
            } else {
                losses += 1;
            }
        }
        table.row(&[
            name.to_string(),
            wins.to_string(),
            ties.to_string(),
            losses.to_string(),
            format!("{:+.3}", delta / cases.len() as f64),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: with penalties ON the co-located base wins nearly always;\n\
         with penalties OFF the two are indistinguishable (ties), since the twin\n\
         carries identical attribute names.\n"
    );
}

fn ablation(quick: bool) {
    println!("Part C: Phase 3 ablations on fragment-heavy retrieval\n");
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: if quick { 500 } else { 3_000 },
        seed: 31,
        ..CorpusConfig::default()
    });
    // Fragment-only workload: structure matters most here.
    let workload = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries: if quick { 30 } else { 150 },
            seed: 32,
            kind_mix: (0.0, 1.0, 0.0),
            ..Default::default()
        },
    );

    let variants_list: Vec<(&str, EngineConfig)> = vec![
        ("full (mean, penalties, coverage)", variants::full()),
        ("no structural penalties", variants::no_structure()),
        (
            "sum aggregation",
            EngineConfig {
                tightness: TightnessConfig {
                    mean_aggregation: false,
                    ..TightnessConfig::default()
                },
                ..EngineConfig::default()
            },
        ),
        (
            "no coverage weighting",
            EngineConfig {
                tightness: TightnessConfig {
                    coverage_weighting: false,
                    ..TightnessConfig::default()
                },
                ..EngineConfig::default()
            },
        ),
    ];

    let mut table = Table::new(&["variant", "P@10", "MRR", "NDCG@10"]);
    for (name, config) in variants_list {
        let bed = Testbed::build_with_config(&corpus, config);
        let m = bed.evaluate(&workload, 10);
        table.row(&[
            name.to_string(),
            format!("{:.3}", m.p_at_10),
            format!("{:.3}", m.mrr),
            format!("{:.3}", m.ndcg_at_10),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: the full configuration leads; removing penalties or\n\
         coverage weighting costs ranking quality; sum aggregation favors large\n\
         schemas and degrades precision."
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("E4: tightness-of-fit ablation\n");
    micro_example();
    scatter_discrimination(quick);
    ablation(quick);
}
