//! **E6 — Offline index build throughput, size, and incremental updates.**
//!
//! The paper's architecture runs the text indexer "at scheduled intervals"
//! offline over the whole repository. This harness measures, per corpus
//! size: full-build wall time and throughput, on-disk segment size (our
//! varint codec), dictionary size, and the cost of applying an incremental
//! batch through the change journal.
//!
//! Run with `cargo run --release -p schemr-bench --bin e6_index_build`.

use schemr::{IndexScheduler, SchemrEngine};
use schemr_bench::Table;
use schemr_corpus::{Corpus, CorpusConfig};
use schemr_repo::Repository;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[500, 1_000]
    } else {
        &[1_000, 5_000, 10_000, 30_000]
    };

    println!("E6: offline index build & incremental updates\n");
    let mut table = Table::new(&[
        "corpus",
        "build (ms)",
        "docs/s",
        "segment (KiB)",
        "terms",
        "postings",
        "incr 100 (ms)",
    ]);
    for &size in sizes {
        let corpus = Corpus::generate(&CorpusConfig {
            target_size: size,
            seed: 61,
            ..CorpusConfig::default()
        });
        let repo = Arc::new(Repository::new());
        for s in &corpus.schemas {
            repo.insert(s.title.clone(), s.summary.clone(), s.schema.clone())
                .unwrap();
        }
        let engine = Arc::new(SchemrEngine::new(repo.clone()));

        let t0 = Instant::now();
        engine.reindex_full();
        let build = t0.elapsed();

        let stats = engine.index_stats();
        // Segment size through the codec.
        let tmp = std::env::temp_dir().join(format!("schemr-e6-{size}.idx"));
        engine.save_index(&tmp).unwrap();
        let bytes = std::fs::metadata(&tmp).map(|m| m.len()).unwrap_or(0);
        let _ = std::fs::remove_file(&tmp);

        // Incremental batch: 100 fresh schemas through the journal.
        let extra = Corpus::generate(&CorpusConfig {
            target_size: 100,
            seed: 62,
            ..CorpusConfig::default()
        });
        for s in &extra.schemas {
            repo.insert(s.title.clone(), s.summary.clone(), s.schema.clone())
                .unwrap();
        }
        let scheduler = IndexScheduler::new(engine.clone());
        let t1 = Instant::now();
        let applied = scheduler.tick();
        let incr = t1.elapsed();
        assert_eq!(applied, 100);

        table.row(&[
            size.to_string(),
            format!("{:.1}", build.as_secs_f64() * 1000.0),
            format!("{:.0}", size as f64 / build.as_secs_f64()),
            format!("{:.0}", bytes as f64 / 1024.0),
            stats.distinct_terms.to_string(),
            stats.postings.to_string(),
            format!("{:.1}", incr.as_secs_f64() * 1000.0),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: build time linear in corpus size (thousands of docs/s);\n\
         incremental batches cost milliseconds regardless of corpus size — why the\n\
         paper's scheduled-interval indexer is viable."
    );
}
