//! **E6 — Offline index build throughput, size, and incremental updates.**
//!
//! The paper's architecture runs the text indexer "at scheduled intervals"
//! offline over the whole repository. This harness measures, per corpus
//! size: full-build wall time and throughput, on-disk segment size (our
//! varint codec), dictionary size, and the cost of applying an incremental
//! batch through the change journal.
//!
//! Run with `cargo run --release -p schemr-bench --bin e6_index_build`.
//!
//! Pass `--snapshot` to instead measure the segmented index's lock-free
//! snapshot reads under concurrent maintenance: search p99 while a
//! writer churns and a background merger compacts, against the seed's
//! shape — a monolithic index behind an external `RwLock` whose vacuum
//! holds the write lock (stop-the-world). A bitwise segmented-vs-
//! monolith oracle runs before anything is timed; results go to
//! `results/e6_snapshot.json`. Combine with `--check-snapshot` to exit
//! nonzero unless snapshot-read p99 beats the vacuum-blocked p99 by
//! ≥1.5x (or the oracle fails).

use schemr::{IndexScheduler, SchemrEngine};
use schemr_bench::Table;
use schemr_corpus::{Corpus, CorpusConfig, Workload, WorkloadConfig};
use schemr_index::{Index, IndexDocument, SearchOptions};
use schemr_model::SchemaId;
use schemr_repo::Repository;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Build the per-schema index documents for a corpus.
fn corpus_docs(corpus: &Corpus) -> Vec<IndexDocument> {
    corpus
        .schemas
        .iter()
        .enumerate()
        .map(|(i, s)| {
            IndexDocument::from_schema(SchemaId(i as u64), &s.title, &s.summary, &s.schema)
        })
        .collect()
}

/// Keyword query term lists drawn from the corpus workload generator.
fn keyword_queries(corpus: &Corpus, n: usize) -> Vec<Vec<String>> {
    let workload = Workload::generate(
        corpus,
        &WorkloadConfig {
            queries: n,
            seed: 7,
            kind_mix: (1.0, 0.0, 0.0),
            ..Default::default()
        },
    );
    workload
        .queries
        .into_iter()
        .map(|q| q.keywords)
        .filter(|k| !k.is_empty())
        .collect()
}

/// Bitwise comparison of two indexes over `queries`, pruning on and off.
/// Segmentation must change where postings live, never what a query
/// returns — any drift fails the whole bench before timing starts.
fn bitwise_oracle(
    segmented: &Index,
    monolith: &Index,
    queries: &[Vec<String>],
) -> Result<(), String> {
    for prune in [true, false] {
        let options = SearchOptions {
            top_n: 20,
            prune,
            ..Default::default()
        };
        for (qi, q) in queries.iter().enumerate() {
            let terms: Vec<&str> = q.iter().map(String::as_str).collect();
            let a = segmented.search(&terms, &options);
            let b = monolith.search(&terms, &options);
            if a.len() != b.len() {
                return Err(format!(
                    "query {qi} (prune={prune}): {} vs {} hits",
                    a.len(),
                    b.len()
                ));
            }
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                if x.id != y.id
                    || x.matched_terms != y.matched_terms
                    || x.score.to_bits() != y.score.to_bits()
                {
                    return Err(format!(
                        "query {qi} (prune={prune}) rank {i}: ({:?}, {}, {:x}) vs ({:?}, {}, {:x})",
                        x.id,
                        x.matched_terms,
                        x.score.to_bits(),
                        y.id,
                        y.matched_terms,
                        y.score.to_bits()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Latency percentile (µs) from an unsorted sample set.
fn percentile(samples: &mut [u64], p: f64) -> u64 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    let idx = ((samples.len() as f64 * p).ceil() as usize).saturating_sub(1);
    samples[idx.min(samples.len() - 1)]
}

/// One measurement arm: a searcher thread times queries for `duration`
/// while `churn` runs concurrently. Returns (latencies µs, maintenance
/// runs) — `churn` is handed a stop flag and reports how many vacuums or
/// merges it committed.
fn timed_arm(
    duration: Duration,
    search: impl Fn(&[&str], &SearchOptions) -> usize + Send,
    churn: impl FnOnce(&AtomicBool) -> u64 + Send,
    queries: &[Vec<String>],
) -> (Vec<u64>, u64) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let maintenance = scope.spawn(|| churn(&stop));
        let options = SearchOptions {
            top_n: 20,
            ..Default::default()
        };
        let mut samples = Vec::with_capacity(1 << 16);
        let deadline = Instant::now() + duration;
        let mut qi = 0usize;
        while Instant::now() < deadline {
            let terms: Vec<&str> = queries[qi % queries.len()]
                .iter()
                .map(String::as_str)
                .collect();
            qi += 1;
            let t0 = Instant::now();
            let hits = search(&terms, &options);
            samples.push(t0.elapsed().as_micros() as u64);
            std::hint::black_box(hits);
            // Pace like a client instead of spinning: a saturating
            // searcher floods the percentile window with back-to-back
            // fast samples, diluting maintenance pauses below the p99
            // cutoff and hiding exactly the stalls under measurement.
            std::thread::sleep(Duration::from_micros(500));
        }
        stop.store(true, Ordering::Relaxed);
        let runs = maintenance.join().unwrap();
        (samples, runs)
    })
}

/// `--snapshot`: lock-free snapshot reads vs. the seed's vacuum-blocked
/// shape. Returns the process exit code (nonzero only under
/// `--check-snapshot`, or when the inline oracle fails).
fn run_snapshot(quick: bool, check: bool) -> i32 {
    let size = if quick { 2_000 } else { 8_000 };
    let duration = Duration::from_millis(if quick { 1_500 } else { 4_000 });
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: size,
        seed: 61,
        ..CorpusConfig::default()
    });
    let docs = corpus_docs(&corpus);
    let queries = keyword_queries(&corpus, 64);
    assert!(!queries.is_empty(), "workload produced no keyword queries");

    // --- Inline bitwise oracle: before anything is timed. ---
    // A segmented index (small threshold, churned, merged) must agree
    // bit for bit with a monolith over the same live set — both on the
    // many-segment state and again after a background merge compacts it.
    {
        let segmented = Index::new().with_seal_threshold((size / 16).max(8));
        segmented.add_all(&docs);
        for d in docs.iter().step_by(5) {
            segmented.remove(d.id);
        }
        let segments = segmented.segment_count();
        assert!(segments > 1, "oracle index must actually be segmented");
        let monolith = Index::new().with_seal_threshold(usize::MAX);
        monolith.add_all(
            docs.iter()
                .enumerate()
                .filter(|(i, _)| i % 5 != 0)
                .map(|(_, d)| d),
        );
        if let Err(e) = bitwise_oracle(&segmented, &monolith, &queries) {
            eprintln!("E6 --snapshot: bitwise oracle FAILED before timing: {e}");
            return 1;
        }
        segmented.merge(0.05);
        if let Err(e) = bitwise_oracle(&segmented, &monolith, &queries) {
            eprintln!("E6 --snapshot: bitwise oracle FAILED after merge: {e}");
            return 1;
        }
        println!(
            "E6 --snapshot: bitwise oracle clean across {segments} segments x {} queries x prune on/off, pre- and post-merge\n",
            queries.len()
        );
    }

    // Both arms run the IDENTICAL maintenance schedule: churn for a
    // short gap, then run one maintenance pass (stop-the-world vacuum /
    // off-lock merge), back to back for the whole window. The arms
    // differ in whether maintenance blocks searches — and in how much it
    // must touch: vacuum rebuilds the whole corpus, merge only the
    // tombstoned segments. The gap is deliberately short so a meaningful
    // fraction (>1%) of the blocked arm's samples absorb a whole pause —
    // with sparse maintenance a single searcher's p99 would undersample
    // the stalls and hide exactly the behavior under test. Each arm runs
    // exactly two threads — searcher + writer/maintenance — so the
    // comparison stays fair on small machines.
    let churn_gap = Duration::from_millis(2);

    // The snapshot arm is measured FIRST: the blocked arm's monolith
    // churn deep-clones the whole corpus per mutation, and the heap
    // fragmentation it leaves behind would tax whichever arm runs after
    // it.
    //
    // --- Arm B: segmented snapshots. Searches grab one Arc and never
    // block; merge captures victims under a brief writer lock, compacts
    // off-lock, and publishes as a single pointer swap. Continuous
    // merging also keeps the segment count bounded against churn (every
    // threshold puts seals a new segment). Small seal threshold = the
    // segmented operating point: per-mutation publish clones only a
    // small head.
    let (mut snapshot, merges) = {
        let index = Index::new().with_seal_threshold(64);
        index.add_all(&docs);
        let churn_docs = &docs;
        let index_ref = &index;
        timed_arm(
            duration,
            |terms, options| index_ref.search(terms, options).len(),
            move |stop| {
                let mut i = 0usize;
                let mut merges = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let gap_end = Instant::now() + churn_gap;
                    while Instant::now() < gap_end && !stop.load(Ordering::Relaxed) {
                        let d = &churn_docs[i % churn_docs.len()];
                        index_ref.remove(d.id);
                        index_ref.add(d);
                        i += 1;
                    }
                    // Off-lock compaction: searches keep flowing. Near-
                    // zero threshold = compact as soon as any tombstone
                    // exists, the analogue of the blocked arm's
                    // unconditional vacuum — except merge touches only
                    // tombstoned segments and never the clean bulk.
                    if index_ref.merge(1e-6).is_some() {
                        merges += 1;
                    }
                }
                merges
            },
            &queries,
        )
    };

    // --- Arm A: the seed's shape. A monolithic index behind an external
    // RwLock; every search holds the read lock for its whole scan and
    // vacuum() runs stop-the-world under the write lock.
    let (mut blocked, vacuums) = {
        let index = Index::new().with_seal_threshold(usize::MAX);
        index.add_all(&docs);
        let gate = RwLock::new(index);
        let gate = &gate;
        let churn_docs = &docs;
        timed_arm(
            duration,
            |terms, options| gate.read().unwrap().search(terms, options).len(),
            move |stop| {
                let mut i = 0usize;
                let mut vacuums = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let gap_end = Instant::now() + churn_gap;
                    while Instant::now() < gap_end && !stop.load(Ordering::Relaxed) {
                        let d = &churn_docs[i % churn_docs.len()];
                        let index = gate.read().unwrap();
                        index.remove(d.id);
                        index.add(d);
                        i += 1;
                    }
                    // Stop the world: searches queue behind this.
                    gate.write().unwrap().vacuum();
                    vacuums += 1;
                }
                vacuums
            },
            &queries,
        )
    };

    let blocked_p50 = percentile(&mut blocked, 0.50);
    let blocked_p99 = percentile(&mut blocked, 0.99);
    let snapshot_p50 = percentile(&mut snapshot, 0.50);
    let snapshot_p99 = percentile(&mut snapshot, 0.99);
    let ratio = blocked_p99 as f64 / (snapshot_p99 as f64).max(1.0);

    println!(
        "E6 --snapshot: corpus {size}, {}ms per arm, continuous maintenance with {}ms churn gaps\n",
        duration.as_millis(),
        churn_gap.as_millis()
    );
    let mut table = Table::new(&["arm", "queries", "p50 (µs)", "p99 (µs)", "maintenance"]);
    table.row(&[
        "vacuum-blocked (seed shape)".into(),
        blocked.len().to_string(),
        blocked_p50.to_string(),
        blocked_p99.to_string(),
        format!("{vacuums} vacuums"),
    ]);
    table.row(&[
        "snapshot reads (segmented)".into(),
        snapshot.len().to_string(),
        snapshot_p50.to_string(),
        snapshot_p99.to_string(),
        format!("{merges} merges"),
    ]);
    table.print();
    println!("\np99 ratio (blocked / snapshot): {ratio:.2}x");

    let json = format!(
        "{{\n  \"experiment\": \"e6_snapshot\",\n  \"corpus\": {size},\n  \"arm_ms\": {},\n  \"blocked\": {{\"queries\": {}, \"p50_us\": {blocked_p50}, \"p99_us\": {blocked_p99}, \"vacuums\": {vacuums}}},\n  \"snapshot\": {{\"queries\": {}, \"p50_us\": {snapshot_p50}, \"p99_us\": {snapshot_p99}, \"merges\": {merges}}},\n  \"p99_ratio\": {ratio:.4}\n}}\n",
        duration.as_millis(),
        blocked.len(),
        snapshot.len()
    );
    let out_path = std::path::Path::new("results").join("e6_snapshot.json");
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(&out_path, &json)) {
        Ok(()) => println!("wrote snapshot measurements to {}", out_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", out_path.display()),
    }
    println!(
        "\nExpected shape: the blocked arm's p99 absorbs whole vacuum pauses (searches\n\
         queue behind the write lock); snapshot reads never block on maintenance, so\n\
         their p99 stays near p50 while the merger runs."
    );

    if check {
        if vacuums == 0 || merges == 0 {
            eprintln!(
                "E6 --check-snapshot: FAIL — maintenance never ran ({vacuums} vacuums, {merges} merges); nothing was gated"
            );
            return 1;
        }
        if ratio < 1.5 {
            eprintln!(
                "E6 --check-snapshot: FAIL — snapshot p99 {snapshot_p99}µs must beat blocked p99 {blocked_p99}µs by ≥1.5x (got {ratio:.2}x)"
            );
            return 1;
        }
        println!("\nE6 --check-snapshot: PASS ({ratio:.2}x ≥ 1.5x, oracle clean)");
    }
    0
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if std::env::args().any(|a| a == "--snapshot") {
        let check = std::env::args().any(|a| a == "--check-snapshot");
        std::process::exit(run_snapshot(quick, check));
    }
    let sizes: &[usize] = if quick {
        &[500, 1_000]
    } else {
        &[1_000, 5_000, 10_000, 30_000]
    };

    println!("E6: offline index build & incremental updates\n");
    let mut table = Table::new(&[
        "corpus",
        "build (ms)",
        "docs/s",
        "segment (KiB)",
        "terms",
        "postings",
        "incr 100 (ms)",
    ]);
    for &size in sizes {
        let corpus = Corpus::generate(&CorpusConfig {
            target_size: size,
            seed: 61,
            ..CorpusConfig::default()
        });
        let repo = Arc::new(Repository::new());
        for s in &corpus.schemas {
            repo.insert(s.title.clone(), s.summary.clone(), s.schema.clone())
                .unwrap();
        }
        let engine = Arc::new(SchemrEngine::new(repo.clone()));

        let t0 = Instant::now();
        engine.reindex_full();
        let build = t0.elapsed();

        let stats = engine.index_stats();
        // Segment size through the codec.
        let tmp = std::env::temp_dir().join(format!("schemr-e6-{size}.idx"));
        engine.save_index(&tmp).unwrap();
        let bytes = std::fs::metadata(&tmp).map(|m| m.len()).unwrap_or(0);
        let _ = std::fs::remove_file(&tmp);

        // Incremental batch: 100 fresh schemas through the journal.
        let extra = Corpus::generate(&CorpusConfig {
            target_size: 100,
            seed: 62,
            ..CorpusConfig::default()
        });
        for s in &extra.schemas {
            repo.insert(s.title.clone(), s.summary.clone(), s.schema.clone())
                .unwrap();
        }
        let scheduler = IndexScheduler::new(engine.clone());
        let t1 = Instant::now();
        let applied = scheduler.tick();
        let incr = t1.elapsed();
        assert_eq!(applied, 100);

        table.row(&[
            size.to_string(),
            format!("{:.1}", build.as_secs_f64() * 1000.0),
            format!("{:.0}", size as f64 / build.as_secs_f64()),
            format!("{:.0}", bytes as f64 / 1024.0),
            stats.distinct_terms.to_string(),
            stats.postings.to_string(),
            format!("{:.1}", incr.as_secs_f64() * 1000.0),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: build time linear in corpus size (thousands of docs/s);\n\
         incremental batches cost milliseconds regardless of corpus size — why the\n\
         paper's scheduled-interval indexer is viable."
    );
}
