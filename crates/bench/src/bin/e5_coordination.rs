//! **E5 — The coordination factor.**
//!
//! "A coordination factor, defined as the number of terms matched divided
//! by the number of terms in the query, is multiplied into the coarse-grain
//! score in order to reward results which match the most terms in the
//! original query."
//!
//! Part A is a controlled demonstration: documents engineered so that a
//! partial-coverage schema has higher raw TF/IDF mass than a full-coverage
//! one; the coordination factor must flip the order.
//!
//! Part B measures retrieval quality (Phase 1 only) with coordination
//! on/off over multi-term keyword queries.
//!
//! Run with `cargo run --release -p schemr-bench --bin e5_coordination`.

use schemr_bench::{variants, Table, Testbed};
use schemr_corpus::{Corpus, CorpusConfig, Workload, WorkloadConfig};
use schemr_index::{Index, IndexDocument, SearchOptions};
use schemr_model::SchemaId;

fn demo() {
    println!("Part A: controlled demonstration\n");
    let index = Index::new();
    // Doc 1 covers all four query terms once.
    index.add(&IndexDocument {
        id: SchemaId(1),
        title: "full coverage".into(),
        summary: String::new(),
        elements: vec![
            "patient".into(),
            "height".into(),
            "gender".into(),
            "diagnosis".into(),
        ],
        docs: vec![],
    });
    // Doc 2 repeats one rare term many times: higher raw mass, lower
    // coverage.
    index.add(&IndexDocument {
        id: SchemaId(2),
        title: "repeater".into(),
        summary: String::new(),
        elements: (0..12)
            .map(|i| format!("diagnosis_{i}_diagnosis"))
            .collect(),
        docs: vec![],
    });
    let query = ["patient", "height", "gender", "diagnosis"];
    let mut table = Table::new(&["coordination", "rank 1", "rank 2"]);
    for coordination in [true, false] {
        let hits = index.search(
            &query,
            &SearchOptions {
                top_n: 10,
                coordination,
                ..Default::default()
            },
        );
        let name = |i: usize| {
            hits.get(i)
                .map(|h| format!("{} ({:.2})", h.id, h.score))
                .unwrap_or_default()
        };
        table.row(&[coordination.to_string(), name(0), name(1)]);
    }
    table.print();
    println!(
        "\nExpected: s1 (full coverage) ranks first either way — sublinear tf and\n\
         length norms already blunt term-stuffing — but coordination widens the\n\
         margin several-fold, which is what keeps partial-coverage schemas out of\n\
         the top ranks on real multi-term queries (Part B).\n"
    );
}

fn retrieval(quick: bool) {
    println!("Part B: Phase 1 retrieval quality with/without coordination\n");
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: if quick { 500 } else { 3_000 },
        seed: 51,
        ..CorpusConfig::default()
    });
    // Multi-term keyword queries only.
    let workload = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries: if quick { 30 } else { 150 },
            seed: 52,
            keywords: (4, 6),
            kind_mix: (1.0, 0.0, 0.0),
            ..Default::default()
        },
    );
    let mut table = Table::new(&["variant", "P@10", "MRR", "NDCG@10"]);
    for (name, config) in [
        ("coordination on", variants::full()),
        ("coordination off", variants::no_coordination()),
    ] {
        let bed = Testbed::build_with_config(&corpus, config);
        let m = bed.evaluate_with(&workload, 10, |q| bed.run_query_coarse(q, 10));
        table.row(&[
            name.to_string(),
            format!("{:.3}", m.p_at_10),
            format!("{:.3}", m.mrr),
            format!("{:.3}", m.ndcg_at_10),
        ]);
    }
    table.print();
    println!("\nExpected shape: coordination on ≥ off on multi-term queries.");
}

/// Part C: the proximity bonus from stored positions. Compound attribute
/// names (`max_height`) analyze into adjacent tokens; documents carrying
/// the intact compound should outrank documents that merely contain both
/// words in unrelated elements.
fn proximity(quick: bool) {
    println!("\nPart C: proximity bonus (the index's stored positions)\n");
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: if quick { 500 } else { 3_000 },
        seed: 53,
        ..CorpusConfig::default()
    });
    // Compound-heavy keyword queries (exact names, no perturbation — the
    // proximity signal is positional, not lexical).
    let workload = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries: if quick { 30 } else { 150 },
            seed: 54,
            keywords: (3, 5),
            kind_mix: (1.0, 0.0, 0.0),
            perturb: schemr_corpus::PerturbConfig::none(),
        },
    );
    let mut table = Table::new(&["variant", "P@10", "MRR", "NDCG@10"]);
    for (name, weight) in [("proximity 0.25", 0.25), ("proximity off", 0.0)] {
        let bed = Testbed::build_with_config(
            &corpus,
            schemr::EngineConfig {
                proximity_weight: weight,
                ..Default::default()
            },
        );
        let m = bed.evaluate_with(&workload, 10, |q| bed.run_query_coarse(q, 10));
        table.row(&[
            name.to_string(),
            format!("{:.3}", m.p_at_10),
            format!("{:.3}", m.mrr),
            format!("{:.3}", m.ndcg_at_10),
        ]);
    }
    table.print();
    println!("\nExpected shape: the bonus is a mild precision aid — on or slightly above\nthe no-proximity baseline, never below.");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("E5: coordination factor & proximity bonus\n");
    demo();
    retrieval(quick);
    proximity(quick);
}
