//! **E7 — Learned matcher weights vs uniform.**
//!
//! "We combine the scores from each matcher with a weighting scheme, which
//! is initially uniform. As Schemr is utilized in practice, we can record
//! search histories to create a training set … we may then determine an
//! appropriate weighting scheme via a logistic regression."
//!
//! This harness simulates the recorded search history: for each training
//! query, Phase 1 candidates are labeled relevant/irrelevant by the corpus
//! ground truth; per-matcher aggregate similarities become the feature
//! vector. A from-scratch logistic regression fits the weights, which are
//! then evaluated against the uniform scheme on held-out queries.
//!
//! Run with `cargo run --release -p schemr-bench --bin e7_learned_weights`.

use schemr_bench::{Table, Testbed};
use schemr_corpus::{Corpus, CorpusConfig, Workload, WorkloadConfig};
use schemr_match::learner::{TrainingExample, WeightLearner};
use schemr_match::{ContextMatcher, EditDistanceMatcher, Ensemble, NameMatcher, TokenMatcher};

fn wide_ensemble() -> Ensemble {
    let mut e = Ensemble::empty();
    e.push(Box::new(NameMatcher::new()), 1.0);
    e.push(Box::new(ContextMatcher::new()), 1.0);
    e.push(Box::new(TokenMatcher::new()), 1.0);
    e.push(Box::new(EditDistanceMatcher::new()), 1.0);
    e
}

/// Aggregate a matcher matrix into one scalar feature: the mean of the
/// per-element final scores (column maxima) over matched columns.
fn matrix_feature(m: &schemr_match::SimilarityMatrix) -> f64 {
    let scores = m.element_scores();
    let hot: Vec<f64> = scores.iter().copied().filter(|&s| s > 0.0).collect();
    if hot.is_empty() {
        0.0
    } else {
        hot.iter().sum::<f64>() / hot.len() as f64
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: if quick { 500 } else { 3_000 },
        seed: 71,
        ..CorpusConfig::default()
    });
    let train = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries: if quick { 20 } else { 80 },
            seed: 72,
            ..Default::default()
        },
    );
    let test = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries: if quick { 20 } else { 100 },
            seed: 73,
            ..Default::default()
        },
    );
    println!(
        "E7: learned matcher weights over {} schemas ({} training / {} test queries)\n",
        corpus.len(),
        train.len(),
        test.len()
    );

    let bed = Testbed::build(&corpus);
    let ensemble = wide_ensemble();
    let matcher_names = ensemble.matcher_names();

    // Build the simulated search-history training set.
    let mut examples: Vec<TrainingExample> = Vec::new();
    for q in &train.queries {
        let request = Testbed::to_request(q, 10);
        let graph = request.query_graph();
        let terms = graph.terms();
        let relevant: std::collections::HashSet<usize> = q.relevant.iter().copied().collect();
        for hit in bed.engine.extract_candidates(&graph) {
            let Some(ix) = bed.corpus_index(hit.id) else {
                continue;
            };
            let stored = bed
                .engine
                .repository()
                .get(hit.id)
                .expect("indexed schemas exist");
            let features: Vec<f64> = ensemble
                .individual(&terms, &graph, &stored.schema)
                .iter()
                .map(|(_, m)| matrix_feature(m))
                .collect();
            examples.push(TrainingExample {
                features,
                label: relevant.contains(&ix),
            });
        }
    }
    let positives = examples.iter().filter(|e| e.label).count();
    println!(
        "training set: {} (query, candidate) pairs, {} positive\n",
        examples.len(),
        positives
    );

    let model = WeightLearner::default()
        .fit(&examples)
        .expect("training set is non-degenerate");
    let learned = model.ensemble_weights();

    let mut wtable = Table::new(&["matcher", "uniform", "learned"]);
    for (name, w) in matcher_names.iter().zip(&learned) {
        wtable.row(&[name.to_string(), "1.000".to_string(), format!("{w:.3}")]);
    }
    wtable.print();

    // Evaluate uniform vs learned on held-out queries.
    let mut rtable = Table::new(&["weighting", "P@10", "MRR", "NDCG@10"]);
    for (label, weights) in [
        ("uniform", vec![1.0; learned.len()]),
        ("learned", learned.clone()),
    ] {
        let mut e = wide_ensemble();
        e.set_weights(&weights);
        bed.engine.set_ensemble(e);
        let m = bed.evaluate(&test, 10);
        rtable.row(&[
            label.to_string(),
            format!("{:.3}", m.p_at_10),
            format!("{:.3}", m.mrr),
            format!("{:.3}", m.ndcg_at_10),
        ]);
    }
    println!();
    rtable.print();
    println!(
        "\nExpected shape: the learner upweights the informative matchers (name,\n\
         context) relative to the weak exact-token matcher, and learned weights\n\
         match or beat uniform on held-out queries."
    );
}
