//! **F3 — The three-phase dataflow, end to end.**
//!
//! Recreates the paper's running scenario on a mixed-domain corpus: the
//! designer searches for "patient, height, gender, diagnosis" plus a
//! partially designed DDL fragment, and the pipeline returns a ranked
//! table with per-phase timings — Figure 3 as an executable.
//!
//! Run with `cargo run --release -p schemr-bench --bin e2e_pipeline`.

use schemr::SearchRequest;
use schemr_bench::Testbed;
use schemr_corpus::{Corpus, CorpusConfig};
use schemr_repo::import::import_str;
use schemr_viz::format_results;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("F3: three-phase pipeline walk-through\n");

    // A mixed corpus as background noise…
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: if quick { 300 } else { 2_000 },
        seed: 91,
        ..CorpusConfig::default()
    });
    let bed = Testbed::build(&corpus);
    // …plus the clinic schema the scenario's designer should find.
    let clinic_id = import_str(
        bed.engine.repository(),
        "rural_clinic",
        "HIV/AIDS treatment program reference schema",
        "CREATE TABLE patient (id INT, height REAL, gender TEXT, dob DATE);
         CREATE TABLE doctor (id INT, gender TEXT, specialty TEXT);
         CREATE TABLE clinic_case (id INT, diagnosis TEXT,
             patient INT REFERENCES patient(id),
             doctor INT REFERENCES doctor(id))",
    )
    .unwrap();
    bed.engine.reindex_incremental();

    let request = SearchRequest::parse(
        "patient, height, gender, diagnosis",
        &["CREATE TABLE patient (height REAL, gender TEXT)"],
    )
    .unwrap();
    let response = bed.engine.search_detailed(&request).unwrap();

    println!("{}", format_results(&response.results));
    println!(
        "phase 1 (candidate extraction): {:>8.3} ms  ({} candidates)",
        response.timings.candidate_extraction.as_secs_f64() * 1e3,
        response.candidates_evaluated
    );
    println!(
        "phase 2 (schema matching):      {:>8.3} ms",
        response.timings.matching.as_secs_f64() * 1e3
    );
    println!(
        "phase 3 (tightness-of-fit):     {:>8.3} ms",
        response.timings.scoring.as_secs_f64() * 1e3
    );
    println!(
        "total:                          {:>8.3} ms",
        response.timings.total().as_secs_f64() * 1e3
    );

    let top = &response.results[0];
    assert_eq!(top.id, clinic_id, "the clinic schema must rank first");
    println!(
        "\nTop hit is the rural clinic schema (s{}), as the scenario requires.",
        clinic_id.0
    );
}
