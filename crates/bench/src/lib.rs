//! # schemr-bench
//!
//! Shared harness code for the experiment binaries (`src/bin/e*.rs`) and
//! Criterion benches (`benches/`). Each experiment in `DESIGN.md` §4 has a
//! binary that regenerates its table; `EXPERIMENTS.md` records the
//! measured outputs next to the paper's qualitative claims.

use std::collections::HashSet;
use std::sync::Arc;

use schemr::{EngineConfig, SchemrEngine, SearchRequest, TightnessConfig};
use schemr_corpus::{Corpus, GeneratedQuery, RankingMetrics, Workload};
use schemr_match::{ContextMatcher, Ensemble, NameMatcher, TokenMatcher};
use schemr_model::SchemaId;
use schemr_repo::Repository;

/// A corpus loaded into an engine, with the corpus-index ↔ repository-id
/// mapping the ground truth needs.
pub struct Testbed {
    /// The engine, fully indexed.
    pub engine: Arc<SchemrEngine>,
    /// `ids[i]` is the repository id of corpus schema `i`.
    pub ids: Vec<SchemaId>,
}

impl Testbed {
    /// Insert every corpus schema into a fresh repository and index it.
    pub fn build(corpus: &Corpus) -> Testbed {
        Self::build_with_config(corpus, EngineConfig::default())
    }

    /// Same, with an explicit engine config.
    pub fn build_with_config(corpus: &Corpus, config: EngineConfig) -> Testbed {
        let repo = Arc::new(Repository::new());
        let mut ids = Vec::with_capacity(corpus.len());
        for labeled in &corpus.schemas {
            let id = repo
                .insert(
                    labeled.title.clone(),
                    labeled.summary.clone(),
                    labeled.schema.clone(),
                )
                .expect("corpus schemas validate");
            ids.push(id);
        }
        let engine = Arc::new(SchemrEngine::with_config(repo, config));
        engine.reindex_full();
        Testbed { engine, ids }
    }

    /// Translate a repository id back to its corpus index.
    pub fn corpus_index(&self, id: SchemaId) -> Option<usize> {
        self.ids.iter().position(|&x| x == id)
    }

    /// Turn a generated query into a search request.
    pub fn to_request(query: &GeneratedQuery, limit: usize) -> SearchRequest {
        let mut r = SearchRequest {
            keywords: query.keywords.clone(),
            limit: Some(limit),
            ..Default::default()
        };
        if let Some(f) = &query.fragment {
            r.fragments.push(f.clone());
        }
        r
    }

    /// Run one query, returning ranked corpus indices.
    pub fn run_query(&self, query: &GeneratedQuery, limit: usize) -> Vec<usize> {
        let results = self
            .engine
            .search(&Self::to_request(query, limit))
            .expect("workload queries are nonempty");
        results
            .iter()
            .filter_map(|r| self.corpus_index(r.id))
            .collect()
    }

    /// Run one query ranking by the *coarse* Phase 1 score only — the
    /// pure-TF/IDF document-search baseline.
    pub fn run_query_coarse(&self, query: &GeneratedQuery, limit: usize) -> Vec<usize> {
        let graph = Self::to_request(query, limit).query_graph();
        let mut hits = self.engine.extract_candidates(&graph);
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        hits.truncate(limit);
        hits.iter()
            .filter_map(|h| self.corpus_index(h.id))
            .collect()
    }

    /// Evaluate a whole workload with the full pipeline.
    pub fn evaluate(&self, workload: &Workload, limit: usize) -> RankingMetrics {
        self.evaluate_with(workload, limit, |q| self.run_query(q, limit))
    }

    /// Evaluate with a custom ranking function.
    pub fn evaluate_with(
        &self,
        workload: &Workload,
        _limit: usize,
        mut rank: impl FnMut(&GeneratedQuery) -> Vec<usize>,
    ) -> RankingMetrics {
        let runs: Vec<(Vec<usize>, HashSet<usize>)> = workload
            .queries
            .iter()
            .map(|q| (rank(q), q.relevant.iter().copied().collect()))
            .collect();
        RankingMetrics::aggregate(runs.iter().map(|(r, rel)| (r.as_slice(), rel)))
    }
}

/// Named engine-config variants for the ablation experiments.
pub mod variants {
    use super::*;

    /// The full Schemr configuration.
    pub fn full() -> EngineConfig {
        EngineConfig::default()
    }

    /// Tightness-of-fit with structural penalties disabled (Phase 3 still
    /// averages element scores, but structure no longer matters).
    pub fn no_structure() -> EngineConfig {
        EngineConfig {
            tightness: TightnessConfig {
                neighborhood_penalty: 0.0,
                unrelated_penalty: 0.0,
                ..TightnessConfig::default()
            },
            ..EngineConfig::default()
        }
    }

    /// Coordination factor off in Phase 1.
    pub fn no_coordination() -> EngineConfig {
        EngineConfig {
            coordination: false,
            ..EngineConfig::default()
        }
    }

    /// Ensemble with only the n-gram name matcher.
    pub fn name_only_ensemble() -> Ensemble {
        let mut e = Ensemble::empty();
        e.push(Box::new(NameMatcher::new()), 1.0);
        e
    }

    /// Ensemble with only the exact-token matcher (the E3 baseline).
    pub fn token_only_ensemble() -> Ensemble {
        let mut e = Ensemble::empty();
        e.push(Box::new(TokenMatcher::new()), 1.0);
        e
    }

    /// The standard name + context ensemble.
    pub fn standard_ensemble() -> Ensemble {
        let mut e = Ensemble::empty();
        e.push(Box::new(NameMatcher::new()), 1.0);
        e.push(Box::new(ContextMatcher::new()), 1.0);
        e
    }

    /// Standard ensemble plus the similarity-flooding structural matcher.
    pub fn flooding_ensemble() -> Ensemble {
        let mut e = standard_ensemble();
        e.push(Box::new(schemr_match::FloodingMatcher::new()), 0.5);
        e
    }
}

/// Fixed-width table printer for experiment reports.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells.to_vec());
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_corpus::{CorpusConfig, WorkloadConfig};

    #[test]
    fn testbed_maps_corpus_indices_to_repo_ids() {
        let corpus = Corpus::generate(&CorpusConfig::small(1));
        let bed = Testbed::build(&corpus);
        assert_eq!(bed.ids.len(), corpus.len());
        for (i, &id) in bed.ids.iter().enumerate() {
            assert_eq!(bed.corpus_index(id), Some(i));
        }
        assert!(bed.engine.index_stats().live_docs == corpus.len());
    }

    #[test]
    fn full_pipeline_beats_random_on_the_small_corpus() {
        let corpus = Corpus::generate(&CorpusConfig::small(2));
        let bed = Testbed::build(&corpus);
        let workload = Workload::generate(
            &corpus,
            &WorkloadConfig {
                queries: 20,
                ..Default::default()
            },
        );
        let metrics = bed.evaluate(&workload, 10);
        assert_eq!(metrics.queries, 20);
        // Families are ≤6 of 100 schemas; random MRR would be ≈0.1. The
        // engine should be far above that.
        assert!(metrics.mrr > 0.5, "MRR = {}", metrics.mrr);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
