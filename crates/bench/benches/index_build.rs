//! Offline-indexer bench (experiment E6): full index build, incremental
//! updates, and codec round-trip throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use schemr_corpus::{Corpus, CorpusConfig};
use schemr_index::{codec, Index, IndexDocument};
use schemr_model::SchemaId;
use std::hint::black_box;

fn documents(size: usize, seed: u64) -> Vec<IndexDocument> {
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: size,
        seed,
        ..CorpusConfig::default()
    });
    corpus
        .schemas
        .iter()
        .enumerate()
        .map(|(i, s)| {
            IndexDocument::from_schema(SchemaId(i as u64), &s.title, &s.summary, &s.schema)
        })
        .collect()
}

fn bench_index_build(c: &mut Criterion) {
    let docs = documents(1_000, 3);
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("build_1k_docs", |b| {
        b.iter(|| {
            let index = Index::new();
            index.add_all(&docs);
            black_box(index.stats())
        })
    });

    let built = Index::new();
    built.add_all(&docs);
    group.bench_function("codec_encode_1k", |b| {
        b.iter(|| black_box(codec::encode(&built)))
    });
    let bytes = codec::encode(&built);
    group.bench_function("codec_decode_1k", |b| {
        b.iter(|| black_box(codec::decode(&bytes).unwrap().stats()))
    });
    group.bench_function("incremental_add_one", |b| {
        let extra = documents(32, 99);
        let mut i = 0usize;
        b.iter(|| {
            // Re-adding replaces: steady-state single-document update.
            built.add(&extra[i % extra.len()]);
            i += 1;
        })
    });
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
