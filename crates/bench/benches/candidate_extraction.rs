//! Phase 1 bench (experiment E1): candidate-extraction latency vs corpus
//! size — the paper's "fast and scalable filter" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schemr_bench::Testbed;
use schemr_corpus::{Corpus, CorpusConfig, Workload, WorkloadConfig};
use std::hint::black_box;

fn bench_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_extraction");
    group.sample_size(20);
    for &size in &[500usize, 2_000, 8_000] {
        let corpus = Corpus::generate(&CorpusConfig {
            target_size: size,
            ..CorpusConfig::default()
        });
        let bed = Testbed::build(&corpus);
        let workload = Workload::generate(
            &corpus,
            &WorkloadConfig {
                queries: 16,
                ..Default::default()
            },
        );
        let graphs: Vec<_> = workload
            .queries
            .iter()
            .map(|q| Testbed::to_request(q, 10).query_graph())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let mut qi = 0usize;
            b.iter(|| {
                let g = &graphs[qi % graphs.len()];
                qi += 1;
                black_box(bed.engine.extract_candidates(g))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidates);
criterion_main!(benches);
