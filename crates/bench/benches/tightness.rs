//! Phase 3 bench (experiment E4 support): tightness-of-fit cost as
//! candidate schemas grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schemr::{tightness::tightness_of_fit, TightnessConfig};
use schemr_match::SimilarityMatrix;
use schemr_model::{DataType, Element, ForeignKey, Schema};
use std::hint::black_box;

/// A chain of `n` entities with 5 attributes each, FK-linked in sequence.
fn chain_schema(n: usize) -> Schema {
    let mut s = Schema::new("chain");
    let mut prev = None;
    for i in 0..n {
        let e = s.add_root(Element::entity(format!("entity{i}")));
        let mut first_attr = None;
        for j in 0..5 {
            let a = s.add_child(
                e,
                Element::attribute(format!("attr{i}_{j}"), DataType::Text),
            );
            first_attr.get_or_insert(a);
        }
        if let Some(p) = prev {
            s.add_foreign_key(ForeignKey {
                from_entity: e,
                from_attrs: vec![first_attr.expect("attrs added")],
                to_entity: p,
                to_attrs: vec![],
            });
        }
        prev = Some(e);
    }
    s
}

fn bench_tightness(c: &mut Criterion) {
    let mut group = c.benchmark_group("tightness");
    for &n in &[4usize, 16, 64] {
        let schema = chain_schema(n);
        // Half the attributes matched at varying strength.
        let mut m = SimilarityMatrix::zeros(8, schema.len());
        for (i, col) in (0..schema.len()).step_by(2).enumerate() {
            m.set(i % 8, col, 0.4 + 0.1 * ((col % 6) as f64 / 6.0));
        }
        let config = TightnessConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(tightness_of_fit(&schema, &m, &config)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tightness);
criterion_main!(benches);
