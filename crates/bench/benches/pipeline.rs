//! End-to-end pipeline bench (Figure 3 / experiment F3): full three-phase
//! search latency on a 1,000-schema corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use schemr_bench::Testbed;
use schemr_corpus::{Corpus, CorpusConfig, Workload, WorkloadConfig};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: 1_000,
        ..CorpusConfig::default()
    });
    let bed = Testbed::build(&corpus);
    let workload = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries: 32,
            ..Default::default()
        },
    );

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.bench_function("search_1k_corpus", |b| {
        let mut qi = 0usize;
        b.iter(|| {
            let q = &workload.queries[qi % workload.queries.len()];
            qi += 1;
            black_box(bed.run_query(q, 10))
        });
    });
    group.bench_function("search_detailed_1k_corpus", |b| {
        let q = &workload.queries[0];
        let request = Testbed::to_request(q, 10);
        b.iter(|| black_box(bed.engine.search_detailed(&request).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
