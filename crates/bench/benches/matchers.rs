//! Phase 2 bench (supports E3): individual matcher and ensemble
//! throughput on realistic name pairs and candidate schemas.

use criterion::{criterion_group, criterion_main, Criterion};
use schemr_bench::variants;
use schemr_match::{EditDistanceMatcher, NameMatcher, TokenMatcher};
use schemr_model::{DataType, QueryGraph, SchemaBuilder};
use std::hint::black_box;

const PAIRS: &[(&str, &str)] = &[
    ("patient_height", "PatientHeight"),
    ("pat_ht", "patient height"),
    ("diagnosis", "diagnoses"),
    ("customer_address", "cust_addr"),
    ("species_abundance", "abundance of species"),
    ("unrelated_thing", "totally_different"),
];

fn bench_scalar_matchers(c: &mut Criterion) {
    let name = NameMatcher::new();
    let token = TokenMatcher::new();
    let edit = EditDistanceMatcher::new();
    let mut group = c.benchmark_group("scalar_matchers");
    group.bench_function("name_ngram", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(name.similarity(x, y));
            }
        })
    });
    group.bench_function("token_exact", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(token.similarity(x, y));
            }
        })
    });
    group.bench_function("edit_distance", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(edit.similarity(x, y));
            }
        })
    });
    group.finish();
}

fn bench_ensemble(c: &mut Criterion) {
    let mut q = QueryGraph::new();
    q.add_fragment(
        SchemaBuilder::new("frag")
            .entity("patient", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
                    .attr("diagnosis", DataType::Text)
            })
            .build_unchecked(),
    );
    q.add_keyword("medication");
    let terms = q.terms();
    let candidate = SchemaBuilder::new("cand")
        .entity("person", |e| {
            e.attr("stature", DataType::Real)
                .attr("sex", DataType::Text)
                .attr("condition", DataType::Text)
                .attr("dob", DataType::Date)
        })
        .entity("visit", |e| {
            e.attr("date", DataType::Date)
                .attr("prescription", DataType::Text)
        })
        .build_unchecked();

    let ensemble = variants::standard_ensemble();
    c.bench_function("ensemble_combined_matrix", |b| {
        b.iter(|| black_box(ensemble.combined(&terms, &q, &candidate)))
    });
    let flooding = variants::flooding_ensemble();
    c.bench_function("ensemble_with_flooding", |b| {
        b.iter(|| black_box(flooding.combined(&terms, &q, &candidate)))
    });
}

criterion_group!(benches, bench_scalar_matchers, bench_ensemble);
criterion_main!(benches);
