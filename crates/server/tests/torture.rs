//! Serving-path torture tests: hostile and saturating clients against a
//! real listening server — slowloris, oversized requests, keep-alive
//! reuse, queue-full shedding, and drain-under-load.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use schemr::SchemrEngine;
use schemr_repo::{import::import_str, Repository};
use schemr_server::{HttpLimits, SchemrServer, ServerConfig};

fn engine() -> Arc<SchemrEngine> {
    let repo = Arc::new(Repository::new());
    import_str(
        &repo,
        "clinic",
        "rural health clinic",
        "CREATE TABLE patient (id INT, height REAL, gender TEXT, diagnosis TEXT)",
    )
    .unwrap();
    let engine = Arc::new(SchemrEngine::new(repo));
    engine.reindex_full();
    engine
}

/// Read exactly one HTTP response off the stream — headers to the blank
/// line, then `Content-Length` body bytes — leaving the connection
/// usable for the next response. Returns (status, head, body).
fn read_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => head.push(byte[0]),
            Err(e) => panic!("reading response head: {e} (head so far: {head:?})"),
        }
    }
    let head = String::from_utf8_lossy(&head).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {head:?}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(|v| v.trim().parse().unwrap())
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).unwrap();
    (status, head, String::from_utf8(body).unwrap())
}

/// One-shot request on its own connection.
fn one_shot(addr: std::net::SocketAddr, target: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    read_response(&mut stream)
}

#[test]
fn slowloris_partial_request_line_gets_408() {
    let server = SchemrServer::start(
        engine(),
        ServerConfig {
            read_timeout: Some(Duration::from_millis(200)),
            ..Default::default()
        },
    )
    .unwrap();
    // A few bytes of request line, then silence: the read timeout must
    // classify this as a stalled request (408), not an idle connection.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"GET /sea").unwrap();
    let (status, head, _) = read_response(&mut stream);
    assert_eq!(status, 408, "{head}");
    assert!(head.contains("Connection: close\r\n"), "{head}");
    assert!(server.shutdown());
}

#[test]
fn oversized_request_line_is_rejected_with_400() {
    let server = SchemrServer::start(
        engine(),
        ServerConfig {
            http_limits: HttpLimits {
                max_request_line_bytes: 128,
                ..HttpLimits::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let (status, head, body) = one_shot(server.addr(), &format!("/{}", "a".repeat(4096)));
    assert_eq!(status, 400, "{head}");
    assert!(body.contains("request line"), "{body}");
    assert!(server.shutdown());
}

#[test]
fn oversized_headers_are_rejected_with_431() {
    let server = SchemrServer::start(
        engine(),
        ServerConfig {
            http_limits: HttpLimits {
                max_header_bytes: 256,
                max_header_count: 8,
                max_total_header_bytes: 1024,
                ..HttpLimits::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // One oversized header line.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "GET /healthz HTTP/1.1\r\nX-Big: {}\r\n\r\n",
                "v".repeat(2048)
            )
            .as_bytes(),
        )
        .unwrap();
    let (status, head, _) = read_response(&mut stream);
    assert_eq!(status, 431, "{head}");

    // Too many headers.
    let mut stream = TcpStream::connect(addr).unwrap();
    let many: String = (0..32).map(|i| format!("X-{i}: v\r\n")).collect();
    stream
        .write_all(format!("GET /healthz HTTP/1.1\r\n{many}\r\n").as_bytes())
        .unwrap();
    let (status, head, _) = read_response(&mut stream);
    assert_eq!(status, 431, "{head}");

    // Both rejections are visible in the request metrics.
    let (_, _, metrics) = one_shot(addr, "/metrics");
    assert!(
        metrics.contains("schemr_http_requests_total{route=\"malformed\",status=\"431\"} 2"),
        "{metrics}"
    );
    assert!(server.shutdown());
}

#[test]
fn keep_alive_reuses_one_connection_for_sequential_requests() {
    let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Three requests through one socket; each response must advertise
    // keep-alive and the next request must be answered on the same
    // connection.
    for i in 0..3 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (status, head, body) = read_response(&mut stream);
        assert_eq!(status, 200, "request {i}: {head}");
        assert!(head.contains("Connection: keep-alive\r\n"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
    }
    // The reuse counter saw requests 2 and 3.
    let (_, _, metrics) = one_shot(addr, "/metrics");
    assert!(
        metrics.contains("schemr_http_keepalive_reuse_total 2"),
        "{metrics}"
    );
    assert!(server.shutdown());
}

#[test]
fn keepalive_budget_closes_the_connection_on_the_last_request() {
    let server = SchemrServer::start(
        engine(),
        ServerConfig {
            keepalive_requests: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (_, head, _) = read_response(&mut stream);
    assert!(head.contains("Connection: keep-alive\r\n"), "{head}");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (status, head, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert!(
        head.contains("Connection: close\r\n"),
        "budget exhausted must close: {head}"
    );
    // The server closes after the budgeted request.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "{rest:?}");
    assert!(server.shutdown());
}

#[test]
fn saturated_queue_sheds_with_503_and_retry_after() {
    let server = SchemrServer::start(
        engine(),
        ServerConfig {
            workers: 1,
            max_queue: 1,
            read_timeout: Some(Duration::from_secs(3)),
            retry_after_secs: 7,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Pin the only worker: a connection with a half-sent request.
    let mut pin = TcpStream::connect(addr).unwrap();
    pin.write_all(b"GET /healthz HTTP/1.1\r\nHost: t").unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // Fill the one queue slot.
    let mut queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // Saturated: the next connection must be shed immediately with
    // 503 + Retry-After, not queued without bound.
    let mut extra = TcpStream::connect(addr).unwrap();
    let (status, head, _) = read_response(&mut extra);
    assert_eq!(status, 503, "{head}");
    assert!(head.contains("Retry-After: 7\r\n"), "{head}");

    // Release the worker; the pinned and the queued connection both
    // complete normally.
    pin.write_all(b"\r\nConnection: close\r\n\r\n").unwrap();
    let (status, _, _) = read_response(&mut pin);
    assert_eq!(status, 200);
    queued
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_response(&mut queued);
    assert_eq!(status, 200);

    let (_, _, metrics) = one_shot(addr, "/metrics");
    assert!(metrics.contains("schemr_http_shed_total 1"), "{metrics}");
    assert!(
        metrics.contains("schemr_http_requests_total{route=\"shed\",status=\"503\"} 1"),
        "{metrics}"
    );
    // Queue accounting: every admitted connection was dequeued by now
    // except the metrics one we are still holding... which is also done,
    // so enqueued == dequeued is not asserted exactly; the histogram
    // must have observations though.
    assert!(
        metrics.contains("schemr_http_queue_wait_seconds_count"),
        "{metrics}"
    );
    assert!(server.shutdown());
}

#[test]
fn shed_connections_are_accounted_in_queue_wait_and_traced() {
    // Regression: shed (503) connections used to vanish from the
    // observability plane — no queue-wait observation, no trace, no
    // event-log record. A shed request must now show up in the
    // queue-wait histogram and leave a `<shed>` trace behind.
    let server = SchemrServer::start(
        engine(),
        ServerConfig {
            workers: 1,
            max_queue: 1,
            read_timeout: Some(Duration::from_secs(3)),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Pin the only worker, fill the one queue slot, then overflow.
    let mut pin = TcpStream::connect(addr).unwrap();
    pin.write_all(b"GET /healthz HTTP/1.1\r\nHost: t").unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let mut queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let mut extra = TcpStream::connect(addr).unwrap();
    let (status, _, _) = read_response(&mut extra);
    assert_eq!(status, 503);

    // Release the worker and let the queued connection finish.
    pin.write_all(b"\r\nConnection: close\r\n\r\n").unwrap();
    read_response(&mut pin);
    queued
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    read_response(&mut queued);

    // The shed connection left a trace: a root span named `shed` with
    // the time it spent waiting before rejection.
    let (status, _, traces) = one_shot(addr, "/debug/traces");
    assert_eq!(status, 200);
    assert!(traces.contains("\"query\":\"<shed>\""), "{traces}");

    // And it was counted in the queue-wait histogram: every observation
    // is either a dequeued connection or a shed one.
    let (_, _, metrics) = one_shot(addr, "/metrics");
    let scrape = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no sample for {name}: {metrics}"))
    };
    let shed = scrape("schemr_http_shed_total");
    let dequeued = scrape("schemr_http_queue_dequeued_total");
    let observed = scrape("schemr_http_queue_wait_seconds_count");
    assert_eq!(shed, 1, "{metrics}");
    assert_eq!(
        observed,
        dequeued + shed,
        "shed connections must observe queue wait: {metrics}"
    );
    assert!(server.shutdown());
}

#[test]
fn drain_completes_in_flight_requests_and_refuses_new_connections() {
    let server = SchemrServer::start(
        engine(),
        ServerConfig {
            workers: 2,
            read_timeout: Some(Duration::from_secs(3)),
            drain_deadline: Duration::from_secs(5),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // An established keep-alive session...
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (status, head, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: keep-alive\r\n"), "{head}");

    // ...with a request half-sent (in flight) as the drain begins.
    stream
        .write_all(b"GET /search?q=patient HTTP/1.1\r\nHost: t")
        .unwrap();
    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(200));

    // The in-flight request completes — answered with
    // `Connection: close` because the server is draining.
    stream.write_all(b"\r\n\r\n").unwrap();
    let (status, head, body) = read_response(&mut stream);
    assert_eq!(status, 200, "{head}");
    assert!(
        head.contains("Connection: close\r\n"),
        "drain must demote keep-alive: {head}"
    );
    assert!(body.contains("<results"), "{body}");

    // The drain finished inside the deadline...
    assert!(shutdown.join().unwrap(), "drain must complete cleanly");

    // ...and the listener is gone: new connections are refused (or get
    // nothing served if the OS briefly accepts them).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut conn) => {
            let _ = conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut buf = Vec::new();
            let _ = conn.read_to_end(&mut buf);
            assert!(buf.is_empty(), "post-drain connection must not be served");
        }
    }
}

#[test]
fn drain_wakes_parked_keepalive_connections_immediately() {
    // Regression for the idle-wait rework: the between-requests wait is
    // now one blocking read with the OS socket timeout set to the whole
    // remaining idle budget (no 25ms poll slices), so a drain must
    // actively wake parked connections — otherwise shutdown would sit
    // out the idle budget (60s here) or bust the drain deadline.
    let server = SchemrServer::start(
        engine(),
        ServerConfig {
            idle_timeout: Some(Duration::from_secs(60)),
            drain_deadline: Duration::from_secs(10),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Park a keep-alive session between requests.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (status, head, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: keep-alive\r\n"), "{head}");
    // Give the worker time to re-park in its blocking wait.
    std::thread::sleep(Duration::from_millis(100));

    let start = std::time::Instant::now();
    assert!(server.shutdown(), "drain must complete cleanly");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "drain must wake parked connections, took {:?}",
        start.elapsed()
    );
    // The parked session was closed silently — no 408, no garbage.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "woken idle close must be silent: {rest:?}");
}

#[test]
fn idle_budget_resets_between_keepalive_requests() {
    // The idle budget is per gap, not per connection: a session that
    // keeps sending requests inside the budget stays alive even after
    // the cumulative idle time passes the timeout, and the eventual
    // close (one blocking read later) is still silent.
    let server = SchemrServer::start(
        engine(),
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(400)),
            ..Default::default()
        },
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // 3 × 250ms of idling = 750ms total, each gap inside the 400ms
    // budget — every request must still be answered.
    for i in 0..3 {
        std::thread::sleep(Duration::from_millis(250));
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (status, head, _) = read_response(&mut stream);
        assert_eq!(status, 200, "request {i}: {head}");
        assert!(head.contains("Connection: keep-alive\r\n"), "{head}");
    }
    // Now exceed one gap's budget: silent close, never a 408 (a 408 is
    // reserved for stalls *inside* a request).
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "idle close must be silent: {rest:?}");
    assert!(server.shutdown());
}

#[test]
fn idle_keepalive_connections_are_closed_and_do_not_block_drain() {
    let server = SchemrServer::start(
        engine(),
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            drain_deadline: Duration::from_secs(2),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    // Session goes idle after one request: the server closes it at the
    // idle timeout with no response bytes (there is no request to
    // answer).
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "idle close must be silent: {rest:?}");

    // A fresh idle connection must not hold the drain past its deadline.
    let _idle = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let start = std::time::Instant::now();
    assert!(server.shutdown(), "idle connections must not block drain");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "drain took {:?}",
        start.elapsed()
    );
}
