//! The search service: routing, admission control, worker pool,
//! lifecycle.
//!
//! The connection path is production-shaped: the accept loop feeds a
//! *bounded* pending-connection queue and sheds load with
//! `503 + Retry-After` when it is full (saturation surfaces as fast
//! rejections, never as an unbounded backlog); workers serve HTTP/1.1
//! keep-alive connections under a per-connection request budget and
//! idle timeout; parsing is bounded by [`HttpLimits`]; and
//! [`SchemrServer::shutdown`] drains in-flight requests within a
//! configurable deadline, answering keep-alive clients with
//! `Connection: close` while draining.

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use schemr::{parse_keywords, SchemrEngine, SearchRequest};
use schemr_model::SchemaId;
use schemr_obs::{
    Counter, Histogram, LedgerProbe, MetricsRegistry, SearchOutcome, SloConfig, SloTracker,
    LATENCY_BUCKETS,
};
use schemr_viz::{radial_layout, to_graphml, tree_layout, GraphmlOptions, SvgOptions};

use crate::http::{read_request, HttpLimits, Request, Response};
use crate::xml_response::search_response_to_xml;

/// Connections currently parked between keep-alive requests, indexed so
/// a drain can wake their blocking reads with `shutdown(Read)` instead of
/// waiting out their idle budgets. Each parked worker blocks in a single
/// `recv` with the OS socket timeout set to its remaining idle budget —
/// one syscall per wait, instead of the seed's 25ms poll loop that burned
/// a wakeup per slice per idle connection (400k wakeups/s at the 10k
/// connection target).
#[derive(Default)]
struct ParkedConnections {
    streams: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ParkedConnections {
    /// Register a connection about to park. The returned ticket
    /// deregisters on drop; `None` (fd exhaustion on `try_clone`) parks
    /// unregistered — such a wait still honors its idle budget, it just
    /// cannot be woken early by a drain.
    fn park(&self, stream: &TcpStream) -> Option<ParkTicket<'_>> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.streams.lock().insert(id, clone);
        Some(ParkTicket { registry: self, id })
    }

    /// Wake every parked wait by shutting down the read side of its
    /// socket: the blocking `recv` returns EOF and the worker closes the
    /// connection — exactly what a drain wants from an idle session.
    fn wake_all(&self) {
        for stream in self.streams.lock().values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

/// RAII deregistration for [`ParkedConnections::park`].
struct ParkTicket<'a> {
    registry: &'a ParkedConnections,
    id: u64,
}

impl Drop for ParkTicket<'_> {
    fn drop(&mut self) {
        self.registry.streams.lock().remove(&self.id);
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub bind: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Socket read timeout — a client that stalls mid-request gets a 408
    /// instead of parking a worker forever. `None` disables the timeout.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout for the response. `None` disables it.
    pub write_timeout: Option<Duration>,
    /// Hard caps on request parsing (request line, headers, body).
    pub http_limits: HttpLimits,
    /// How long a keep-alive connection may sit between requests before
    /// the server closes it. `None` keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
    /// Requests served per connection before the server closes it
    /// (`Connection: close` on the last one). Bounds how long one client
    /// can monopolize a worker; minimum effective value is 1.
    pub keepalive_requests: usize,
    /// Capacity of the pending-connection queue between the accept loop
    /// and the workers. When full, new connections are shed with
    /// `503 + Retry-After` instead of queueing without bound; minimum
    /// effective value is 1.
    pub max_queue: usize,
    /// How long [`SchemrServer::shutdown`] waits for in-flight requests
    /// before giving up on stragglers.
    pub drain_deadline: Duration,
    /// The `Retry-After` value (seconds) on shed responses.
    pub retry_after_secs: u32,
    /// Service-level objectives for the burn-rate tracker
    /// (`GET /debug/slo`; folds into `/healthz` as `degraded`).
    pub slo: SloConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:0".to_string(),
            workers: 4,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            http_limits: HttpLimits::default(),
            idle_timeout: Some(Duration::from_secs(10)),
            keepalive_requests: 64,
            max_queue: 128,
            drain_deadline: Duration::from_secs(5),
            retry_after_secs: 1,
            slo: SloConfig::default(),
        }
    }
}

/// A connection admitted to the pending queue, stamped so the dequeuing
/// worker can record how long it waited.
struct Pending {
    stream: TcpStream,
    enqueued: Instant,
}

/// Pre-registered handles for the serving-path metric families, shared
/// by the accept loop and the workers.
struct HttpMetrics {
    /// Connections rejected with `503 + Retry-After` because the pending
    /// queue was full.
    shed: Arc<Counter>,
    /// Connections admitted to the pending queue. Queue depth is
    /// `enqueued - dequeued - shed-free`: the registry is
    /// counters-and-histograms only, so depth is expressed as a counter
    /// pair instead of a gauge.
    queue_enqueued: Arc<Counter>,
    /// Connections taken off the queue by a worker.
    queue_dequeued: Arc<Counter>,
    /// Requests served on an already-used connection (the second and
    /// later requests of each keep-alive session).
    keepalive_reuse: Arc<Counter>,
    /// Time connections spent waiting in the pending queue.
    queue_wait: Arc<Histogram>,
}

impl HttpMetrics {
    fn register(registry: &MetricsRegistry) -> HttpMetrics {
        HttpMetrics {
            shed: registry.counter(
                "schemr_http_shed_total",
                "Connections rejected with 503 because the pending queue was full.",
            ),
            queue_enqueued: registry.counter(
                "schemr_http_queue_enqueued_total",
                "Connections admitted to the pending queue.",
            ),
            queue_dequeued: registry.counter(
                "schemr_http_queue_dequeued_total",
                "Connections dequeued by a worker.",
            ),
            keepalive_reuse: registry.counter(
                "schemr_http_keepalive_reuse_total",
                "Requests served on a reused keep-alive connection.",
            ),
            queue_wait: registry.histogram(
                "schemr_http_queue_wait_seconds",
                "Time connections waited in the pending queue.",
                LATENCY_BUCKETS,
            ),
        }
    }
}

/// A running Schemr search service.
pub struct SchemrServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Each worker sends one `()` here when it exits; drain counts them
    /// against the deadline instead of `join`ing (which has no timeout).
    worker_done: mpsc::Receiver<()>,
    /// Idle keep-alive connections parked in a blocking read; a drain
    /// wakes them instead of waiting out their idle budgets.
    parked: Arc<ParkedConnections>,
    drain_deadline: Duration,
}

impl SchemrServer {
    /// Bind and start serving in background threads.
    pub fn start(engine: Arc<SchemrEngine>, config: ServerConfig) -> std::io::Result<SchemrServer> {
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(HttpMetrics::register(engine.metrics_registry()));
        let slo = Arc::new(SloTracker::new(config.slo));
        let (tx, rx): (Sender<Pending>, Receiver<Pending>) = bounded(config.max_queue.max(1));
        let (done_tx, worker_done) = mpsc::channel();
        let parked = Arc::new(ParkedConnections::default());

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers.max(1) {
            let rx = rx.clone();
            let engine = engine.clone();
            let metrics = metrics.clone();
            let stop = stop.clone();
            let config = config.clone();
            let done_tx = done_tx.clone();
            let slo = slo.clone();
            let parked = parked.clone();
            workers.push(std::thread::spawn(move || {
                while let Ok(pending) = rx.recv() {
                    metrics.queue_dequeued.inc();
                    let queue_wait = pending.enqueued.elapsed();
                    metrics.queue_wait.observe_duration(queue_wait);
                    serve_connection(
                        pending.stream,
                        queue_wait,
                        &engine,
                        &metrics,
                        &config,
                        &stop,
                        &slo,
                        &parked,
                    );
                }
                let _ = done_tx.send(());
            }));
        }
        drop(done_tx);

        let stop2 = stop.clone();
        let engine2 = engine.clone();
        let metrics2 = metrics.clone();
        let slo2 = slo.clone();
        let retry_after = config.retry_after_secs;
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                match tx.try_send(Pending {
                    stream,
                    enqueued: Instant::now(),
                }) {
                    Ok(()) => metrics2.queue_enqueued.inc(),
                    Err(TrySendError::Full(pending)) => {
                        shed(pending, retry_after, &engine2, &metrics2, &slo2)
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            // Dropping tx closes the queue: workers finish what was
            // admitted, then exit.
        });

        Ok(SchemrServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            workers,
            worker_done,
            parked,
            drain_deadline: config.drain_deadline,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Graceful drain: stop accepting, let admitted connections finish
    /// their in-flight requests (keep-alive clients get
    /// `Connection: close`), and wait up to the configured drain
    /// deadline. Returns `true` when every worker exited within the
    /// deadline; on `false`, stragglers are left to finish detached.
    pub fn shutdown(mut self) -> bool {
        self.stop_threads()
    }

    fn stop_threads(&mut self) -> bool {
        self.stop.store(true, Ordering::Relaxed);
        // Wake idle keep-alive connections out of their blocking reads —
        // in-flight requests are untouched and finish normally.
        self.parked.wake_all();
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept thread dropped the queue sender, so each worker
        // exits once its current connection is done. Count exits against
        // the deadline; `join` alone has no timeout.
        let deadline = Instant::now() + self.drain_deadline;
        let mut remaining = self.workers.len();
        while remaining > 0 {
            let now = Instant::now();
            let Some(budget) = deadline
                .checked_duration_since(now)
                .filter(|b| !b.is_zero())
            else {
                break;
            };
            match self.worker_done.recv_timeout(budget) {
                Ok(()) => remaining -= 1,
                Err(_) => break,
            }
        }
        if remaining == 0 {
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
            true
        } else {
            // Stragglers hold connections past the deadline; dropping
            // their handles detaches them rather than blocking shutdown.
            self.workers.clear();
            false
        }
    }
}

impl Drop for SchemrServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_threads();
        }
    }
}

/// Reject a connection the queue has no room for: `503 + Retry-After`,
/// written from the accept thread under a short write timeout so a slow
/// peer cannot stall accepting.
fn shed(
    pending: Pending,
    retry_after_secs: u32,
    engine: &SchemrEngine,
    m: &HttpMetrics,
    slo: &SloTracker,
) {
    m.shed.inc();
    // Shed connections spend time in admission too (between accept and
    // the failed try_send); without this observation the queue-wait
    // histogram only ever sees the requests that made it through, which
    // understates waiting exactly when the queue is full.
    let queue_wait = pending.enqueued.elapsed();
    m.queue_wait.observe_duration(queue_wait);
    trace_rejection(engine, "shed", Some(queue_wait));
    let started = Instant::now();
    let response = Response::overloaded(retry_after_secs);
    record_request(engine.metrics_registry(), "shed", &response, started, slo);
    let mut stream = pending.stream;
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = response.write_to(&mut stream);
}

/// Give a rejected request a trace of its own: a root span named after
/// the rejection (`shed`, `timeout`) carrying the queue wait, finished
/// straight into the trace ring and event log. Without this, rejected
/// work is invisible exactly where one looks when clients report errors.
fn trace_rejection(engine: &SchemrEngine, kind: &str, queue_wait: Option<Duration>) {
    let Some(ctx) = engine.tracer().begin(None) else {
        return;
    };
    let probe = LedgerProbe::start();
    {
        let root = ctx.root_span(kind);
        if let Some(wait) = queue_wait {
            root.annotate("queue_wait_us", wait.as_micros());
        }
    }
    engine.tracer().finish(
        ctx,
        SearchOutcome {
            query: format!("<{kind}>"),
            ledger: probe.delta(),
            ..Default::default()
        },
    );
}

/// What the between-requests wait ended with.
enum Wake {
    /// Request bytes are waiting in the buffer.
    Bytes,
    /// Close the connection without an answer: clean EOF, idle past the
    /// deadline, a drain with nothing in flight, or a socket error.
    Close,
}

/// Park until the next request's first byte arrives, without consuming
/// it. The wait is one blocking `recv` with the OS socket timeout set to
/// the remaining idle budget — a timeout (or EOF) closes silently, bytes
/// hand off to the request reader. A drain wakes the blocked read by
/// shutting down the socket's read side (see [`ParkedConnections`]), so
/// parked workers notice shutdown immediately without ever polling.
fn wait_for_request(
    reader: &mut BufReader<TcpStream>,
    idle_timeout: Option<Duration>,
    stop: &AtomicBool,
    parked: &ParkedConnections,
) -> Wake {
    let deadline = idle_timeout.map(|d| Instant::now() + d);
    // Register for the drain wake *before* checking the stop flag: a
    // drain sets the flag and then walks the registry, so every park
    // either sees the flag here or is woken by the walk — never missed.
    let _ticket = parked.park(reader.get_ref());
    if stop.load(Ordering::Relaxed) {
        return Wake::Close;
    }
    loop {
        let budget = match deadline {
            Some(d) => match d
                .checked_duration_since(Instant::now())
                .filter(|b| !b.is_zero())
            {
                Some(b) => Some(b),
                None => return Wake::Close, // idle budget exhausted
            },
            None => None, // no idle timeout: block until bytes, EOF, or drain wake
        };
        if reader.get_ref().set_read_timeout(budget).is_err() {
            return Wake::Close;
        }
        match reader.fill_buf() {
            // Checked before everything else: bytes already sent during a
            // drain still get served (with `Connection: close`).
            Ok(buf) if !buf.is_empty() => return Wake::Bytes,
            // Clean EOF — also how a drain wake surfaces.
            Ok(_) => return Wake::Close,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Timed out while parked: the whole idle budget elapsed
            // before the first byte — close without a 408. A stall
            // *inside* a request is the request reader's business and
            // still answers 408 under `read_timeout`.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Wake::Close;
            }
            Err(_) => return Wake::Close,
        }
    }
}

/// Serve one connection: up to `keepalive_requests` requests through a
/// single buffered reader (pipelined bytes survive between requests),
/// closing on client request, budget exhaustion, parse errors, idle
/// timeout, or drain.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    queue_wait: Duration,
    engine: &SchemrEngine,
    metrics: &HttpMetrics,
    config: &ServerConfig,
    stop: &AtomicBool,
    slo: &SloTracker,
    parked: &ParkedConnections,
) {
    let _ = stream.set_write_timeout(config.write_timeout);
    // The peer address gates operator-only endpoints (e.g. adjusting the
    // slowlog threshold) to loopback clients.
    let peer = stream.peer_addr().ok();
    let mut reader = BufReader::new(stream);
    let budget = config.keepalive_requests.max(1);
    let mut served = 0usize;
    while served < budget {
        if matches!(
            wait_for_request(&mut reader, config.idle_timeout, stop, parked),
            Wake::Close
        ) {
            break;
        }
        // Bound how long one request read can hold this worker: without
        // the timeout a client that never finishes its request pins the
        // thread indefinitely.
        if reader
            .get_ref()
            .set_read_timeout(config.read_timeout)
            .is_err()
        {
            break;
        }
        let started = Instant::now();
        let (label, response, client_keep_alive) =
            match read_request(&mut reader, &config.http_limits) {
                Ok(request) => {
                    let keep = request.wants_keep_alive();
                    // Queue wait is a property of the connection's arrival;
                    // annotate it on the first request only.
                    let wait = (served == 0).then_some(queue_wait);
                    (
                        route_label(&request.path),
                        route(engine, slo, &request, wait, peer),
                        keep,
                    )
                }
                Err(e) => {
                    let label = if e.is_timeout() {
                        "timeout"
                    } else {
                        "malformed"
                    };
                    if e.is_timeout() {
                        // A stalled request still waited for admission;
                        // give it a trace like any served request gets.
                        trace_rejection(engine, "timeout", (served == 0).then_some(queue_wait));
                    }
                    match Response::for_error(&e) {
                        // Parse errors always close: the reader may be
                        // mid-garbage and request framing is lost.
                        Some(response) => (label, response, false),
                        None => break,
                    }
                }
            };
        served += 1;
        if served > 1 {
            metrics.keepalive_reuse.inc();
        }
        // Sampled after the (possibly blocking) request read: a drain
        // that began while this request was in flight must demote the
        // response to `Connection: close`, or the client would send
        // another request into a server that is shutting down.
        let draining = stop.load(Ordering::Relaxed);
        let keep_alive = client_keep_alive && served < budget && !draining;
        record_request(engine.metrics_registry(), label, &response, started, slo);
        if response
            .write_to_conn(reader.get_mut(), keep_alive)
            .is_err()
            || !keep_alive
        {
            break;
        }
    }
}

/// Normalize a request path to a bounded label set: known routes keep
/// their name, id-carrying routes collapse to their prefix, and every
/// unknown path becomes one shared `other` label — a scanner probing
/// random URLs must not mint unbounded metric series.
fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/stats" => "/stats",
        "/search" => "/search",
        "/debug/traces" => "/debug/traces",
        "/debug/slowlog" => "/debug/slowlog",
        "/debug/profile" => "/debug/profile",
        "/debug/slo" => "/debug/slo",
        "/debug/workload" => "/debug/workload",
        "/debug/index" => "/debug/index",
        "/debug/memory" => "/debug/memory",
        _ if path.starts_with("/debug/traces/") => "/debug/traces/{id}",
        _ if path.starts_with("/schema/") => "/schema",
        _ => "other",
    }
}

/// Record one served request into the shared registry.
fn record_request(
    registry: &Arc<MetricsRegistry>,
    label: &str,
    response: &Response,
    started: Instant,
    slo: &SloTracker,
) {
    let status = match response.status {
        200 => "200",
        400 => "400",
        403 => "403",
        404 => "404",
        405 => "405",
        408 => "408",
        431 => "431",
        503 => "503",
        _ => "other",
    };
    let latency = started.elapsed();
    // 5xx burns the error budget; client errors (4xx) don't — a scanner
    // probing bad paths must not page the on-call.
    slo.record(latency, response.status >= 500);
    registry
        .counter_with(
            "schemr_http_requests_total",
            "HTTP requests served, by route and status.",
            &[("route", label), ("status", status)],
        )
        .inc();
    // The request's trace id (echoed in `X-Schemr-Trace-Id` for /search)
    // doubles as the latency exemplar, linking a slow bucket on
    // `/metrics` to its span tree under `/debug/traces/{id}`.
    let trace_id = response
        .headers
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case("x-schemr-trace-id"))
        .map_or("", |(_, value)| value.as_str());
    registry
        .histogram_with(
            "schemr_http_request_seconds",
            "Wall time from request read to response ready, by route.",
            &[("route", label)],
            LATENCY_BUCKETS,
        )
        .observe_duration_exemplar(latency, trace_id);
}

/// Dispatch a request to a handler. `queue_wait` is the admission-queue
/// wait of the connection's first request, for span annotation. `peer`
/// gates operator-only endpoints to loopback clients.
fn route(
    engine: &SchemrEngine,
    slo: &SloTracker,
    request: &Request,
    queue_wait: Option<Duration>,
    peer: Option<std::net::SocketAddr>,
) -> Response {
    // The whole `/debug/*` surface is operator-only: span trees and the
    // workload panels expose query text, and the memory/index reports
    // expose corpus internals. Gate all of it to loopback clients the
    // way POST /debug/slowlog always was.
    if request.path.starts_with("/debug/") && !peer.is_some_and(|p| p.ip().is_loopback()) {
        return Response::forbidden("debug endpoints are loopback-only");
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(engine, slo),
        ("GET", "/metrics") => handle_metrics(engine),
        ("GET", "/stats") => handle_stats(engine),
        ("GET" | "POST", "/search") => handle_search(engine, request, queue_wait),
        ("GET", "/debug/traces") => handle_traces(engine, request),
        ("GET", "/debug/slowlog") => handle_slowlog(engine, request),
        ("POST", "/debug/slowlog") => handle_slowlog_threshold(engine, request, peer),
        ("GET", "/debug/profile") => handle_profile(engine, request),
        ("GET", "/debug/slo") => Response::ok("application/json", slo.report().to_json()),
        ("GET", "/debug/workload") => handle_workload(engine, request),
        ("GET", "/debug/index") => handle_index(engine, request),
        ("GET", "/debug/memory") => handle_memory(engine),
        ("GET", _) if request.path.starts_with("/debug/traces/") => {
            handle_trace_by_id(engine, &request.path["/debug/traces/".len()..])
        }
        _ if request.path.starts_with("/schema/") => handle_schema(engine, request),
        _ => Response::not_found(format!("no route for {} {}", request.method, request.path)),
    }
}

/// `GET /metrics`: the registry's counter/histogram families plus
/// hand-rendered gauges. The registry holds monotonic families only, so
/// point-in-time values (resident bytes, distinct-term estimate) are
/// appended here instead of being registered.
fn handle_metrics(engine: &SchemrEngine) -> Response {
    use std::fmt::Write as _;
    let mut body = engine.metrics_registry().render_prometheus();
    let mem = engine.memory_report();
    {
        let mut gauge = |name: &str, help: &str, value: u64| {
            let _ = write!(
                body,
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            );
        };
        gauge(
            "schemr_index_deep_bytes",
            "Estimated heap bytes of the in-memory inverted index.",
            mem.index_deep_bytes as u64,
        );
        gauge(
            "schemr_candidate_cache_resident_entries",
            "Entries resident in the Phase 1 candidate cache.",
            mem.candidate_cache_entries as u64,
        );
        gauge(
            "schemr_match_artifact_cache_resident_bytes",
            "Artifact bytes resident in the Phase 2 match-artifact cache.",
            mem.artifact_cache_resident_bytes as u64,
        );
        gauge(
            "schemr_trace_ring_bytes",
            "Estimated heap bytes retained by the recent-trace and slowlog rings.",
            (mem.trace_ring_bytes + mem.slow_ring_bytes) as u64,
        );
    }
    // `top_n = 0`: totals and the distinct estimate without ranking any
    // heavy-hitter panel.
    if let Some(snap) = engine.workload_snapshot(0) {
        let _ = write!(
            body,
            "# HELP schemr_workload_distinct_terms_estimate KMV estimate of distinct analyzed query terms.\n\
             # TYPE schemr_workload_distinct_terms_estimate gauge\n\
             schemr_workload_distinct_terms_estimate {}\n",
            snap.distinct_terms_estimate
        );
    }
    Response::ok("text/plain; version=0.0.4", body)
}

/// `GET /debug/workload?limit=N`: heavy-hitter query terms, normalized
/// query shapes, and the zero-result panel from the engine's workload
/// sketch. 404 when the workload plane is off.
fn handle_workload(engine: &SchemrEngine, request: &Request) -> Response {
    let top_n = limit_param(request, 20, 200);
    match engine.workload_snapshot(top_n) {
        Some(snapshot) => Response::ok("application/json", snapshot.to_json()),
        None => Response::not_found(
            "workload analytics disabled (tracing off or workload_sketch=0)".to_string(),
        ),
    }
}

/// `GET /debug/index?limit=N`: corpus aggregates plus per-postings-list
/// statistics for the heaviest lists, including each list's max-impact
/// score (the WAND/MaxScore upper bound).
fn handle_index(engine: &SchemrEngine, request: &Request) -> Response {
    use std::fmt::Write as _;
    let top_lists = limit_param(request, 20, 500);
    let report = engine.index_introspection(top_lists);
    let mut body = format!(
        "{{\"live_docs\":{},\"total_docs\":{},\"distinct_terms\":{},\"postings\":{},\"occurrences\":{},\"revision\":{},\"tombstone_ratio\":{:.6},\"postings_bytes\":{},\"deep_bytes\":{},\"top_lists\":[",
        report.stats.live_docs,
        report.stats.total_docs,
        report.stats.distinct_terms,
        report.stats.postings,
        report.stats.occurrences,
        report.revision,
        report.tombstone_ratio,
        report.postings_bytes,
        report.deep_bytes,
    );
    for (i, list) in report.top_lists.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(
            body,
            "{{\"field\":\"{}\",\"term\":\"{}\",\"doc_freq\":{},\"live_doc_freq\":{},\"tombstone_ratio\":{:.6},\"approx_bytes\":{},\"max_impact\":{:.6}}}",
            list.field.label(),
            schemr_obs::json::escape(&list.term),
            list.doc_freq,
            list.live_doc_freq,
            list.tombstone_ratio,
            list.approx_bytes,
            list.max_impact,
        );
    }
    body.push_str("]}");
    Response::ok("application/json", body)
}

/// `GET /debug/memory`: the engine's deep-memory report — estimated
/// resident bytes of the index, both caches, and the trace rings.
fn handle_memory(engine: &SchemrEngine) -> Response {
    let m = engine.memory_report();
    let event_log_bytes = m
        .event_log_bytes
        .map_or("null".to_string(), |b| b.to_string());
    let body = format!(
        "{{\"index\":{{\"deep_bytes\":{},\"postings_bytes\":{}}},\
         \"candidate_cache\":{{\"entries\":{},\"budget_entries\":{}}},\
         \"match_artifact_cache\":{{\"entries\":{},\"resident_bytes\":{},\"budget_bytes\":{}}},\
         \"trace_ring\":{{\"traces\":{},\"bytes\":{}}},\
         \"slowlog_ring\":{{\"traces\":{},\"bytes\":{}}},\
         \"event_log_bytes\":{}}}",
        m.index_deep_bytes,
        m.index_postings_bytes,
        m.candidate_cache_entries,
        m.candidate_cache_budget,
        m.artifact_cache_entries,
        m.artifact_cache_resident_bytes,
        m.artifact_cache_budget_bytes,
        m.trace_ring_len,
        m.trace_ring_bytes,
        m.slow_ring_len,
        m.slow_ring_bytes,
        event_log_bytes,
    );
    Response::ok("application/json", body)
}

fn handle_healthz(engine: &SchemrEngine, slo: &SloTracker) -> Response {
    let live_docs = engine.index_stats().live_docs;
    // Three states: `unavailable` (nothing to serve, 503), `degraded`
    // (serving, but burning SLO budget faster than provisioned — still
    // 200 so orchestrators don't amplify an incident by killing capacity)
    // and `ok`.
    let degraded = slo.report().degraded();
    let status = if live_docs == 0 {
        "unavailable"
    } else if degraded {
        "degraded"
    } else {
        "ok"
    };
    let body = format!(
        "{{\"status\":\"{}\",\"revision\":{},\"indexed_docs\":{},\"slo_degraded\":{}}}",
        status,
        engine.repository().revision(),
        live_docs,
        degraded
    );
    if live_docs == 0 {
        Response::unavailable("application/json", body)
    } else {
        Response::ok("application/json", body)
    }
}

/// `POST /debug/slowlog?threshold_ms=N`: adjust the slowlog admission
/// threshold at runtime. Loopback-only — it changes what the server
/// retains, so a remote client must not be able to flip it.
fn handle_slowlog_threshold(
    engine: &SchemrEngine,
    request: &Request,
    peer: Option<std::net::SocketAddr>,
) -> Response {
    if !peer.is_some_and(|p| p.ip().is_loopback()) {
        return Response::forbidden("slowlog threshold changes are loopback-only");
    }
    let Some(raw) = request.param("threshold_ms") else {
        return Response::bad_request("missing threshold_ms parameter");
    };
    let Ok(ms) = raw.parse::<u64>() else {
        return Response::bad_request("threshold_ms must be a non-negative integer");
    };
    engine
        .tracer()
        .set_slow_threshold(Duration::from_millis(ms));
    Response::ok(
        "application/json",
        format!("{{\"slow_threshold_ms\":{ms}}}"),
    )
}

/// `GET /debug/profile?ms=N`: block for the window (default 500 ms,
/// capped at 10 s) and return the span stacks sampled during it in
/// folded-stack format — pipe straight into a flamegraph renderer.
fn handle_profile(engine: &SchemrEngine, request: &Request) -> Response {
    let Some(profiler) = engine.profiler() else {
        return Response::not_found("profiler disabled (tracing off or profile_hz=0)".to_string());
    };
    let ms = request
        .param("ms")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(500)
        .clamp(10, 10_000);
    let window = profiler.profile_window(Duration::from_millis(ms));
    let mut body = format!(
        "# window_ms={ms} hz={} ticks={} total_weight={}\n",
        profiler.hz(),
        window.ticks,
        window.total_weight()
    );
    body.push_str(&window.render_folded());
    Response::ok("text/plain", body)
}

/// Parse a `limit` query param with a default and an upper bound.
fn limit_param(request: &Request, default: usize, max: usize) -> usize {
    request
        .param("limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default)
        .min(max)
}

fn handle_traces(engine: &SchemrEngine, request: &Request) -> Response {
    let limit = limit_param(request, 50, 1000);
    let summaries: Vec<String> = engine
        .tracer()
        .recent(limit)
        .iter()
        .map(|t| t.summary_json())
        .collect();
    Response::ok("application/json", format!("[{}]", summaries.join(",")))
}

fn handle_trace_by_id(engine: &SchemrEngine, id: &str) -> Response {
    match engine.tracer().get(id) {
        Some(trace) => Response::ok("application/json", trace.to_json()),
        None => Response::not_found(format!("no retained trace with id `{id}`")),
    }
}

fn handle_slowlog(engine: &SchemrEngine, request: &Request) -> Response {
    let limit = limit_param(request, 50, 1000);
    // The slowlog keeps few entries by design, so return the full span
    // trees — that's what makes a slow query diagnosable after the fact.
    let entries: Vec<String> = engine
        .tracer()
        .slow(limit)
        .iter()
        .map(|t| t.to_json())
        .collect();
    Response::ok("application/json", format!("[{}]", entries.join(",")))
}

fn handle_stats(engine: &SchemrEngine) -> Response {
    let repo = engine.repository();
    let ix = engine.index_stats();
    let xml = format!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<stats schemas=\"{}\" revision=\"{}\" indexed=\"{}\" terms=\"{}\" postings=\"{}\"/>\n",
        repo.len(),
        repo.revision(),
        ix.live_docs,
        ix.distinct_terms,
        ix.postings
    );
    Response::ok("text/xml", xml)
}

fn handle_search(
    engine: &SchemrEngine,
    request: &Request,
    queue_wait: Option<Duration>,
) -> Response {
    let mut sr = SearchRequest {
        keywords: request.param("q").map(parse_keywords).unwrap_or_default(),
        queue_wait,
        ..Default::default()
    };
    if request.method == "POST" && !request.body.trim().is_empty() {
        match schemr_parse::parse_fragment("fragment", &request.body) {
            Ok(fragment) => sr.fragments.push(fragment),
            Err(e) => return Response::bad_request(format!("fragment: {e}")),
        }
    }
    if let Some(limit) = request.param("limit") {
        match limit.parse::<usize>() {
            Ok(n) => sr.limit = Some(n),
            Err(_) => return Response::bad_request("limit must be an integer"),
        }
    }
    sr.explain = matches!(request.param("explain"), Some("1") | Some("true"));
    // Propagate a client-supplied trace id; the engine validates it and
    // falls back to a generated one. Either way the id actually used is
    // echoed back in `X-Schemr-Trace-Id`.
    sr.trace_id = request.headers.get("x-schemr-trace-id").cloned();
    match engine.search_detailed(&sr) {
        Ok(response) => {
            let mut http = Response::ok("text/xml", search_response_to_xml(&response));
            if let Some(id) = &response.trace_id {
                http = http.with_header("X-Schemr-Trace-Id", id);
            }
            if let Some(ledger) = &response.ledger {
                let wall_us = response.timings.total().as_micros() as u64;
                http = http.with_header("X-Schemr-Cost", ledger.header_value(wall_us));
            }
            http
        }
        Err(e) => Response::bad_request(e.to_string()),
    }
}

fn handle_schema(engine: &SchemrEngine, request: &Request) -> Response {
    if request.method != "GET" {
        return Response {
            status: 405,
            content_type: "text/plain",
            body: "only GET is supported for /schema".to_string(),
            headers: Vec::new(),
        };
    }
    let rest = &request.path["/schema/".len()..];
    let (id_part, tail) = rest.split_once('/').unwrap_or((rest, ""));
    let Ok(id) = id_part.parse::<SchemaId>() else {
        return Response::bad_request(format!("bad schema id `{id_part}`"));
    };
    let Some(stored) = engine.repository().get(id) else {
        return Response::not_found(format!("schema {id} not found"));
    };
    let depth = request
        .param("depth")
        .and_then(|d| d.parse::<usize>().ok())
        .unwrap_or(3);
    match tail {
        "" => {
            let xml = to_graphml(
                &stored.schema,
                &GraphmlOptions {
                    max_depth: Some(depth),
                    scores: vec![],
                },
            );
            Response::ok("application/graphml+xml", xml)
        }
        "svg" => {
            let roots = stored.schema.roots();
            let layout = match request.param("layout").unwrap_or("tree") {
                "radial" => radial_layout(&stored.schema, &roots, depth),
                "tree" => tree_layout(&stored.schema, &roots, depth),
                other => return Response::bad_request(format!("unknown layout `{other}`")),
            };
            let svg = schemr_viz::render_svg(&stored.schema, &layout, &SvgOptions::default());
            Response::ok("image/svg+xml", svg)
        }
        other => Response::not_found(format!("no such schema view `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_repo::{import::import_str, Repository};
    use std::io::{Read, Write};

    fn engine() -> Arc<SchemrEngine> {
        let repo = Arc::new(Repository::new());
        import_str(
            &repo,
            "clinic",
            "rural health clinic",
            "CREATE TABLE patient (id INT, height REAL, gender TEXT, diagnosis TEXT)",
        )
        .unwrap();
        import_str(
            &repo,
            "store",
            "a web shop",
            "CREATE TABLE orders (id INT, total DECIMAL, quantity INT, customer TEXT)",
        )
        .unwrap();
        let engine = Arc::new(SchemrEngine::new(repo));
        engine.reindex_full();
        engine
    }

    /// One-shot GET: sends `Connection: close` so `read_to_string` sees
    /// EOF as soon as the response is written.
    fn get(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
        request(
            addr,
            &format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        )
    }

    /// Like `get`, but returns the raw response text (headers included).
    fn get_raw(addr: std::net::SocketAddr, target: &str, extra_headers: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!(
                    "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n{extra_headers}\r\n"
                )
                .as_bytes(),
            )
            .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        buf
    }

    fn request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        let status: u16 = buf
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = buf
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn healthz_reports_revision_and_doc_count() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"revision\":2"), "{body}");
        assert!(body.contains("\"indexed_docs\":2"), "{body}");
        assert!(server.shutdown());
    }

    #[test]
    fn metrics_endpoint_renders_engine_and_http_families() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let (status, _) = get(addr, "/search?q=patient");
        assert_eq!(status, 200);
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE schemr_search_requests_total counter"));
        assert!(body.contains("schemr_search_requests_total 1"), "{body}");
        assert!(
            body.contains("schemr_phase_seconds_bucket{phase=\"matching\","),
            "{body}"
        );
        assert!(body.contains("schemr_matcher_seconds_bucket{matcher=\"name\","));
        assert!(
            body.contains("# TYPE schemr_match_artifact_cache_hits_total counter"),
            "{body}"
        );
        assert!(
            body.contains("schemr_match_artifact_cache_misses_total"),
            "{body}"
        );
        assert!(
            body.contains("schemr_http_requests_total{route=\"/search\",status=\"200\"} 1"),
            "{body}"
        );
        assert!(body.contains("schemr_http_request_seconds_bucket{route=\"/search\","));
        // The serving-path families are pre-registered and render even
        // before saturation or reuse has happened.
        assert!(
            body.contains("# TYPE schemr_http_shed_total counter"),
            "{body}"
        );
        assert!(body.contains("schemr_http_shed_total 0"), "{body}");
        assert!(body.contains("schemr_http_queue_enqueued_total"), "{body}");
        assert!(body.contains("schemr_http_queue_dequeued_total"), "{body}");
        assert!(body.contains("schemr_http_keepalive_reuse_total"), "{body}");
        assert!(
            body.contains("schemr_http_queue_wait_seconds_bucket"),
            "{body}"
        );
        assert!(server.shutdown());
    }

    #[test]
    fn explain_param_attaches_a_trace() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let (status, plain) = get(addr, "/search?q=patient");
        assert_eq!(status, 200);
        assert!(!plain.contains("<trace"));
        let (status, body) = get(addr, "/search?q=patient&explain=1");
        assert_eq!(status, 200);
        assert!(body.contains("<trace candidates-from-index="), "{body}");
        assert!(body.contains("<phase name=\"candidate_extraction\""));
        assert!(body.contains("<matcher name=\"name\""));
        assert!(server.shutdown());
    }

    #[test]
    fn keyword_search_returns_ranked_xml() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), "/search?q=patient+height+gender");
        assert_eq!(status, 200);
        assert!(body.contains("<results"));
        assert!(body.contains("<title>clinic</title>"));
        let clinic_pos = body.find("clinic").unwrap();
        let store_pos = body.find("store").unwrap_or(usize::MAX);
        assert!(clinic_pos < store_pos);
        assert!(server.shutdown());
    }

    #[test]
    fn post_fragment_search() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let body = "CREATE TABLE patient (height REAL, gender TEXT)";
        let raw = format!(
            "POST /search HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let (status, resp) = request(server.addr(), &raw);
        assert_eq!(status, 200);
        assert!(resp.contains("clinic"));
        assert!(server.shutdown());
    }

    #[test]
    fn schema_endpoint_returns_graphml_and_svg() {
        let eng = engine();
        let id = eng.repository().ids()[0];
        let server = SchemrServer::start(eng, ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), &format!("/schema/{id}"));
        assert_eq!(status, 200);
        assert!(body.contains("<graphml"));
        let (status, svg) = get(server.addr(), &format!("/schema/{id}/svg?layout=radial"));
        assert_eq!(status, 200);
        assert!(svg.starts_with("<svg"));
        assert!(server.shutdown());
    }

    #[test]
    fn error_paths() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(get(addr, "/schema/zzz").0, 400);
        assert_eq!(get(addr, "/schema/s9999").0, 404);
        assert_eq!(get(addr, "/search").0, 400); // empty query
        assert_eq!(get(addr, "/search?q=patient&limit=abc").0, 400);
        assert_eq!(get(addr, "/schema/s0/svg?layout=spiral").0, 400);
        assert!(server.shutdown());
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = SchemrServer::start(
            engine(),
            ServerConfig {
                workers: 4,
                ..Default::default()
            },
        );
        let server = server.unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|_| {
                std::thread::spawn(move || {
                    let (status, _) = get(addr, "/search?q=patient");
                    assert_eq!(status, 200);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(server.shutdown());
    }

    #[test]
    fn healthz_returns_503_on_an_empty_index() {
        let repo = Arc::new(Repository::new());
        let eng = Arc::new(SchemrEngine::new(repo));
        eng.reindex_full();
        let server = SchemrServer::start(eng, ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), "/healthz");
        assert_eq!(status, 503);
        assert!(body.contains("\"status\":\"unavailable\""), "{body}");
        assert!(body.contains("\"indexed_docs\":0"));
        // The 503 lands in the request metrics under its own status label.
        let (_, metrics) = get(server.addr(), "/metrics");
        assert!(
            metrics.contains("schemr_http_requests_total{route=\"/healthz\",status=\"503\"} 1"),
            "{metrics}"
        );
        assert!(server.shutdown());
    }

    #[test]
    fn health_and_metrics_set_content_type() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let health = get_raw(server.addr(), "/healthz", "");
        assert!(
            health.contains("Content-Type: application/json; charset=utf-8\r\n"),
            "{health}"
        );
        let metrics = get_raw(server.addr(), "/metrics", "");
        assert!(
            metrics.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"),
            "{metrics}"
        );
        assert!(server.shutdown());
    }

    #[test]
    fn client_trace_ids_round_trip_through_debug_traces() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let raw = get_raw(
            addr,
            "/search?q=patient+height",
            "X-Schemr-Trace-Id: my-req-7\r\n",
        );
        assert!(raw.starts_with("HTTP/1.1 200"));
        assert!(raw.contains("X-Schemr-Trace-Id: my-req-7\r\n"), "{raw}");
        // The span tree is retrievable by that id and covers all three
        // phases.
        let (status, body) = get(addr, "/debug/traces/my-req-7");
        assert_eq!(status, 200);
        assert!(body.contains("\"trace_id\":\"my-req-7\""), "{body}");
        assert!(body.contains("\"query\":\"patient height\""));
        for phase in ["candidate_extraction", "matching", "tightness_scoring"] {
            assert!(body.contains(&format!("\"name\":\"{phase}\"")), "{body}");
        }
        // Served over HTTP, the root span also records how long the
        // connection waited for admission.
        assert!(body.contains("\"queue_wait_us\""), "{body}");
        // The listing shows it too.
        let (status, listing) = get(addr, "/debug/traces");
        assert_eq!(status, 200);
        assert!(listing.contains("my-req-7"), "{listing}");
        // Searches without the header still get an id assigned.
        let raw = get_raw(addr, "/search?q=gender", "");
        assert!(raw.contains("X-Schemr-Trace-Id: "), "{raw}");
        // Unknown ids are 404.
        assert_eq!(get(addr, "/debug/traces/never-seen").0, 404);
        assert!(server.shutdown());
    }

    #[test]
    fn slow_searches_appear_in_the_slowlog() {
        use schemr::EngineConfig;
        let repo = Arc::new(Repository::new());
        import_str(
            &repo,
            "clinic",
            "rural health clinic",
            "CREATE TABLE patient (id INT, height REAL, gender TEXT)",
        )
        .unwrap();
        // Threshold zero: every search is "slow".
        let eng = Arc::new(SchemrEngine::with_config(
            repo,
            EngineConfig {
                trace: schemr_obs::TracerConfig {
                    slow_threshold: std::time::Duration::ZERO,
                    ..Default::default()
                },
                ..Default::default()
            },
        ));
        eng.reindex_full();
        let server = SchemrServer::start(eng, ServerConfig::default()).unwrap();
        let addr = server.addr();
        let raw = get_raw(addr, "/search?q=patient", "X-Schemr-Trace-Id: slow-1\r\n");
        assert!(raw.starts_with("HTTP/1.1 200"));
        let (status, body) = get(addr, "/debug/slowlog");
        assert_eq!(status, 200);
        assert!(body.contains("\"trace_id\":\"slow-1\""), "{body}");
        // Full span trees, not just summaries.
        assert!(body.contains("\"spans\":["), "{body}");
        assert!(server.shutdown());
    }

    #[test]
    fn unknown_routes_share_one_metric_label() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        assert_eq!(get(addr, "/totally/made/up").0, 404);
        assert_eq!(get(addr, "/another-random-path-42").0, 404);
        let (_, metrics) = get(addr, "/metrics");
        assert!(
            metrics.contains("schemr_http_requests_total{route=\"other\",status=\"404\"} 2"),
            "{metrics}"
        );
        // And the id-carrying debug route collapses too.
        let _ = get(addr, "/debug/traces/some-id");
        let (_, metrics) = get(addr, "/metrics");
        assert!(
            metrics.contains(
                "schemr_http_requests_total{route=\"/debug/traces/{id}\",status=\"404\"} 1"
            ),
            "{metrics}"
        );
        assert!(server.shutdown());
    }

    #[test]
    fn stalled_clients_get_408_and_free_the_worker() {
        let server = SchemrServer::start(
            engine(),
            ServerConfig {
                read_timeout: Some(Duration::from_millis(200)),
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        // A partial request with no terminating blank line: the worker
        // must time out reading it rather than block forever.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /search?q=patient HTTP/1.1\r\nHost: t")
            .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 408 Request Timeout\r\n"), "{buf}");
        drop(stream);
        // The worker is free again and the timeout is visible in metrics.
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(
            metrics.contains("schemr_http_requests_total{route=\"timeout\",status=\"408\"} 1"),
            "{metrics}"
        );
        assert!(server.shutdown());
    }

    #[test]
    fn stats_endpoint_reports_repository_and_index() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), "/stats");
        assert_eq!(status, 200);
        assert!(body.contains("schemas=\"2\""), "{body}");
        assert!(body.contains("indexed=\"2\""));
        assert!(server.shutdown());
    }

    #[test]
    fn limit_param_caps_results() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let (_, body) = get(server.addr(), "/search?q=id&limit=1");
        assert!(body.contains("count=\"1\""), "{body}");
        assert!(server.shutdown());
    }

    #[test]
    fn cost_header_reports_the_query_ledger() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let raw = get_raw(server.addr(), "/search?q=patient+height", "");
        assert!(raw.starts_with("HTTP/1.1 200"));
        assert!(raw.contains("X-Schemr-Cost: wall_us="), "{raw}");
        assert!(raw.contains(";cpu_us="), "{raw}");
        assert!(raw.contains(";alloc="), "{raw}");
        assert!(server.shutdown());
    }

    #[test]
    fn debug_slo_reports_burn_windows_and_healthz_carries_the_verdict() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let (status, _) = get(addr, "/search?q=patient");
        assert_eq!(status, 200);
        let (status, body) = get(addr, "/debug/slo");
        assert_eq!(status, 200);
        assert!(body.contains("\"p99_objective_ms\""), "{body}");
        assert!(body.contains("\"window\":\"5m\""), "{body}");
        assert!(body.contains("\"window\":\"1h\""), "{body}");
        assert!(body.contains("\"latency_burn\""), "{body}");
        assert!(body.contains("\"error_burn\""), "{body}");
        // A healthy server reports the SLO verdict on its health check.
        let (status, health) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(health.contains("\"slo_degraded\":false"), "{health}");
        assert!(server.shutdown());
    }

    #[test]
    fn sustained_5xx_burn_the_error_budget_and_flag_degraded() {
        // An empty-index server answers /healthz with 503, which counts
        // against the error budget like any other 5xx. Under a tight
        // budget a handful of them pushes the fast window's burn rate
        // past 1.0 and the health body flips to degraded.
        let repo = Arc::new(Repository::new());
        let eng = Arc::new(SchemrEngine::new(repo));
        eng.reindex_full();
        let server = SchemrServer::start(
            eng,
            ServerConfig {
                slo: schemr_obs::SloConfig {
                    error_budget_pct: 0.001,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        for _ in 0..5 {
            assert_eq!(get(addr, "/healthz").0, 503);
        }
        let (_, health) = get(addr, "/healthz");
        assert!(health.contains("\"slo_degraded\":true"), "{health}");
        let (_, slo) = get(addr, "/debug/slo");
        // Every request so far errored: burn is way past 1.0.
        assert!(slo.contains("\"window\":\"5m\""), "{slo}");
        assert!(!slo.contains("\"error_burn\":0.0,"), "{slo}");
        // And a healthy server under plain 2xx traffic stays clean even
        // on the same tight budget.
        let healthy = SchemrServer::start(
            engine(),
            ServerConfig {
                slo: schemr_obs::SloConfig {
                    error_budget_pct: 0.001,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        for _ in 0..10 {
            assert_eq!(get(healthy.addr(), "/search?q=patient").0, 200);
        }
        let (status, body) = get(healthy.addr(), "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"slo_degraded\":false"), "{body}");
        assert!(server.shutdown());
        assert!(healthy.shutdown());
    }

    #[test]
    fn debug_profile_returns_folded_stacks_under_load() {
        let server = SchemrServer::start(
            engine(),
            ServerConfig {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        // Background load so the sampler has live spans to observe.
        let stop = Arc::new(AtomicBool::new(false));
        let loaders: Vec<_> = (0..2)
            .map(|_| {
                let stop = stop.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let _ = get(addr, "/search?q=patient+height+gender+diagnosis");
                    }
                })
            })
            .collect();
        let (status, body) = get(addr, "/debug/profile?ms=400");
        stop.store(true, Ordering::Relaxed);
        for h in loaders {
            h.join().unwrap();
        }
        assert_eq!(status, 200, "{body}");
        let header = body.lines().next().unwrap_or("");
        assert!(header.starts_with("# window_ms=400 hz="), "{body}");
        assert!(header.contains("ticks="), "{body}");
        // Under sustained load the window must catch named spans, and
        // every sampled stack is rooted at the `search` span.
        let stacks: Vec<&str> = body.lines().skip(1).collect();
        assert!(!stacks.is_empty(), "no stacks sampled: {body}");
        let mut named = 0u64;
        let mut total = 0u64;
        for line in &stacks {
            let (stack, count) = line.rsplit_once(' ').expect("folded line");
            let count: u64 = count.parse().expect("folded count");
            total += count;
            if stack.starts_with("search") {
                named += count;
            }
        }
        assert!(
            named * 10 >= total * 9,
            "expected >=90% of weight under `search`: {body}"
        );
        // Window bounds are clamped, not errors.
        let (status, _) = get(addr, "/debug/profile?ms=1");
        assert_eq!(status, 200);
        assert!(server.shutdown());
    }

    #[test]
    fn debug_profile_404_when_profiler_disabled() {
        use schemr::EngineConfig;
        let repo = Arc::new(Repository::new());
        import_str(&repo, "clinic", "clinic", "CREATE TABLE p (id INT)").unwrap();
        let eng = Arc::new(SchemrEngine::with_config(
            repo,
            EngineConfig {
                trace: schemr_obs::TracerConfig {
                    profile_hz: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
        ));
        eng.reindex_full();
        let server = SchemrServer::start(eng, ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), "/debug/profile");
        assert_eq!(status, 404);
        assert!(body.contains("profiler disabled"), "{body}");
        assert!(server.shutdown());
    }

    #[test]
    fn slowlog_threshold_is_adjustable_at_runtime_from_loopback() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        // Default threshold: an ordinary fast search is not slow.
        let raw = get_raw(addr, "/search?q=patient", "X-Schemr-Trace-Id: fast-1\r\n");
        assert!(raw.starts_with("HTTP/1.1 200"));
        let (_, body) = get(addr, "/debug/slowlog");
        assert!(!body.contains("fast-1"), "{body}");
        // Drop the threshold to zero at runtime: now everything is slow.
        let (status, body) = request(
            addr,
            "POST /debug/slowlog?threshold_ms=0 HTTP/1.1\r\nHost: t\r\n\
             Connection: close\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"slow_threshold_ms\":0"), "{body}");
        let raw = get_raw(addr, "/search?q=patient", "X-Schemr-Trace-Id: now-slow\r\n");
        assert!(raw.starts_with("HTTP/1.1 200"));
        let (_, body) = get(addr, "/debug/slowlog");
        assert!(body.contains("now-slow"), "{body}");
        // Garbage and missing parameters are 400s, not silent defaults.
        let (status, _) = request(
            addr,
            "POST /debug/slowlog?threshold_ms=abc HTTP/1.1\r\nHost: t\r\n\
             Connection: close\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 400);
        let (status, _) = request(
            addr,
            "POST /debug/slowlog HTTP/1.1\r\nHost: t\r\n\
             Connection: close\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 400);
        assert!(server.shutdown());
    }

    #[test]
    fn debug_workload_reports_heavy_hitters_and_zero_results() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        for _ in 0..3 {
            assert_eq!(get(addr, "/search?q=patient+height").0, 200);
        }
        assert_eq!(get(addr, "/search?q=zebra+wingspan").0, 200);
        let (status, body) = get(addr, "/debug/workload");
        assert_eq!(status, 200);
        assert!(body.contains("\"total_queries\":4"), "{body}");
        assert!(body.contains("\"zero_result_queries\":1"), "{body}");
        assert!(body.contains("\"zero_result_rate\":0.25"), "{body}");
        assert!(body.contains("\"distinct_terms_estimate\""), "{body}");
        assert!(body.contains("\"top_terms\":["), "{body}");
        assert!(body.contains("\"top_shapes\":["), "{body}");
        assert!(body.contains("\"top_zero_result_shapes\":["), "{body}");
        // The analyzed terms of the repeated query dominate the panel.
        assert!(body.contains("\"count\":3"), "{body}");
        // ?limit=0 empties the panels but keeps the totals.
        let (status, trimmed) = get(addr, "/debug/workload?limit=0");
        assert_eq!(status, 200);
        assert!(trimmed.contains("\"top_terms\":[]"), "{trimmed}");
        assert!(trimmed.contains("\"total_queries\":4"), "{trimmed}");
        // The zero-result rate also lands on /metrics as a counter.
        let (_, metrics) = get(addr, "/metrics");
        assert!(metrics.contains("schemr_search_empty_total 1"), "{metrics}");
        assert!(server.shutdown());
    }

    #[test]
    fn debug_workload_404_when_tracing_disabled() {
        use schemr::EngineConfig;
        let repo = Arc::new(Repository::new());
        import_str(&repo, "clinic", "clinic", "CREATE TABLE p (id INT)").unwrap();
        let eng = Arc::new(SchemrEngine::with_config(
            repo,
            EngineConfig {
                trace: schemr_obs::TracerConfig::disabled(),
                ..Default::default()
            },
        ));
        eng.reindex_full();
        let server = SchemrServer::start(eng, ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), "/debug/workload");
        assert_eq!(status, 404);
        assert!(body.contains("workload analytics disabled"), "{body}");
        assert!(server.shutdown());
    }

    #[test]
    fn debug_index_reports_postings_statistics() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let (status, body) = get(addr, "/debug/index");
        assert_eq!(status, 200);
        assert!(body.contains("\"live_docs\":2"), "{body}");
        assert!(body.contains("\"tombstone_ratio\":0.000000"), "{body}");
        assert!(body.contains("\"postings_bytes\":"), "{body}");
        assert!(body.contains("\"deep_bytes\":"), "{body}");
        assert!(body.contains("\"top_lists\":["), "{body}");
        assert!(body.contains("\"field\":\"elements\""), "{body}");
        assert!(body.contains("\"max_impact\":"), "{body}");
        // The limit caps how many lists come back.
        let (status, capped) = get(addr, "/debug/index?limit=1");
        assert_eq!(status, 200);
        assert_eq!(capped.matches("\"term\":").count(), 1, "{capped}");
        assert!(server.shutdown());
    }

    #[test]
    fn debug_memory_reports_resident_structures() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        assert_eq!(get(addr, "/search?q=patient+height").0, 200);
        let (status, body) = get(addr, "/debug/memory");
        assert_eq!(status, 200);
        assert!(body.contains("\"index\":{\"deep_bytes\":"), "{body}");
        assert!(
            body.contains("\"candidate_cache\":{\"entries\":1"),
            "{body}"
        );
        assert!(
            body.contains("\"match_artifact_cache\":{\"entries\":"),
            "{body}"
        );
        assert!(body.contains("\"trace_ring\":{\"traces\":1"), "{body}");
        assert!(body.contains("\"slowlog_ring\":"), "{body}");
        assert!(body.contains("\"event_log_bytes\":null"), "{body}");
        // The same residency figures are exported as /metrics gauges.
        let (_, metrics) = get(addr, "/metrics");
        assert!(
            metrics.contains("# TYPE schemr_index_deep_bytes gauge"),
            "{metrics}"
        );
        assert!(
            metrics.contains("# TYPE schemr_candidate_cache_resident_entries gauge"),
            "{metrics}"
        );
        assert!(
            metrics.contains("schemr_candidate_cache_resident_entries 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("# TYPE schemr_match_artifact_cache_resident_bytes gauge"),
            "{metrics}"
        );
        assert!(
            metrics.contains("# TYPE schemr_trace_ring_bytes gauge"),
            "{metrics}"
        );
        assert!(
            metrics.contains("# TYPE schemr_workload_distinct_terms_estimate gauge"),
            "{metrics}"
        );
        assert!(server.shutdown());
    }

    #[test]
    fn debug_endpoints_are_loopback_gated() {
        // The route dispatcher refuses any /debug path for a non-loopback
        // peer — and for a missing peer address, which must fail closed.
        let eng = engine();
        let slo = SloTracker::new(SloConfig::default());
        let remote: std::net::SocketAddr = "203.0.113.9:4411".parse().unwrap();
        for path in [
            "/debug/traces",
            "/debug/traces/some-id",
            "/debug/slowlog",
            "/debug/profile",
            "/debug/slo",
            "/debug/workload",
            "/debug/index",
            "/debug/memory",
        ] {
            let req = Request {
                method: "GET".to_string(),
                path: path.to_string(),
                query: Default::default(),
                headers: Default::default(),
                version: "HTTP/1.1".to_string(),
                body: String::new(),
            };
            let denied = route(&eng, &slo, &req, None, Some(remote));
            assert_eq!(denied.status, 403, "{path} must be gated");
            let no_peer = route(&eng, &slo, &req, None, None);
            assert_eq!(
                no_peer.status, 403,
                "{path} must fail closed without a peer"
            );
        }
        // Loopback keeps working, and non-debug routes stay open to all.
        let local: std::net::SocketAddr = "127.0.0.1:4411".parse().unwrap();
        let req = Request {
            method: "GET".to_string(),
            path: "/debug/memory".to_string(),
            query: Default::default(),
            headers: Default::default(),
            version: "HTTP/1.1".to_string(),
            body: String::new(),
        };
        assert_eq!(route(&eng, &slo, &req, None, Some(local)).status, 200);
        let open = Request {
            method: "GET".to_string(),
            path: "/healthz".to_string(),
            query: Default::default(),
            headers: Default::default(),
            version: "HTTP/1.1".to_string(),
            body: String::new(),
        };
        assert_eq!(route(&eng, &slo, &open, None, Some(remote)).status, 200);
    }

    #[test]
    fn metrics_render_exemplars_with_live_trace_ids() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let raw = get_raw(
            addr,
            "/search?q=patient+height",
            "X-Schemr-Trace-Id: ex-9\r\n",
        );
        assert!(raw.starts_with("HTTP/1.1 200"));
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        // Both the engine phase histograms and the HTTP latency histogram
        // carry OpenMetrics exemplars pointing at the trace that produced
        // the worst observation in the bucket's window.
        assert!(metrics.contains("# {trace_id=\"ex-9\"}"), "{metrics}");
        let phase_line = metrics
            .lines()
            .find(|l| l.starts_with("schemr_phase_seconds_bucket") && l.contains("# {trace_id="))
            .unwrap_or_else(|| panic!("no phase exemplar: {metrics}"));
        assert!(phase_line.contains("trace_id=\"ex-9\""), "{phase_line}");
        let http_line = metrics
            .lines()
            .find(|l| {
                l.starts_with("schemr_http_request_seconds_bucket") && l.contains("# {trace_id=")
            })
            .unwrap_or_else(|| panic!("no http exemplar: {metrics}"));
        assert!(http_line.contains("trace_id=\"ex-9\""), "{http_line}");
        assert!(server.shutdown());
    }
}
