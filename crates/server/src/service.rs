//! The search service: routing, worker pool, lifecycle.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use schemr::{parse_keywords, SchemrEngine, SearchRequest};
use schemr_model::SchemaId;
use schemr_obs::{MetricsRegistry, LATENCY_BUCKETS};
use schemr_viz::{radial_layout, to_graphml, tree_layout, GraphmlOptions, SvgOptions};

use crate::http::{read_request, Request, Response};
use crate::xml_response::search_response_to_xml;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub bind: String,
    /// Worker threads handling connections.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:0".to_string(),
            workers: 4,
        }
    }
}

/// A running Schemr search service.
pub struct SchemrServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl SchemrServer {
    /// Bind and start serving in background threads.
    pub fn start(engine: Arc<SchemrEngine>, config: ServerConfig) -> std::io::Result<SchemrServer> {
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = unbounded();

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers.max(1) {
            let rx = rx.clone();
            let engine = engine.clone();
            workers.push(std::thread::spawn(move || {
                while let Ok(mut stream) = rx.recv() {
                    let started = Instant::now();
                    let (label, response) = match read_request(&mut stream) {
                        Ok(request) => (route_label(&request.path), route(&engine, &request)),
                        Err(e) => ("malformed", Response::bad_request(e.to_string())),
                    };
                    record_request(engine.metrics_registry(), label, &response, started);
                    let _ = response.write_to(&mut stream);
                }
            }));
        }

        let stop2 = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = stream {
                    let _ = tx.send(stream);
                }
            }
            drop(tx); // close the channel so workers exit
        });

        Ok(SchemrServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting and join all threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for SchemrServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_threads();
        }
    }
}

/// Normalize a request path to a bounded label set so `/schema/<id>`
/// doesn't explode the `route` label cardinality.
fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/stats" => "/stats",
        "/search" => "/search",
        _ if path.starts_with("/schema/") => "/schema",
        _ => "other",
    }
}

/// Record one served request into the shared registry.
fn record_request(
    registry: &Arc<MetricsRegistry>,
    label: &str,
    response: &Response,
    started: Instant,
) {
    let status = match response.status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        _ => "other",
    };
    registry
        .counter_with(
            "schemr_http_requests_total",
            "HTTP requests served, by route and status.",
            &[("route", label), ("status", status)],
        )
        .inc();
    registry
        .histogram_with(
            "schemr_http_request_seconds",
            "Wall time from request read to response ready, by route.",
            &[("route", label)],
            LATENCY_BUCKETS,
        )
        .observe_duration(started.elapsed());
}

/// Dispatch a request to a handler.
fn route(engine: &SchemrEngine, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(engine),
        ("GET", "/metrics") => Response::ok(
            "text/plain; version=0.0.4",
            engine.metrics_registry().render_prometheus(),
        ),
        ("GET", "/stats") => handle_stats(engine),
        ("GET" | "POST", "/search") => handle_search(engine, request),
        _ if request.path.starts_with("/schema/") => handle_schema(engine, request),
        _ => Response::not_found(format!("no route for {} {}", request.method, request.path)),
    }
}

fn handle_healthz(engine: &SchemrEngine) -> Response {
    let body = format!(
        "{{\"status\":\"ok\",\"revision\":{},\"indexed_docs\":{}}}",
        engine.repository().revision(),
        engine.index_stats().live_docs
    );
    Response::ok("application/json", body)
}

fn handle_stats(engine: &SchemrEngine) -> Response {
    let repo = engine.repository();
    let ix = engine.index_stats();
    let xml = format!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<stats schemas=\"{}\" revision=\"{}\" indexed=\"{}\" terms=\"{}\" postings=\"{}\"/>\n",
        repo.len(),
        repo.revision(),
        ix.live_docs,
        ix.distinct_terms,
        ix.postings
    );
    Response::ok("text/xml", xml)
}

fn handle_search(engine: &SchemrEngine, request: &Request) -> Response {
    let mut sr = SearchRequest {
        keywords: request.param("q").map(parse_keywords).unwrap_or_default(),
        ..Default::default()
    };
    if request.method == "POST" && !request.body.trim().is_empty() {
        match schemr_parse::parse_fragment("fragment", &request.body) {
            Ok(fragment) => sr.fragments.push(fragment),
            Err(e) => return Response::bad_request(format!("fragment: {e}")),
        }
    }
    if let Some(limit) = request.param("limit") {
        match limit.parse::<usize>() {
            Ok(n) => sr.limit = Some(n),
            Err(_) => return Response::bad_request("limit must be an integer"),
        }
    }
    sr.explain = matches!(request.param("explain"), Some("1") | Some("true"));
    match engine.search_detailed(&sr) {
        Ok(response) => Response::ok("text/xml", search_response_to_xml(&response)),
        Err(e) => Response::bad_request(e.to_string()),
    }
}

fn handle_schema(engine: &SchemrEngine, request: &Request) -> Response {
    if request.method != "GET" {
        return Response {
            status: 405,
            content_type: "text/plain",
            body: "only GET is supported for /schema".to_string(),
        };
    }
    let rest = &request.path["/schema/".len()..];
    let (id_part, tail) = rest.split_once('/').unwrap_or((rest, ""));
    let Ok(id) = id_part.parse::<SchemaId>() else {
        return Response::bad_request(format!("bad schema id `{id_part}`"));
    };
    let Some(stored) = engine.repository().get(id) else {
        return Response::not_found(format!("schema {id} not found"));
    };
    let depth = request
        .param("depth")
        .and_then(|d| d.parse::<usize>().ok())
        .unwrap_or(3);
    match tail {
        "" => {
            let xml = to_graphml(
                &stored.schema,
                &GraphmlOptions {
                    max_depth: Some(depth),
                    scores: vec![],
                },
            );
            Response::ok("application/graphml+xml", xml)
        }
        "svg" => {
            let roots = stored.schema.roots();
            let layout = match request.param("layout").unwrap_or("tree") {
                "radial" => radial_layout(&stored.schema, &roots, depth),
                "tree" => tree_layout(&stored.schema, &roots, depth),
                other => return Response::bad_request(format!("unknown layout `{other}`")),
            };
            let svg = schemr_viz::render_svg(&stored.schema, &layout, &SvgOptions::default());
            Response::ok("image/svg+xml", svg)
        }
        other => Response::not_found(format!("no such schema view `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_repo::{import::import_str, Repository};
    use std::io::{Read, Write};

    fn engine() -> Arc<SchemrEngine> {
        let repo = Arc::new(Repository::new());
        import_str(
            &repo,
            "clinic",
            "rural health clinic",
            "CREATE TABLE patient (id INT, height REAL, gender TEXT, diagnosis TEXT)",
        )
        .unwrap();
        import_str(
            &repo,
            "store",
            "a web shop",
            "CREATE TABLE orders (id INT, total DECIMAL, quantity INT, customer TEXT)",
        )
        .unwrap();
        let engine = Arc::new(SchemrEngine::new(repo));
        engine.reindex_full();
        engine
    }

    fn get(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
        request(addr, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
    }

    fn request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        let status: u16 = buf
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = buf
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn healthz_reports_revision_and_doc_count() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"revision\":2"), "{body}");
        assert!(body.contains("\"indexed_docs\":2"), "{body}");
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_renders_engine_and_http_families() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let (status, _) = get(addr, "/search?q=patient");
        assert_eq!(status, 200);
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE schemr_search_requests_total counter"));
        assert!(body.contains("schemr_search_requests_total 1"), "{body}");
        assert!(
            body.contains("schemr_phase_seconds_bucket{phase=\"matching\","),
            "{body}"
        );
        assert!(body.contains("schemr_matcher_seconds_bucket{matcher=\"name\","));
        assert!(
            body.contains("schemr_http_requests_total{route=\"/search\",status=\"200\"} 1"),
            "{body}"
        );
        assert!(body.contains("schemr_http_request_seconds_bucket{route=\"/search\","));
        server.shutdown();
    }

    #[test]
    fn explain_param_attaches_a_trace() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let (status, plain) = get(addr, "/search?q=patient");
        assert_eq!(status, 200);
        assert!(!plain.contains("<trace"));
        let (status, body) = get(addr, "/search?q=patient&explain=1");
        assert_eq!(status, 200);
        assert!(body.contains("<trace candidates-from-index="), "{body}");
        assert!(body.contains("<phase name=\"candidate_extraction\""));
        assert!(body.contains("<matcher name=\"name\""));
        server.shutdown();
    }

    #[test]
    fn keyword_search_returns_ranked_xml() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), "/search?q=patient+height+gender");
        assert_eq!(status, 200);
        assert!(body.contains("<results"));
        assert!(body.contains("<title>clinic</title>"));
        let clinic_pos = body.find("clinic").unwrap();
        let store_pos = body.find("store").unwrap_or(usize::MAX);
        assert!(clinic_pos < store_pos);
        server.shutdown();
    }

    #[test]
    fn post_fragment_search() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let body = "CREATE TABLE patient (height REAL, gender TEXT)";
        let raw = format!(
            "POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let (status, resp) = request(server.addr(), &raw);
        assert_eq!(status, 200);
        assert!(resp.contains("clinic"));
        server.shutdown();
    }

    #[test]
    fn schema_endpoint_returns_graphml_and_svg() {
        let eng = engine();
        let id = eng.repository().ids()[0];
        let server = SchemrServer::start(eng, ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), &format!("/schema/{id}"));
        assert_eq!(status, 200);
        assert!(body.contains("<graphml"));
        let (status, svg) = get(server.addr(), &format!("/schema/{id}/svg?layout=radial"));
        assert_eq!(status, 200);
        assert!(svg.starts_with("<svg"));
        server.shutdown();
    }

    #[test]
    fn error_paths() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(get(addr, "/schema/zzz").0, 400);
        assert_eq!(get(addr, "/schema/s9999").0, 404);
        assert_eq!(get(addr, "/search").0, 400); // empty query
        assert_eq!(get(addr, "/search?q=patient&limit=abc").0, 400);
        assert_eq!(get(addr, "/schema/s0/svg?layout=spiral").0, 400);
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = SchemrServer::start(
            engine(),
            ServerConfig {
                workers: 4,
                ..Default::default()
            },
        );
        let server = server.unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|_| {
                std::thread::spawn(move || {
                    let (status, _) = get(addr, "/search?q=patient");
                    assert_eq!(status, 200);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn stats_endpoint_reports_repository_and_index() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), "/stats");
        assert_eq!(status, 200);
        assert!(body.contains("schemas=\"2\""), "{body}");
        assert!(body.contains("indexed=\"2\""));
        server.shutdown();
    }

    #[test]
    fn limit_param_caps_results() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let (_, body) = get(server.addr(), "/search?q=id&limit=1");
        assert!(body.contains("count=\"1\""), "{body}");
        server.shutdown();
    }
}
