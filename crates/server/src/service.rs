//! The search service: routing, worker pool, lifecycle.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use schemr::{parse_keywords, SchemrEngine, SearchRequest};
use schemr_model::SchemaId;
use schemr_obs::{MetricsRegistry, LATENCY_BUCKETS};
use schemr_viz::{radial_layout, to_graphml, tree_layout, GraphmlOptions, SvgOptions};

use crate::http::{read_request, Request, Response};
use crate::xml_response::search_response_to_xml;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub bind: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Socket read timeout — a client that stalls mid-request gets a 408
    /// instead of parking a worker forever. `None` disables the timeout.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout for the response. `None` disables it.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:0".to_string(),
            workers: 4,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// A running Schemr search service.
pub struct SchemrServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl SchemrServer {
    /// Bind and start serving in background threads.
    pub fn start(engine: Arc<SchemrEngine>, config: ServerConfig) -> std::io::Result<SchemrServer> {
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = unbounded();

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers.max(1) {
            let rx = rx.clone();
            let engine = engine.clone();
            let read_timeout = config.read_timeout;
            let write_timeout = config.write_timeout;
            workers.push(std::thread::spawn(move || {
                while let Ok(mut stream) = rx.recv() {
                    // Bound how long one connection can hold this worker:
                    // without timeouts a client that never finishes its
                    // request (or never drains the response) pins the
                    // thread indefinitely.
                    let _ = stream.set_read_timeout(read_timeout);
                    let _ = stream.set_write_timeout(write_timeout);
                    let started = Instant::now();
                    let (label, response) = match read_request(&mut stream) {
                        Ok(request) => (route_label(&request.path), route(&engine, &request)),
                        Err(e) if e.is_timeout() => ("timeout", Response::request_timeout()),
                        Err(e) => ("malformed", Response::bad_request(e.to_string())),
                    };
                    record_request(engine.metrics_registry(), label, &response, started);
                    let _ = response.write_to(&mut stream);
                }
            }));
        }

        let stop2 = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = stream {
                    let _ = tx.send(stream);
                }
            }
            drop(tx); // close the channel so workers exit
        });

        Ok(SchemrServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting and join all threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for SchemrServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_threads();
        }
    }
}

/// Normalize a request path to a bounded label set: known routes keep
/// their name, id-carrying routes collapse to their prefix, and every
/// unknown path becomes one shared `other` label — a scanner probing
/// random URLs must not mint unbounded metric series.
fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/stats" => "/stats",
        "/search" => "/search",
        "/debug/traces" => "/debug/traces",
        "/debug/slowlog" => "/debug/slowlog",
        _ if path.starts_with("/debug/traces/") => "/debug/traces/{id}",
        _ if path.starts_with("/schema/") => "/schema",
        _ => "other",
    }
}

/// Record one served request into the shared registry.
fn record_request(
    registry: &Arc<MetricsRegistry>,
    label: &str,
    response: &Response,
    started: Instant,
) {
    let status = match response.status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        408 => "408",
        503 => "503",
        _ => "other",
    };
    registry
        .counter_with(
            "schemr_http_requests_total",
            "HTTP requests served, by route and status.",
            &[("route", label), ("status", status)],
        )
        .inc();
    registry
        .histogram_with(
            "schemr_http_request_seconds",
            "Wall time from request read to response ready, by route.",
            &[("route", label)],
            LATENCY_BUCKETS,
        )
        .observe_duration(started.elapsed());
}

/// Dispatch a request to a handler.
fn route(engine: &SchemrEngine, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(engine),
        ("GET", "/metrics") => Response::ok(
            "text/plain; version=0.0.4",
            engine.metrics_registry().render_prometheus(),
        ),
        ("GET", "/stats") => handle_stats(engine),
        ("GET" | "POST", "/search") => handle_search(engine, request),
        ("GET", "/debug/traces") => handle_traces(engine, request),
        ("GET", "/debug/slowlog") => handle_slowlog(engine, request),
        ("GET", _) if request.path.starts_with("/debug/traces/") => {
            handle_trace_by_id(engine, &request.path["/debug/traces/".len()..])
        }
        _ if request.path.starts_with("/schema/") => handle_schema(engine, request),
        _ => Response::not_found(format!("no route for {} {}", request.method, request.path)),
    }
}

fn handle_healthz(engine: &SchemrEngine) -> Response {
    let live_docs = engine.index_stats().live_docs;
    let status = if live_docs == 0 { "unavailable" } else { "ok" };
    let body = format!(
        "{{\"status\":\"{}\",\"revision\":{},\"indexed_docs\":{}}}",
        status,
        engine.repository().revision(),
        live_docs
    );
    if live_docs == 0 {
        Response::unavailable("application/json", body)
    } else {
        Response::ok("application/json", body)
    }
}

/// Parse a `limit` query param with a default and an upper bound.
fn limit_param(request: &Request, default: usize, max: usize) -> usize {
    request
        .param("limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default)
        .min(max)
}

fn handle_traces(engine: &SchemrEngine, request: &Request) -> Response {
    let limit = limit_param(request, 50, 1000);
    let summaries: Vec<String> = engine
        .tracer()
        .recent(limit)
        .iter()
        .map(|t| t.summary_json())
        .collect();
    Response::ok("application/json", format!("[{}]", summaries.join(",")))
}

fn handle_trace_by_id(engine: &SchemrEngine, id: &str) -> Response {
    match engine.tracer().get(id) {
        Some(trace) => Response::ok("application/json", trace.to_json()),
        None => Response::not_found(format!("no retained trace with id `{id}`")),
    }
}

fn handle_slowlog(engine: &SchemrEngine, request: &Request) -> Response {
    let limit = limit_param(request, 50, 1000);
    // The slowlog keeps few entries by design, so return the full span
    // trees — that's what makes a slow query diagnosable after the fact.
    let entries: Vec<String> = engine
        .tracer()
        .slow(limit)
        .iter()
        .map(|t| t.to_json())
        .collect();
    Response::ok("application/json", format!("[{}]", entries.join(",")))
}

fn handle_stats(engine: &SchemrEngine) -> Response {
    let repo = engine.repository();
    let ix = engine.index_stats();
    let xml = format!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<stats schemas=\"{}\" revision=\"{}\" indexed=\"{}\" terms=\"{}\" postings=\"{}\"/>\n",
        repo.len(),
        repo.revision(),
        ix.live_docs,
        ix.distinct_terms,
        ix.postings
    );
    Response::ok("text/xml", xml)
}

fn handle_search(engine: &SchemrEngine, request: &Request) -> Response {
    let mut sr = SearchRequest {
        keywords: request.param("q").map(parse_keywords).unwrap_or_default(),
        ..Default::default()
    };
    if request.method == "POST" && !request.body.trim().is_empty() {
        match schemr_parse::parse_fragment("fragment", &request.body) {
            Ok(fragment) => sr.fragments.push(fragment),
            Err(e) => return Response::bad_request(format!("fragment: {e}")),
        }
    }
    if let Some(limit) = request.param("limit") {
        match limit.parse::<usize>() {
            Ok(n) => sr.limit = Some(n),
            Err(_) => return Response::bad_request("limit must be an integer"),
        }
    }
    sr.explain = matches!(request.param("explain"), Some("1") | Some("true"));
    // Propagate a client-supplied trace id; the engine validates it and
    // falls back to a generated one. Either way the id actually used is
    // echoed back in `X-Schemr-Trace-Id`.
    sr.trace_id = request.headers.get("x-schemr-trace-id").cloned();
    match engine.search_detailed(&sr) {
        Ok(response) => {
            let mut http = Response::ok("text/xml", search_response_to_xml(&response));
            if let Some(id) = &response.trace_id {
                http = http.with_header("X-Schemr-Trace-Id", id);
            }
            http
        }
        Err(e) => Response::bad_request(e.to_string()),
    }
}

fn handle_schema(engine: &SchemrEngine, request: &Request) -> Response {
    if request.method != "GET" {
        return Response {
            status: 405,
            content_type: "text/plain",
            body: "only GET is supported for /schema".to_string(),
            headers: Vec::new(),
        };
    }
    let rest = &request.path["/schema/".len()..];
    let (id_part, tail) = rest.split_once('/').unwrap_or((rest, ""));
    let Ok(id) = id_part.parse::<SchemaId>() else {
        return Response::bad_request(format!("bad schema id `{id_part}`"));
    };
    let Some(stored) = engine.repository().get(id) else {
        return Response::not_found(format!("schema {id} not found"));
    };
    let depth = request
        .param("depth")
        .and_then(|d| d.parse::<usize>().ok())
        .unwrap_or(3);
    match tail {
        "" => {
            let xml = to_graphml(
                &stored.schema,
                &GraphmlOptions {
                    max_depth: Some(depth),
                    scores: vec![],
                },
            );
            Response::ok("application/graphml+xml", xml)
        }
        "svg" => {
            let roots = stored.schema.roots();
            let layout = match request.param("layout").unwrap_or("tree") {
                "radial" => radial_layout(&stored.schema, &roots, depth),
                "tree" => tree_layout(&stored.schema, &roots, depth),
                other => return Response::bad_request(format!("unknown layout `{other}`")),
            };
            let svg = schemr_viz::render_svg(&stored.schema, &layout, &SvgOptions::default());
            Response::ok("image/svg+xml", svg)
        }
        other => Response::not_found(format!("no such schema view `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_repo::{import::import_str, Repository};
    use std::io::{Read, Write};

    fn engine() -> Arc<SchemrEngine> {
        let repo = Arc::new(Repository::new());
        import_str(
            &repo,
            "clinic",
            "rural health clinic",
            "CREATE TABLE patient (id INT, height REAL, gender TEXT, diagnosis TEXT)",
        )
        .unwrap();
        import_str(
            &repo,
            "store",
            "a web shop",
            "CREATE TABLE orders (id INT, total DECIMAL, quantity INT, customer TEXT)",
        )
        .unwrap();
        let engine = Arc::new(SchemrEngine::new(repo));
        engine.reindex_full();
        engine
    }

    fn get(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
        request(addr, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
    }

    /// Like `get`, but returns the raw response text (headers included).
    fn get_raw(addr: std::net::SocketAddr, target: &str, extra_headers: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!("GET {target} HTTP/1.1\r\nHost: t\r\n{extra_headers}\r\n").as_bytes(),
            )
            .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        buf
    }

    fn request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        let status: u16 = buf
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = buf
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn healthz_reports_revision_and_doc_count() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"revision\":2"), "{body}");
        assert!(body.contains("\"indexed_docs\":2"), "{body}");
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_renders_engine_and_http_families() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let (status, _) = get(addr, "/search?q=patient");
        assert_eq!(status, 200);
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE schemr_search_requests_total counter"));
        assert!(body.contains("schemr_search_requests_total 1"), "{body}");
        assert!(
            body.contains("schemr_phase_seconds_bucket{phase=\"matching\","),
            "{body}"
        );
        assert!(body.contains("schemr_matcher_seconds_bucket{matcher=\"name\","));
        assert!(
            body.contains("# TYPE schemr_match_artifact_cache_hits_total counter"),
            "{body}"
        );
        assert!(
            body.contains("schemr_match_artifact_cache_misses_total"),
            "{body}"
        );
        assert!(
            body.contains("schemr_http_requests_total{route=\"/search\",status=\"200\"} 1"),
            "{body}"
        );
        assert!(body.contains("schemr_http_request_seconds_bucket{route=\"/search\","));
        server.shutdown();
    }

    #[test]
    fn explain_param_attaches_a_trace() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let (status, plain) = get(addr, "/search?q=patient");
        assert_eq!(status, 200);
        assert!(!plain.contains("<trace"));
        let (status, body) = get(addr, "/search?q=patient&explain=1");
        assert_eq!(status, 200);
        assert!(body.contains("<trace candidates-from-index="), "{body}");
        assert!(body.contains("<phase name=\"candidate_extraction\""));
        assert!(body.contains("<matcher name=\"name\""));
        server.shutdown();
    }

    #[test]
    fn keyword_search_returns_ranked_xml() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), "/search?q=patient+height+gender");
        assert_eq!(status, 200);
        assert!(body.contains("<results"));
        assert!(body.contains("<title>clinic</title>"));
        let clinic_pos = body.find("clinic").unwrap();
        let store_pos = body.find("store").unwrap_or(usize::MAX);
        assert!(clinic_pos < store_pos);
        server.shutdown();
    }

    #[test]
    fn post_fragment_search() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let body = "CREATE TABLE patient (height REAL, gender TEXT)";
        let raw = format!(
            "POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let (status, resp) = request(server.addr(), &raw);
        assert_eq!(status, 200);
        assert!(resp.contains("clinic"));
        server.shutdown();
    }

    #[test]
    fn schema_endpoint_returns_graphml_and_svg() {
        let eng = engine();
        let id = eng.repository().ids()[0];
        let server = SchemrServer::start(eng, ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), &format!("/schema/{id}"));
        assert_eq!(status, 200);
        assert!(body.contains("<graphml"));
        let (status, svg) = get(server.addr(), &format!("/schema/{id}/svg?layout=radial"));
        assert_eq!(status, 200);
        assert!(svg.starts_with("<svg"));
        server.shutdown();
    }

    #[test]
    fn error_paths() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(get(addr, "/schema/zzz").0, 400);
        assert_eq!(get(addr, "/schema/s9999").0, 404);
        assert_eq!(get(addr, "/search").0, 400); // empty query
        assert_eq!(get(addr, "/search?q=patient&limit=abc").0, 400);
        assert_eq!(get(addr, "/schema/s0/svg?layout=spiral").0, 400);
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = SchemrServer::start(
            engine(),
            ServerConfig {
                workers: 4,
                ..Default::default()
            },
        );
        let server = server.unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|_| {
                std::thread::spawn(move || {
                    let (status, _) = get(addr, "/search?q=patient");
                    assert_eq!(status, 200);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn healthz_returns_503_on_an_empty_index() {
        let repo = Arc::new(Repository::new());
        let eng = Arc::new(SchemrEngine::new(repo));
        eng.reindex_full();
        let server = SchemrServer::start(eng, ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), "/healthz");
        assert_eq!(status, 503);
        assert!(body.contains("\"status\":\"unavailable\""), "{body}");
        assert!(body.contains("\"indexed_docs\":0"));
        // The 503 lands in the request metrics under its own status label.
        let (_, metrics) = get(server.addr(), "/metrics");
        assert!(
            metrics.contains("schemr_http_requests_total{route=\"/healthz\",status=\"503\"} 1"),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn health_and_metrics_set_content_type() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let health = get_raw(server.addr(), "/healthz", "");
        assert!(
            health.contains("Content-Type: application/json; charset=utf-8\r\n"),
            "{health}"
        );
        let metrics = get_raw(server.addr(), "/metrics", "");
        assert!(
            metrics.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn client_trace_ids_round_trip_through_debug_traces() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let raw = get_raw(
            addr,
            "/search?q=patient+height",
            "X-Schemr-Trace-Id: my-req-7\r\n",
        );
        assert!(raw.starts_with("HTTP/1.1 200"));
        assert!(raw.contains("X-Schemr-Trace-Id: my-req-7\r\n"), "{raw}");
        // The span tree is retrievable by that id and covers all three
        // phases.
        let (status, body) = get(addr, "/debug/traces/my-req-7");
        assert_eq!(status, 200);
        assert!(body.contains("\"trace_id\":\"my-req-7\""), "{body}");
        assert!(body.contains("\"query\":\"patient height\""));
        for phase in ["candidate_extraction", "matching", "tightness_scoring"] {
            assert!(body.contains(&format!("\"name\":\"{phase}\"")), "{body}");
        }
        // The listing shows it too.
        let (status, listing) = get(addr, "/debug/traces");
        assert_eq!(status, 200);
        assert!(listing.contains("my-req-7"), "{listing}");
        // Searches without the header still get an id assigned.
        let raw = get_raw(addr, "/search?q=gender", "");
        assert!(raw.contains("X-Schemr-Trace-Id: "), "{raw}");
        // Unknown ids are 404.
        assert_eq!(get(addr, "/debug/traces/never-seen").0, 404);
        server.shutdown();
    }

    #[test]
    fn slow_searches_appear_in_the_slowlog() {
        use schemr::EngineConfig;
        let repo = Arc::new(Repository::new());
        import_str(
            &repo,
            "clinic",
            "rural health clinic",
            "CREATE TABLE patient (id INT, height REAL, gender TEXT)",
        )
        .unwrap();
        // Threshold zero: every search is "slow".
        let eng = Arc::new(SchemrEngine::with_config(
            repo,
            EngineConfig {
                trace: schemr_obs::TracerConfig {
                    slow_threshold: std::time::Duration::ZERO,
                    ..Default::default()
                },
                ..Default::default()
            },
        ));
        eng.reindex_full();
        let server = SchemrServer::start(eng, ServerConfig::default()).unwrap();
        let addr = server.addr();
        let raw = get_raw(addr, "/search?q=patient", "X-Schemr-Trace-Id: slow-1\r\n");
        assert!(raw.starts_with("HTTP/1.1 200"));
        let (status, body) = get(addr, "/debug/slowlog");
        assert_eq!(status, 200);
        assert!(body.contains("\"trace_id\":\"slow-1\""), "{body}");
        // Full span trees, not just summaries.
        assert!(body.contains("\"spans\":["), "{body}");
        server.shutdown();
    }

    #[test]
    fn unknown_routes_share_one_metric_label() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        assert_eq!(get(addr, "/totally/made/up").0, 404);
        assert_eq!(get(addr, "/another-random-path-42").0, 404);
        let (_, metrics) = get(addr, "/metrics");
        assert!(
            metrics.contains("schemr_http_requests_total{route=\"other\",status=\"404\"} 2"),
            "{metrics}"
        );
        // And the id-carrying debug route collapses too.
        let _ = get(addr, "/debug/traces/some-id");
        let (_, metrics) = get(addr, "/metrics");
        assert!(
            metrics.contains(
                "schemr_http_requests_total{route=\"/debug/traces/{id}\",status=\"404\"} 1"
            ),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn stalled_clients_get_408_and_free_the_worker() {
        let server = SchemrServer::start(
            engine(),
            ServerConfig {
                read_timeout: Some(Duration::from_millis(200)),
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        // A partial request with no terminating blank line: the worker
        // must time out reading it rather than block forever.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /search?q=patient HTTP/1.1\r\nHost: t")
            .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 408 Request Timeout\r\n"), "{buf}");
        drop(stream);
        // The worker is free again and the timeout is visible in metrics.
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(
            metrics.contains("schemr_http_requests_total{route=\"timeout\",status=\"408\"} 1"),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn stats_endpoint_reports_repository_and_index() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let (status, body) = get(server.addr(), "/stats");
        assert_eq!(status, 200);
        assert!(body.contains("schemas=\"2\""), "{body}");
        assert!(body.contains("indexed=\"2\""));
        server.shutdown();
    }

    #[test]
    fn limit_param_caps_results() {
        let server = SchemrServer::start(engine(), ServerConfig::default()).unwrap();
        let (_, body) = get(server.addr(), "/search?q=id&limit=1");
        assert!(body.contains("count=\"1\""), "{body}");
        server.shutdown();
    }
}
