//! A minimal HTTP/1.1 parser and response writer — just enough protocol
//! for the search service, implemented from scratch on `std::io`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Decoded path (`/schema/12`), without the query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: HashMap<String, String>,
    /// Lowercased header map.
    pub headers: HashMap<String, String>,
    /// Request body (empty unless Content-Length was sent).
    pub body: String,
}

impl Request {
    /// A query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }
}

/// HTTP-layer errors.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or encoding.
    Malformed(&'static str),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::Io(e) => write!(f, "http I/O error: {e}"),
        }
    }
}

impl HttpError {
    /// True when the underlying I/O failed because a socket timeout
    /// elapsed (`WouldBlock` on Unix, `TimedOut` on Windows — both kinds
    /// are produced by `set_read_timeout`).
    pub fn is_timeout(&self) -> bool {
        match self {
            HttpError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            HttpError::Malformed(_) => false,
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Percent-decode a URL component (`%20` → space, `+` → space).
pub fn percent_decode(s: &str) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                if i + 2 > bytes.len() {
                    return Err(HttpError::Malformed("truncated percent escape"));
                }
                let hex = s
                    .get(i + 1..i + 3)
                    .ok_or(HttpError::Malformed("truncated percent escape"))?;
                let v = u8::from_str_radix(hex, 16)
                    .map_err(|_| HttpError::Malformed("bad percent escape"))?;
                out.push(v);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::Malformed("decoded bytes are not UTF-8"))
}

/// Percent-encode a URL component.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Parse the query string into a decoded map.
fn parse_query(qs: &str) -> Result<HashMap<String, String>, HttpError> {
    let mut map = HashMap::new();
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        map.insert(percent_decode(k)?, percent_decode(v)?);
    }
    Ok(map)
}

/// Read one request from a stream.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?;
    let _version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;

    let (raw_path, raw_query) = target.split_once('?').unwrap_or((target, ""));
    let path = percent_decode(raw_path)?;
    let query = parse_query(raw_query)?;

    let mut headers = HashMap::new();
    loop {
        let mut h = String::new();
        reader.read_line(&mut h)?;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let (name, value) = h
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        headers.insert(name.trim().to_lowercase(), value.trim().to_string());
    }

    let mut body = String::new();
    if let Some(len) = headers.get("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed("bad content-length"))?;
        if len > 16 * 1024 * 1024 {
            return Err(HttpError::Malformed("body too large"));
        }
        let mut buf = vec![0u8; len];
        reader.read_exact(&mut buf)?;
        body = String::from_utf8(buf).map_err(|_| HttpError::Malformed("body is not UTF-8"))?;
    }

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type.
    pub content_type: &'static str,
    /// Body.
    pub body: String,
    /// Extra response headers (e.g. `X-Schemr-Trace-Id`), emitted after
    /// Content-Type.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// 200 with a content type.
    pub fn ok(content_type: &'static str, body: impl Into<String>) -> Self {
        Response {
            status: 200,
            content_type,
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// 404 with a plain-text message.
    pub fn not_found(msg: impl Into<String>) -> Self {
        Response {
            status: 404,
            content_type: "text/plain",
            body: msg.into(),
            headers: Vec::new(),
        }
    }

    /// 400 with a plain-text message.
    pub fn bad_request(msg: impl Into<String>) -> Self {
        Response {
            status: 400,
            content_type: "text/plain",
            body: msg.into(),
            headers: Vec::new(),
        }
    }

    /// 408 — the client held the connection open without completing a
    /// request before the socket read timeout.
    pub fn request_timeout() -> Self {
        Response {
            status: 408,
            content_type: "text/plain",
            body: "request not received before the read timeout".to_string(),
            headers: Vec::new(),
        }
    }

    /// 503 with a body — `/healthz` on an empty index, so orchestrators
    /// don't route traffic to a node with nothing to serve.
    pub fn unavailable(content_type: &'static str, body: impl Into<String>) -> Self {
        Response {
            status: 503,
            content_type,
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// Attach an extra response header, builder-style. Header values must
    /// already be CR/LF-free (callers validate ids before echoing them).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serialize and write to a stream.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            408 => "Request Timeout",
            405 => "Method Not Allowed",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        };
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}; charset=utf-8\r\n",
            self.status, reason, self.content_type,
        )?;
        for (name, value) in &self.headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(
            stream,
            "Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.body.len(),
            self.body
        )?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_get_request() {
        let raw = "GET /search?q=patient+height&limit=5 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut raw.as_bytes()).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/search");
        assert_eq!(req.param("q"), Some("patient height"));
        assert_eq!(req.param("limit"), Some("5"));
        assert_eq!(req.headers.get("host").map(String::as_str), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let body = "CREATE TABLE t (a INT)";
        let raw = format!(
            "POST /search HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let req = read_request(&mut raw.as_bytes()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, body);
    }

    #[test]
    fn percent_decoding_and_encoding_round_trip() {
        let original = "patient height & \"gender\"/100%";
        let encoded = percent_encode(original);
        assert_eq!(percent_decode(&encoded).unwrap(), original);
        assert_eq!(percent_decode("a%20b+c").unwrap(), "a b c");
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%2").is_err());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(read_request(&mut "\r\n".as_bytes()).is_err());
        assert!(read_request(&mut "GET\r\n\r\n".as_bytes()).is_err());
        assert!(read_request(&mut "GET / HTTP/1.1\r\nBadHeader\r\n\r\n".as_bytes()).is_err());
    }

    #[test]
    fn response_serialization() {
        let mut buf = Vec::new();
        Response::ok("text/xml", "<a/>").write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.ends_with("<a/>"));
    }

    #[test]
    fn extra_headers_and_503_serialize() {
        let mut buf = Vec::new();
        Response::unavailable("application/json", "{}")
            .with_header("X-Schemr-Trace-Id", "t7")
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("X-Schemr-Trace-Id: t7\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
    }

    #[test]
    fn timeout_errors_are_classified_and_serialized() {
        let timed_out: HttpError =
            std::io::Error::new(std::io::ErrorKind::WouldBlock, "timed out").into();
        assert!(timed_out.is_timeout());
        let broken: HttpError =
            std::io::Error::new(std::io::ErrorKind::ConnectionReset, "reset").into();
        assert!(!broken.is_timeout());
        assert!(!HttpError::Malformed("x").is_timeout());

        let mut buf = Vec::new();
        Response::request_timeout().write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 408 Request Timeout\r\n"),
            "{text}"
        );
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert!(read_request(&mut raw.as_bytes()).is_err());
    }
}
