//! A minimal HTTP/1.1 parser and response writer — just enough protocol
//! for the search service, implemented from scratch on `std::io`.
//!
//! Parsing is *bounded*: every dimension of attacker-controlled input
//! (request-line bytes, per-header bytes, header count, total header
//! bytes, body bytes) has a hard cap in [`HttpLimits`], and crossing a
//! cap fails fast with a classified error instead of buffering without
//! limit. The reader takes any [`BufRead`] so a keep-alive connection
//! can park its buffer between requests without losing pipelined bytes.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::{BufRead, Write};

/// Hard caps on request parsing. All byte limits exclude the CRLF line
/// terminators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Longest accepted request line (`GET /path?query HTTP/1.1`).
    /// Crossing it is a 400.
    pub max_request_line_bytes: usize,
    /// Longest accepted single header line. Crossing it is a 431.
    pub max_header_bytes: usize,
    /// Most header lines accepted per request. Crossing it is a 431.
    pub max_header_count: usize,
    /// Cap on the sum of all header-line bytes. Crossing it is a 431.
    pub max_total_header_bytes: usize,
    /// Largest accepted `Content-Length` body. Crossing it is a 400.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_request_line_bytes: 8 * 1024,
            max_header_bytes: 8 * 1024,
            max_header_count: 64,
            max_total_header_bytes: 32 * 1024,
            max_body_bytes: 16 * 1024 * 1024,
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Decoded path (`/schema/12`), without the query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: HashMap<String, String>,
    /// Lowercased header map. Duplicate headers are comma-combined
    /// (RFC 9110 §5.2), except `Content-Length`, where conflicting
    /// duplicates are rejected outright.
    pub headers: HashMap<String, String>,
    /// Protocol version token (`HTTP/1.1`).
    pub version: String,
    /// Request body (empty unless Content-Length was sent).
    pub body: String,
}

impl Request {
    /// A query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// Whether this request asks to keep the connection open: HTTP/1.1
    /// defaults to keep-alive unless `Connection: close`; HTTP/1.0 (and
    /// anything older) defaults to close unless `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        let connection = self
            .headers
            .get("connection")
            .map(|v| v.to_ascii_lowercase());
        if self.version == "HTTP/1.1" {
            connection.as_deref() != Some("close")
        } else {
            connection.as_deref() == Some("keep-alive")
        }
    }
}

/// HTTP-layer errors.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or encoding (→ 400).
    Malformed(&'static str),
    /// The request line crossed [`HttpLimits::max_request_line_bytes`]
    /// (→ 400).
    RequestLineTooLong,
    /// A header crossed one of the header limits (→ 431).
    HeadersTooLarge(&'static str),
    /// The peer closed the connection cleanly before sending any byte of
    /// a request (end of a keep-alive session, or a port probe). Not an
    /// error worth answering — just drop the connection.
    Closed,
    /// The socket read timeout elapsed before the peer sent any byte of
    /// a request — an idle keep-alive connection. Close without a 408.
    Idle,
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::RequestLineTooLong => write!(f, "request line exceeds the size limit"),
            HttpError::HeadersTooLarge(what) => write!(f, "request headers too large: {what}"),
            HttpError::Closed => write!(f, "connection closed before a request"),
            HttpError::Idle => write!(f, "connection idle past the timeout"),
            HttpError::Io(e) => write!(f, "http I/O error: {e}"),
        }
    }
}

impl HttpError {
    /// True when the underlying I/O failed because a socket timeout
    /// elapsed (`WouldBlock` on Unix, `TimedOut` on Windows — both kinds
    /// are produced by `set_read_timeout`).
    pub fn is_timeout(&self) -> bool {
        match self {
            HttpError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Percent-decode with the byte-level `%XX` rules shared by path and
/// query decoding; `plus_is_space` selects the query-string `+` rewrite.
fn percent_decode_inner(s: &str, plus_is_space: bool) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = s
                    .get(i + 1..i + 3)
                    .ok_or(HttpError::Malformed("truncated percent escape"))?;
                let v = u8::from_str_radix(hex, 16)
                    .map_err(|_| HttpError::Malformed("bad percent escape"))?;
                out.push(v);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::Malformed("decoded bytes are not UTF-8"))
}

/// Percent-decode a query-string component (`%20` → space, `+` → space).
pub fn percent_decode(s: &str) -> Result<String, HttpError> {
    percent_decode_inner(s, true)
}

/// Percent-decode a request *path*. `+` is a literal plus in a path —
/// only query strings use the `+`-for-space form encoding — so
/// `/schema/a+b` must resolve the resource named `a+b`.
pub fn percent_decode_path(s: &str) -> Result<String, HttpError> {
    percent_decode_inner(s, false)
}

/// Percent-encode a URL component.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Parse the query string into a decoded map.
fn parse_query(qs: &str) -> Result<HashMap<String, String>, HttpError> {
    let mut map = HashMap::new();
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        map.insert(percent_decode(k)?, percent_decode(v)?);
    }
    Ok(map)
}

/// Read one CRLF/LF-terminated line of at most `max` bytes (terminator
/// excluded). Returns `Ok(None)` on clean EOF before any byte, and
/// `overflow()` when the line crosses `max` — without buffering more
/// than `max` bytes no matter how much the peer sends.
///
/// With `idle_on_empty_timeout`, a read timeout *before any byte of the
/// line* is classified [`HttpError::Idle`] (a keep-alive connection with
/// nothing to say). A timeout after partial bytes always stays an
/// [`HttpError::Io`] — that's a stalled request (slowloris), which
/// deserves a 408, not a silent close.
fn read_line_bounded(
    reader: &mut impl BufRead,
    max: usize,
    idle_on_empty_timeout: bool,
    overflow: impl Fn() -> HttpError,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (consumed, done) = {
            let buf = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e) => {
                    let timed_out = matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    );
                    if timed_out && line.is_empty() && idle_on_empty_timeout {
                        return Err(HttpError::Idle);
                    }
                    return Err(HttpError::Io(e));
                }
            };
            if buf.is_empty() {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("connection closed mid-line"));
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    // The cap is on line *content*: the CR of the CRLF
                    // terminator doesn't count against it.
                    let ends_with_cr = if pos > 0 {
                        buf[pos - 1] == b'\r'
                    } else {
                        line.last() == Some(&b'\r')
                    };
                    if line.len() + pos - usize::from(ends_with_cr) > max {
                        return Err(overflow());
                    }
                    line.extend_from_slice(&buf[..pos]);
                    (pos + 1, true)
                }
                None => {
                    // No terminator yet; the last byte might turn out to
                    // be the CR of a CRLF, so allow one byte of slack —
                    // the exact check happens when the line completes.
                    if line.len() + buf.len() > max + 1 {
                        return Err(overflow());
                    }
                    line.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if done {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| HttpError::Malformed("request bytes are not UTF-8"));
        }
    }
}

/// Read one request from a buffered stream, enforcing `limits`.
///
/// The caller owns the `BufRead` so keep-alive connections keep one
/// buffer across requests (bytes of a pipelined next request already
/// read into the buffer are not lost).
pub fn read_request(reader: &mut impl BufRead, limits: &HttpLimits) -> Result<Request, HttpError> {
    let line = match read_line_bounded(reader, limits.max_request_line_bytes, true, || {
        HttpError::RequestLineTooLong
    }) {
        Ok(Some(line)) => line,
        // EOF before any byte: the peer hung up between requests.
        Ok(None) => return Err(HttpError::Closed),
        // `Idle` (timeout before any byte) bubbles up; a timeout after
        // partial bytes stays `Io` and earns a 408 downstream.
        Err(e) => return Err(e),
    };
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?
        .to_string();

    let (raw_path, raw_query) = target.split_once('?').unwrap_or((target, ""));
    let path = percent_decode_path(raw_path)?;
    let query = parse_query(raw_query)?;

    let mut headers = HashMap::new();
    let mut header_count = 0usize;
    let mut header_bytes = 0usize;
    loop {
        // Timeouts between headers are mid-request stalls, never idle.
        let h = read_line_bounded(reader, limits.max_header_bytes, false, || {
            HttpError::HeadersTooLarge("header line exceeds the size limit")
        })?
        .ok_or(HttpError::Malformed("connection closed inside headers"))?;
        if h.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > limits.max_header_count {
            return Err(HttpError::HeadersTooLarge("too many headers"));
        }
        header_bytes += h.len();
        if header_bytes > limits.max_total_header_bytes {
            return Err(HttpError::HeadersTooLarge(
                "total header bytes exceed the limit",
            ));
        }
        let (name, value) = h
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        let name = name.trim().to_lowercase();
        let value = value.trim();
        match headers.entry(name) {
            Entry::Vacant(slot) => {
                slot.insert(value.to_string());
            }
            // Repeated headers are comma-combined per RFC 9110 §5.2 —
            // except Content-Length, where two different values are the
            // classic request-smuggling vector and get rejected.
            Entry::Occupied(mut slot) => {
                if slot.key() == "content-length" {
                    if slot.get() != value {
                        return Err(HttpError::Malformed("conflicting content-length headers"));
                    }
                } else {
                    let joined = slot.get_mut();
                    joined.push_str(", ");
                    joined.push_str(value);
                }
            }
        }
    }

    let mut body = String::new();
    if let Some(len) = headers.get("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed("bad content-length"))?;
        if len > limits.max_body_bytes {
            return Err(HttpError::Malformed("body too large"));
        }
        let mut buf = vec![0u8; len];
        reader.read_exact(&mut buf)?;
        body = String::from_utf8(buf).map_err(|_| HttpError::Malformed("body is not UTF-8"))?;
    }

    Ok(Request {
        method,
        path,
        query,
        headers,
        version,
        body,
    })
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type.
    pub content_type: &'static str,
    /// Body.
    pub body: String,
    /// Extra response headers (e.g. `X-Schemr-Trace-Id`), emitted after
    /// Content-Type. `Content-Length` and `Connection` entries are
    /// ignored here — the writer owns both and callers must not be able
    /// to emit conflicting values.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// 200 with a content type.
    pub fn ok(content_type: &'static str, body: impl Into<String>) -> Self {
        Response {
            status: 200,
            content_type,
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// 404 with a plain-text message.
    pub fn not_found(msg: impl Into<String>) -> Self {
        Response {
            status: 404,
            content_type: "text/plain",
            body: msg.into(),
            headers: Vec::new(),
        }
    }

    /// 400 with a plain-text message.
    pub fn bad_request(msg: impl Into<String>) -> Self {
        Response {
            status: 400,
            content_type: "text/plain",
            body: msg.into(),
            headers: Vec::new(),
        }
    }

    /// 403 — the endpoint is restricted to loopback clients.
    pub fn forbidden(msg: impl Into<String>) -> Self {
        Response {
            status: 403,
            content_type: "text/plain",
            body: msg.into(),
            headers: Vec::new(),
        }
    }

    /// 408 — the client held the connection open without completing a
    /// request before the socket read timeout.
    pub fn request_timeout() -> Self {
        Response {
            status: 408,
            content_type: "text/plain",
            body: "request not received before the read timeout".to_string(),
            headers: Vec::new(),
        }
    }

    /// 431 — some header limit was crossed.
    pub fn headers_too_large(msg: impl Into<String>) -> Self {
        Response {
            status: 431,
            content_type: "text/plain",
            body: msg.into(),
            headers: Vec::new(),
        }
    }

    /// 503 with a body — `/healthz` on an empty index, so orchestrators
    /// don't route traffic to a node with nothing to serve.
    pub fn unavailable(content_type: &'static str, body: impl Into<String>) -> Self {
        Response {
            status: 503,
            content_type,
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// 503 + `Retry-After` — the admission queue is full and this
    /// connection is being shed instead of queued without bound.
    pub fn overloaded(retry_after_secs: u32) -> Self {
        Response {
            status: 503,
            content_type: "text/plain",
            body: "server saturated, retry later".to_string(),
            headers: vec![("Retry-After".to_string(), retry_after_secs.to_string())],
        }
    }

    /// The response a parse failure earns, by error class. `None` when
    /// the connection should just be dropped without an answer.
    pub fn for_error(e: &HttpError) -> Option<Response> {
        match e {
            HttpError::Closed | HttpError::Idle => None,
            _ if e.is_timeout() => Some(Response::request_timeout()),
            HttpError::RequestLineTooLong => Some(Response::bad_request(e.to_string())),
            HttpError::HeadersTooLarge(_) => Some(Response::headers_too_large(e.to_string())),
            HttpError::Malformed(_) => Some(Response::bad_request(e.to_string())),
            HttpError::Io(_) => None,
        }
    }

    /// Attach an extra response header, builder-style. Header values must
    /// already be CR/LF-free (callers validate ids before echoing them).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serialize and write to a stream, closing the connection.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        self.write_to_conn(stream, false)
    }

    /// Serialize and write to a stream, advertising whether the
    /// connection stays open for another request.
    pub fn write_to_conn(&self, stream: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        };
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}; charset=utf-8\r\n",
            self.status, reason, self.content_type,
        )?;
        for (name, value) in &self.headers {
            // The writer owns framing: a caller-supplied Content-Length
            // or Connection could contradict the computed ones below.
            if name.eq_ignore_ascii_case("content-length")
                || name.eq_ignore_ascii_case("connection")
            {
                continue;
            }
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(
            stream,
            "Content-Length: {}\r\nConnection: {}\r\n\r\n{}",
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
            self.body
        )?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        parse_limited(raw, &HttpLimits::default())
    }

    fn parse_limited(raw: &str, limits: &HttpLimits) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), limits)
    }

    #[test]
    fn parses_a_get_request() {
        let raw = "GET /search?q=patient+height&limit=5 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/search");
        assert_eq!(req.version, "HTTP/1.1");
        assert_eq!(req.param("q"), Some("patient height"));
        assert_eq!(req.param("limit"), Some("5"));
        assert_eq!(req.headers.get("host").map(String::as_str), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let body = "CREATE TABLE t (a INT)";
        let raw = format!(
            "POST /search HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let req = parse(&raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, body);
    }

    #[test]
    fn percent_decoding_and_encoding_round_trip() {
        let original = "patient height & \"gender\"/100%";
        let encoded = percent_encode(original);
        assert_eq!(percent_decode(&encoded).unwrap(), original);
        assert_eq!(percent_decode("a%20b+c").unwrap(), "a b c");
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%2").is_err());
    }

    #[test]
    fn path_decoding_keeps_plus_literal() {
        // `+` means space only in query strings. A path `/schema/a+b`
        // names the resource `a+b`; rewriting it to `a b` resolves the
        // wrong resource.
        assert_eq!(percent_decode_path("/schema/a+b").unwrap(), "/schema/a+b");
        assert_eq!(percent_decode_path("/a%20b+c").unwrap(), "/a b+c");
        assert!(percent_decode_path("%2").is_err());

        let req = parse("GET /schema/a+b?q=x+y HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/schema/a+b");
        assert_eq!(req.param("q"), Some("x y"));
    }

    #[test]
    fn keep_alive_defaults_follow_the_protocol_version() {
        let req = parse("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive(), "1.1 defaults to keep-alive");
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive());
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive(), "1.0 defaults to close");
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(parse("\r\n").is_err());
        assert!(parse("GET\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nBadHeader\r\n\r\n").is_err());
    }

    #[test]
    fn clean_eof_is_classified_as_closed() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
    }

    #[test]
    fn duplicate_benign_headers_comma_combine() {
        let raw = "GET / HTTP/1.1\r\nAccept: text/xml\r\nAccept: image/svg+xml\r\n\r\n";
        let req = parse(raw).unwrap();
        assert_eq!(
            req.headers.get("accept").map(String::as_str),
            Some("text/xml, image/svg+xml")
        );
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        // Two different Content-Length values is the request-smuggling
        // shape: upstream and downstream picking different ones desyncs
        // the connection. Reject outright.
        let raw = "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nab";
        assert!(matches!(parse(raw), Err(HttpError::Malformed(_))));
        // The same value twice is odd but unambiguous.
        let raw = "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nab";
        assert_eq!(parse(raw).unwrap().body, "ab");
    }

    #[test]
    fn oversized_request_lines_are_rejected_without_buffering() {
        let limits = HttpLimits {
            max_request_line_bytes: 64,
            ..HttpLimits::default()
        };
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(500));
        assert!(matches!(
            parse_limited(&raw, &limits),
            Err(HttpError::RequestLineTooLong)
        ));
        // A request line *at* the limit still parses.
        let path = format!("/{}", "a".repeat(64 - "GET  HTTP/1.1".len() - 1));
        let ok = format!("GET {path} HTTP/1.1\r\n\r\n");
        assert_eq!(parse_limited(&ok, &limits).unwrap().path, path);
    }

    #[test]
    fn oversized_headers_are_rejected() {
        let limits = HttpLimits {
            max_header_bytes: 64,
            max_header_count: 4,
            max_total_header_bytes: 128,
            ..HttpLimits::default()
        };
        // One huge header line.
        let raw = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "v".repeat(500));
        assert!(matches!(
            parse_limited(&raw, &limits),
            Err(HttpError::HeadersTooLarge(_))
        ));
        // Too many headers.
        let many: String = (0..8).map(|i| format!("X-{i}: v\r\n")).collect();
        let raw = format!("GET / HTTP/1.1\r\n{many}\r\n");
        assert!(matches!(
            parse_limited(&raw, &limits),
            Err(HttpError::HeadersTooLarge(_))
        ));
        // Total header bytes.
        let raw = format!(
            "GET / HTTP/1.1\r\nX-A: {v}\r\nX-B: {v}\r\nX-C: {v}\r\n\r\n",
            v = "v".repeat(50)
        );
        assert!(matches!(
            parse_limited(&raw, &limits),
            Err(HttpError::HeadersTooLarge(_))
        ));
    }

    #[test]
    fn parse_errors_map_to_responses() {
        assert_eq!(
            Response::for_error(&HttpError::RequestLineTooLong)
                .unwrap()
                .status,
            400
        );
        assert_eq!(
            Response::for_error(&HttpError::HeadersTooLarge("x"))
                .unwrap()
                .status,
            431
        );
        assert_eq!(
            Response::for_error(&HttpError::Malformed("x"))
                .unwrap()
                .status,
            400
        );
        let timeout: HttpError =
            std::io::Error::new(std::io::ErrorKind::WouldBlock, "timed out").into();
        assert_eq!(Response::for_error(&timeout).unwrap().status, 408);
        assert!(Response::for_error(&HttpError::Closed).is_none());
        assert!(Response::for_error(&HttpError::Idle).is_none());
    }

    #[test]
    fn response_serialization() {
        let mut buf = Vec::new();
        Response::ok("text/xml", "<a/>").write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("<a/>"));
    }

    #[test]
    fn content_length_counts_bytes_not_chars() {
        // Multi-byte UTF-8: the frame length must be the byte count or
        // keep-alive clients desync on the next request.
        let body = "schöma × 30 000 — ✓";
        let mut buf = Vec::new();
        Response::ok("text/plain", body).write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(body.len() > body.chars().count(), "body is multi-byte");
        assert!(
            text.contains(&format!("Content-Length: {}\r\n", body.len())),
            "{text}"
        );
        let (_, framed) = text.split_once("\r\n\r\n").unwrap();
        assert_eq!(framed.len(), body.len());
    }

    #[test]
    fn caller_headers_cannot_conflict_with_framing() {
        let mut buf = Vec::new();
        Response::ok("text/plain", "abc")
            .with_header("Content-Length", "999")
            .with_header("Connection", "keep-alive")
            .with_header("X-Extra", "kept")
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches("Content-Length:").count(), 1, "{text}");
        assert_eq!(text.matches("Connection:").count(), 1, "{text}");
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Extra: kept\r\n"));
    }

    #[test]
    fn keep_alive_serialization_advertises_the_connection() {
        let mut buf = Vec::new();
        Response::ok("text/plain", "x")
            .write_to_conn(&mut buf, true)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn overloaded_response_carries_retry_after() {
        let mut buf = Vec::new();
        Response::overloaded(2).write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
    }

    #[test]
    fn extra_headers_and_503_serialize() {
        let mut buf = Vec::new();
        Response::unavailable("application/json", "{}")
            .with_header("X-Schemr-Trace-Id", "t7")
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("X-Schemr-Trace-Id: t7\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
    }

    #[test]
    fn timeout_errors_are_classified_and_serialized() {
        let timed_out: HttpError =
            std::io::Error::new(std::io::ErrorKind::WouldBlock, "timed out").into();
        assert!(timed_out.is_timeout());
        let broken: HttpError =
            std::io::Error::new(std::io::ErrorKind::ConnectionReset, "reset").into();
        assert!(!broken.is_timeout());
        assert!(!HttpError::Malformed("x").is_timeout());

        let mut buf = Vec::new();
        Response::request_timeout().write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 408 Request Timeout\r\n"),
            "{text}"
        );
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert!(parse(raw).is_err());
        // The cap is configurable.
        let limits = HttpLimits {
            max_body_bytes: 4,
            ..HttpLimits::default()
        };
        let raw = "POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        assert!(parse_limited(raw, &limits).is_err());
    }

    #[test]
    fn sequential_requests_parse_from_one_buffer() {
        // Two pipelined requests through one BufReader: the second must
        // not be lost to the first read's buffering.
        let raw = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let limits = HttpLimits::default();
        let first = read_request(&mut reader, &limits).unwrap();
        assert_eq!(first.path, "/a");
        assert!(first.wants_keep_alive());
        let second = read_request(&mut reader, &limits).unwrap();
        assert_eq!(second.path, "/b");
        assert!(!second.wants_keep_alive());
        assert!(matches!(
            read_request(&mut reader, &limits),
            Err(HttpError::Closed)
        ));
    }
}
