//! The search-results XML format — "this list of candidate schemas, along
//! with their corresponding score, is finally sent as an XML response to
//! the client".

use schemr::SearchResult;
use schemr_parse::xml::escape;

/// Serialize ranked results to the response XML.
///
/// ```xml
/// <results count="2">
///   <result id="s3" rank="1" score="0.740" matches="5" entities="3" attributes="6">
///     <title>clinic</title>
///     <summary>rural health clinic</summary>
///   </result>
///   …
/// </results>
/// ```
pub fn results_to_xml(results: &[SearchResult]) -> String {
    let mut out = String::with_capacity(256 + results.len() * 160);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str(&format!("<results count=\"{}\">\n", results.len()));
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  <result id=\"{}\" rank=\"{}\" score=\"{:.4}\" matches=\"{}\" entities=\"{}\" attributes=\"{}\">\n",
            r.id,
            i + 1,
            r.score,
            r.matches.len(),
            r.stats.entities,
            r.stats.attributes
        ));
        out.push_str(&format!("    <title>{}</title>\n", escape(&r.title)));
        out.push_str(&format!("    <summary>{}</summary>\n", escape(&r.summary)));
        out.push_str("  </result>\n");
    }
    out.push_str("</results>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{SchemaId, SchemaStats};
    use schemr_parse::xml::XmlParser;

    fn result(id: u64, title: &str) -> SearchResult {
        SearchResult {
            id: SchemaId(id),
            title: title.to_string(),
            summary: "a <summary> & more".to_string(),
            score: 0.5,
            coarse_score: 1.0,
            matched_terms: 1,
            stats: SchemaStats::default(),
            matches: vec![],
        }
    }

    #[test]
    fn xml_is_well_formed_and_ranked() {
        let xml = results_to_xml(&[result(3, "clinic"), result(9, "store")]);
        assert!(XmlParser::parse_all(&xml).is_ok());
        assert!(xml.contains("count=\"2\""));
        assert!(xml.contains("id=\"s3\" rank=\"1\""));
        assert!(xml.contains("id=\"s9\" rank=\"2\""));
    }

    #[test]
    fn titles_and_summaries_are_escaped() {
        let xml = results_to_xml(&[result(1, "a<b>&c")]);
        assert!(xml.contains("a&lt;b&gt;&amp;c"));
        assert!(XmlParser::parse_all(&xml).is_ok());
    }

    #[test]
    fn empty_results() {
        let xml = results_to_xml(&[]);
        assert!(xml.contains("count=\"0\""));
        assert!(XmlParser::parse_all(&xml).is_ok());
    }
}
