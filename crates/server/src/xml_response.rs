//! The search-results XML format — "this list of candidate schemas, along
//! with their corresponding score, is finally sent as an XML response to
//! the client".

use schemr::{SearchResponse, SearchResult};
use schemr_parse::xml::escape;

/// Serialize ranked results to the response XML.
///
/// ```xml
/// <results count="2">
///   <result id="s3" rank="1" score="0.740" matches="5" entities="3" attributes="6">
///     <title>clinic</title>
///     <summary>rural health clinic</summary>
///   </result>
///   …
/// </results>
/// ```
pub fn results_to_xml(results: &[SearchResult]) -> String {
    let mut out = String::with_capacity(256 + results.len() * 160);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str(&format!("<results count=\"{}\">\n", results.len()));
    push_results(&mut out, results);
    out.push_str("</results>\n");
    out
}

/// Serialize a full [`SearchResponse`]. When the response carries an
/// explain trace (`/search?…&explain=1`), a `<trace>` element with
/// per-phase and per-matcher timings follows the results.
///
/// ```xml
/// <results count="1">
///   <result …>…</result>
///   <trace candidates-from-index="5" candidates-evaluated="5" match-threads="4">
///     <phase name="candidate_extraction" seconds="0.000041"/>
///     <phase name="matching" seconds="0.000305"/>
///     <phase name="scoring" seconds="0.000012"/>
///     <matcher name="name" seconds="0.000171"/>
///     <matcher name="context" seconds="0.000092"/>
///   </trace>
/// </results>
/// ```
pub fn search_response_to_xml(response: &SearchResponse) -> String {
    let mut out = String::with_capacity(256 + response.results.len() * 160);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str(&format!("<results count=\"{}\">\n", response.results.len()));
    push_results(&mut out, &response.results);
    if let Some(trace) = &response.trace {
        out.push_str(&format!(
            "  <trace candidates-from-index=\"{}\" candidates-evaluated=\"{}\" match-threads=\"{}\">\n",
            trace.candidates_from_index, trace.candidates_evaluated, trace.match_threads_used
        ));
        let t = &response.timings;
        for (name, d) in [
            ("candidate_extraction", t.candidate_extraction),
            ("matching", t.matching),
            ("scoring", t.scoring),
        ] {
            out.push_str(&format!(
                "    <phase name=\"{}\" seconds=\"{:.6}\"/>\n",
                name,
                d.as_secs_f64()
            ));
        }
        for m in &trace.matchers {
            out.push_str(&format!(
                "    <matcher name=\"{}\" seconds=\"{:.6}\"/>\n",
                escape(&m.name),
                m.wall.as_secs_f64()
            ));
        }
        out.push_str("  </trace>\n");
    }
    out.push_str("</results>\n");
    out
}

fn push_results(out: &mut String, results: &[SearchResult]) {
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  <result id=\"{}\" rank=\"{}\" score=\"{:.4}\" matches=\"{}\" entities=\"{}\" attributes=\"{}\">\n",
            r.id,
            i + 1,
            r.score,
            r.matches.len(),
            r.stats.entities,
            r.stats.attributes
        ));
        out.push_str(&format!("    <title>{}</title>\n", escape(&r.title)));
        out.push_str(&format!("    <summary>{}</summary>\n", escape(&r.summary)));
        out.push_str("  </result>\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{SchemaId, SchemaStats};
    use schemr_parse::xml::XmlParser;

    fn result(id: u64, title: &str) -> SearchResult {
        SearchResult {
            id: SchemaId(id),
            title: title.to_string(),
            summary: "a <summary> & more".to_string(),
            score: 0.5,
            coarse_score: 1.0,
            matched_terms: 1,
            stats: SchemaStats::default(),
            matches: vec![],
        }
    }

    #[test]
    fn xml_is_well_formed_and_ranked() {
        let xml = results_to_xml(&[result(3, "clinic"), result(9, "store")]);
        assert!(XmlParser::parse_all(&xml).is_ok());
        assert!(xml.contains("count=\"2\""));
        assert!(xml.contains("id=\"s3\" rank=\"1\""));
        assert!(xml.contains("id=\"s9\" rank=\"2\""));
    }

    #[test]
    fn titles_and_summaries_are_escaped() {
        let xml = results_to_xml(&[result(1, "a<b>&c")]);
        assert!(xml.contains("a&lt;b&gt;&amp;c"));
        assert!(XmlParser::parse_all(&xml).is_ok());
    }

    #[test]
    fn empty_results() {
        let xml = results_to_xml(&[]);
        assert!(xml.contains("count=\"0\""));
        assert!(XmlParser::parse_all(&xml).is_ok());
    }

    #[test]
    fn response_without_trace_matches_plain_results() {
        let response = SearchResponse {
            results: vec![result(3, "clinic")],
            ..Default::default()
        };
        assert_eq!(
            search_response_to_xml(&response),
            results_to_xml(&response.results)
        );
    }

    #[test]
    fn response_with_trace_renders_phases_and_matchers() {
        use schemr::{MatcherTiming, PhaseTimings, SearchTrace};
        use std::time::Duration;
        let response = SearchResponse {
            results: vec![result(3, "clinic")],
            timings: PhaseTimings {
                candidate_extraction: Duration::from_micros(41),
                matching: Duration::from_micros(305),
                scoring: Duration::from_micros(12),
            },
            candidates_evaluated: 5,
            trace: Some(SearchTrace {
                candidates_from_index: 7,
                candidates_evaluated: 5,
                match_threads_used: 4,
                matchers: vec![
                    MatcherTiming {
                        name: "name".to_string(),
                        wall: Duration::from_micros(171),
                    },
                    MatcherTiming {
                        name: "context".to_string(),
                        wall: Duration::from_micros(92),
                    },
                ],
            }),
            trace_id: None,
            ledger: None,
        };
        let xml = search_response_to_xml(&response);
        assert!(XmlParser::parse_all(&xml).is_ok(), "{xml}");
        assert!(xml.contains(
            "<trace candidates-from-index=\"7\" candidates-evaluated=\"5\" match-threads=\"4\">"
        ));
        assert!(xml.contains("<phase name=\"candidate_extraction\" seconds=\"0.000041\"/>"));
        assert!(xml.contains("<phase name=\"matching\" seconds=\"0.000305\"/>"));
        assert!(xml.contains("<phase name=\"scoring\" seconds=\"0.000012\"/>"));
        assert!(xml.contains("<matcher name=\"name\" seconds=\"0.000171\"/>"));
        assert!(xml.contains("<matcher name=\"context\" seconds=\"0.000092\"/>"));
    }
}
