//! # schemr-server
//!
//! The search web service from the paper's architecture (Figure 5): "the
//! GUI processes a set of search terms and delivers them as a request to
//! the Search Service … This list of candidate schemas, along with their
//! corresponding score, is finally sent as an XML response to the client.
//! When the user clicks on a search result … the server performs a lookup
//! of this ID in the schema repository and returns a graphical
//! representation of the schema to the client as a GraphML response."
//!
//! Implemented from scratch on `std::net`:
//!
//! * [`http`] — a minimal HTTP/1.1 parser (bounded by [`HttpLimits`]:
//!   request-line, per-header, header-count, total-header and body caps)
//!   and response writer with keep-alive support,
//! * [`xml_response`] — the search-results XML format,
//! * [`SchemrServer`] — the service itself: a bounded admission queue in
//!   front of a worker pool (full queue ⇒ `503 + Retry-After`),
//!   HTTP/1.1 keep-alive with a per-connection request budget and idle
//!   timeout, and graceful drain ([`SchemrServer::shutdown`] finishes
//!   in-flight requests within [`ServerConfig::drain_deadline`]).
//!
//! Endpoints:
//!
//! | Method | Path | Response |
//! |---|---|---|
//! | GET | `/search?q=<keywords>&limit=<n>&explain=1` | results XML (+ `<trace>` with `explain=1`) |
//! | POST | `/search?q=<keywords>` (body = DDL/XSD fragment) | results XML |
//! | GET | `/schema/<id>` | GraphML |
//! | GET | `/schema/<id>/svg?layout=tree\|radial&depth=<d>` | SVG |
//! | GET | `/healthz` | JSON: status, repository revision, indexed doc count |
//! | GET | `/metrics` | Prometheus text exposition of the engine + HTTP metrics |

pub mod http;
pub mod xml_response;

mod service;

pub use http::HttpLimits;
pub use service::{SchemrServer, ServerConfig};
