//! Bulk import and export.
//!
//! "Integrating Schemr with schema import and export functionality gives
//! users motivation to build metadata repositories" — this module is that
//! functionality: import DDL/XSD/CSV sources (strings, files, or whole
//! directories) and export any stored schema back to DDL.

use std::path::Path;

use schemr_model::SchemaId;
use schemr_parse::{parse_fragment, printer::print_ddl, xsd_printer::print_xsd};

use crate::repository::{Repository, RepositoryError};

/// Errors from import operations.
#[derive(Debug)]
pub enum ImportError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The source failed to parse.
    Parse(schemr_parse::ParseError),
    /// The parsed schema failed repository validation.
    Repository(RepositoryError),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "import I/O error: {e}"),
            ImportError::Parse(e) => write!(f, "import parse error: {e}"),
            ImportError::Repository(e) => write!(f, "import rejected: {e}"),
        }
    }
}

impl std::error::Error for ImportError {}

impl From<std::io::Error> for ImportError {
    fn from(e: std::io::Error) -> Self {
        ImportError::Io(e)
    }
}

impl From<schemr_parse::ParseError> for ImportError {
    fn from(e: schemr_parse::ParseError) -> Self {
        ImportError::Parse(e)
    }
}

impl From<RepositoryError> for ImportError {
    fn from(e: RepositoryError) -> Self {
        ImportError::Repository(e)
    }
}

/// Import one source string (DDL, XSD, or a CSV header — autodetected)
/// into the repository under `title`.
pub fn import_str(
    repo: &Repository,
    title: &str,
    summary: &str,
    source: &str,
) -> Result<SchemaId, ImportError> {
    let schema = parse_fragment(title, source)?;
    Ok(repo.insert(title, summary, schema)?)
}

/// Import a file; the title is the file stem.
pub fn import_file(repo: &Repository, path: impl AsRef<Path>) -> Result<SchemaId, ImportError> {
    let path = path.as_ref();
    let title = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "schema".to_string());
    let source = std::fs::read_to_string(path)?;
    let id = import_str(repo, &title, "", &source)?;
    repo.annotate(id, "", path.display().to_string())?;
    Ok(id)
}

/// Per-file failures from a directory import.
pub type ImportFailures = Vec<(std::path::PathBuf, ImportError)>;

/// Import every `.sql`, `.ddl`, `.xsd`, and `.csv` file in a directory
/// (non-recursive). Returns (imported ids, per-file errors) — one bad file
/// doesn't abort the batch.
pub fn import_dir(
    repo: &Repository,
    dir: impl AsRef<Path>,
) -> Result<(Vec<SchemaId>, ImportFailures), std::io::Error> {
    let mut ids = Vec::new();
    let mut errors = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| matches!(e, "sql" | "ddl" | "xsd" | "csv"))
        })
        .collect();
    entries.sort();
    for path in entries {
        match import_file(repo, &path) {
            Ok(id) => ids.push(id),
            Err(e) => errors.push((path, e)),
        }
    }
    Ok((ids, errors))
}

/// Export a stored schema as DDL.
pub fn export_ddl(repo: &Repository, id: SchemaId) -> Result<String, RepositoryError> {
    let stored = repo.get(id).ok_or(RepositoryError::NotFound(id))?;
    Ok(print_ddl(&stored.schema))
}

/// Export a stored schema as XSD.
pub fn export_xsd(repo: &Repository, id: SchemaId) -> Result<String, RepositoryError> {
    let stored = repo.get(id).ok_or(RepositoryError::NotFound(id))?;
    Ok(print_xsd(&stored.schema))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn import_ddl_string() {
        let repo = Repository::new();
        let id = import_str(
            &repo,
            "clinic",
            "demo",
            "CREATE TABLE patient (height REAL, gender TEXT)",
        )
        .unwrap();
        let stored = repo.get(id).unwrap();
        assert_eq!(stored.schema.attributes().len(), 2);
        assert_eq!(stored.metadata.title, "clinic");
    }

    #[test]
    fn import_xsd_string() {
        let repo = Repository::new();
        let id = import_str(
            &repo,
            "patient",
            "",
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
                 <xs:element name="patient"><xs:complexType><xs:sequence>
                   <xs:element name="height" type="xs:double"/>
                 </xs:sequence></xs:complexType></xs:element>
               </xs:schema>"#,
        )
        .unwrap();
        assert_eq!(repo.get(id).unwrap().schema.entities().len(), 1);
    }

    #[test]
    fn bad_source_is_a_parse_error() {
        let repo = Repository::new();
        let err = import_str(&repo, "x", "", "CREATE TABLE").unwrap_err();
        assert!(matches!(err, ImportError::Parse(_)));
        assert!(repo.is_empty());
    }

    #[test]
    fn import_directory_skips_bad_files() {
        let dir = std::env::temp_dir().join("schemr-import-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("good.sql"),
            "CREATE TABLE a (x INT, y INT, z INT, w INT)",
        )
        .unwrap();
        std::fs::write(dir.join("bad.sql"), "CREATE TABLE (").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a schema").unwrap();
        std::fs::write(dir.join("header.csv"), "species,count,location").unwrap();
        let repo = Repository::new();
        let (ids, errors) = import_dir(&repo, &dir).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].0.ends_with("bad.sql"));
        // Titles come from file stems; source records the path.
        let titles: Vec<String> = ids
            .iter()
            .map(|&id| repo.get(id).unwrap().metadata.title)
            .collect();
        assert!(titles.contains(&"good".to_string()));
        assert!(titles.contains(&"header".to_string()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_round_trips_through_ddl() {
        let repo = Repository::new();
        let id = import_str(
            &repo,
            "clinic",
            "",
            "CREATE TABLE patient (id INT, height REAL); CREATE TABLE visit (patient_id INT, FOREIGN KEY (patient_id) REFERENCES patient(id))",
        )
        .unwrap();
        let ddl = export_ddl(&repo, id).unwrap();
        let reimported = import_str(&repo, "clinic2", "", &ddl).unwrap();
        let a = repo.get(id).unwrap().schema;
        let b = repo.get(reimported).unwrap().schema;
        assert_eq!(a.entities().len(), b.entities().len());
        assert_eq!(a.attributes().len(), b.attributes().len());
        assert_eq!(a.foreign_keys().len(), b.foreign_keys().len());
    }

    #[test]
    fn export_missing_schema_is_not_found() {
        let repo = Repository::new();
        assert!(matches!(
            export_ddl(&repo, SchemaId(5)),
            Err(RepositoryError::NotFound(_))
        ));
    }
}
