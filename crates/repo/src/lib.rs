//! # schemr-repo
//!
//! The schema repository — the reproduction's substitute for the Yggdrasil
//! repository Schemr is built on ("On the Schemr server, we use the
//! open-source schema repository Yggdrasil").
//!
//! The repository stores [`schemr_model::Schema`] graphs with the metadata
//! the search index flattens (title, summary, description, source),
//! versions every mutation through a monotone revision counter, and keeps a
//! change journal so the offline indexer can re-index incrementally "at
//! scheduled intervals" instead of from scratch.
//!
//! * [`Repository`] — thread-safe store with put/get/list/remove,
//! * [`SchemaMetadata`] / [`StoredSchema`] — per-schema records,
//! * [`ChangeEvent`] — the journal consumed by the indexer,
//! * [`persist`] — JSON save/load of the whole repository,
//! * [`import`] — bulk import of DDL/XSD/CSV sources and DDL export.

pub mod import;
pub mod persist;

mod repository;

pub use repository::{
    ChangeEvent, ChangeKind, Repository, RepositoryError, SchemaMetadata, StoredSchema,
};
