//! The thread-safe schema store.

use std::collections::BTreeMap;

use parking_lot::RwLock;
use schemr_model::{validate, Schema, SchemaId, SchemaStats};
use serde::{Deserialize, Serialize};

/// Descriptive metadata for a stored schema — the fields the paper's
/// document index stores ("a title, a summary, an ID") plus provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaMetadata {
    /// Repository-assigned id.
    pub id: SchemaId,
    /// Display title (also the index's Title field).
    pub title: String,
    /// One-line summary.
    pub summary: String,
    /// Longer description, shown on drill-in.
    pub description: String,
    /// Where the schema came from (organization, URL, upload).
    pub source: String,
    /// Revision at which this schema was last written.
    pub revision: u64,
}

/// A schema plus its metadata, as stored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredSchema {
    /// Metadata record.
    pub metadata: SchemaMetadata,
    /// The schema graph.
    pub schema: Schema,
}

impl StoredSchema {
    /// Element-count statistics (the result table's entity/attribute
    /// columns).
    pub fn stats(&self) -> SchemaStats {
        SchemaStats::of(&self.schema)
    }
}

/// What a journal entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeKind {
    /// Insert or update.
    Put,
    /// Removal.
    Delete,
}

/// One entry in the change journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangeEvent {
    /// Monotone revision of the mutation.
    pub revision: u64,
    /// The schema affected.
    pub id: SchemaId,
    /// Put or delete.
    pub kind: ChangeKind,
}

/// Errors from repository operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RepositoryError {
    /// The schema failed structural validation.
    Invalid(Vec<schemr_model::ValidationError>),
    /// No schema with the given id.
    NotFound(SchemaId),
}

impl std::fmt::Display for RepositoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepositoryError::Invalid(errs) => {
                write!(f, "schema failed validation: ")?;
                for (i, e) in errs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            RepositoryError::NotFound(id) => write!(f, "schema {id} not found"),
        }
    }
}

impl std::error::Error for RepositoryError {}

#[derive(Debug, Default, Serialize, Deserialize)]
pub(crate) struct RepoState {
    pub schemas: BTreeMap<u64, StoredSchema>,
    pub journal: Vec<ChangeEvent>,
    pub next_id: u64,
    pub revision: u64,
}

/// A thread-safe, versioned schema repository.
#[derive(Debug, Default)]
pub struct Repository {
    pub(crate) state: RwLock<RepoState>,
}

impl Repository {
    /// An empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a new schema; validates first. Returns the assigned id.
    pub fn insert(
        &self,
        title: impl Into<String>,
        summary: impl Into<String>,
        schema: Schema,
    ) -> Result<SchemaId, RepositoryError> {
        let errs = validate(&schema);
        if !errs.is_empty() {
            return Err(RepositoryError::Invalid(errs));
        }
        let mut st = self.state.write();
        let id = SchemaId(st.next_id);
        st.next_id += 1;
        st.revision += 1;
        let revision = st.revision;
        st.schemas.insert(
            id.0,
            StoredSchema {
                metadata: SchemaMetadata {
                    id,
                    title: title.into(),
                    summary: summary.into(),
                    description: String::new(),
                    source: String::new(),
                    revision,
                },
                schema,
            },
        );
        st.journal.push(ChangeEvent {
            revision,
            id,
            kind: ChangeKind::Put,
        });
        Ok(id)
    }

    /// Replace an existing schema's graph (metadata title/summary kept).
    pub fn update(&self, id: SchemaId, schema: Schema) -> Result<(), RepositoryError> {
        let errs = validate(&schema);
        if !errs.is_empty() {
            return Err(RepositoryError::Invalid(errs));
        }
        let mut st = self.state.write();
        st.revision += 1;
        let revision = st.revision;
        let entry = st
            .schemas
            .get_mut(&id.0)
            .ok_or(RepositoryError::NotFound(id))?;
        entry.schema = schema;
        entry.metadata.revision = revision;
        st.journal.push(ChangeEvent {
            revision,
            id,
            kind: ChangeKind::Put,
        });
        Ok(())
    }

    /// Update metadata fields (description, source) in place.
    pub fn annotate(
        &self,
        id: SchemaId,
        description: impl Into<String>,
        source: impl Into<String>,
    ) -> Result<(), RepositoryError> {
        let mut st = self.state.write();
        st.revision += 1;
        let revision = st.revision;
        let entry = st
            .schemas
            .get_mut(&id.0)
            .ok_or(RepositoryError::NotFound(id))?;
        entry.metadata.description = description.into();
        entry.metadata.source = source.into();
        entry.metadata.revision = revision;
        st.journal.push(ChangeEvent {
            revision,
            id,
            kind: ChangeKind::Put,
        });
        Ok(())
    }

    /// Remove a schema.
    pub fn remove(&self, id: SchemaId) -> Result<(), RepositoryError> {
        let mut st = self.state.write();
        if st.schemas.remove(&id.0).is_none() {
            return Err(RepositoryError::NotFound(id));
        }
        st.revision += 1;
        let revision = st.revision;
        st.journal.push(ChangeEvent {
            revision,
            id,
            kind: ChangeKind::Delete,
        });
        Ok(())
    }

    /// Fetch a schema by id (clones — stored schemas are modest).
    pub fn get(&self, id: SchemaId) -> Option<StoredSchema> {
        self.state.read().schemas.get(&id.0).cloned()
    }

    /// All ids, ascending.
    pub fn ids(&self) -> Vec<SchemaId> {
        self.state
            .read()
            .schemas
            .keys()
            .map(|&k| SchemaId(k))
            .collect()
    }

    /// Number of stored schemas.
    pub fn len(&self) -> usize {
        self.state.read().schemas.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every stored schema (the offline indexer's full-scan
    /// path).
    pub fn snapshot(&self) -> Vec<StoredSchema> {
        self.state.read().schemas.values().cloned().collect()
    }

    /// The current revision (0 for a fresh repository).
    pub fn revision(&self) -> u64 {
        self.state.read().revision
    }

    /// Journal entries with revision strictly greater than `since` — the
    /// incremental re-index feed.
    pub fn changes_since(&self, since: u64) -> Vec<ChangeEvent> {
        self.state
            .read()
            .journal
            .iter()
            .filter(|e| e.revision > since)
            .copied()
            .collect()
    }

    /// Drop journal entries at or below `upto` (after the indexer consumed
    /// them).
    pub fn truncate_journal(&self, upto: u64) {
        self.state.write().journal.retain(|e| e.revision > upto);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, Element, SchemaBuilder};

    fn sample() -> Schema {
        SchemaBuilder::new("clinic")
            .entity("patient", |e| e.attr("height", DataType::Real))
            .build_unchecked()
    }

    #[test]
    fn insert_get_roundtrip() {
        let repo = Repository::new();
        let id = repo.insert("clinic", "a health clinic", sample()).unwrap();
        let stored = repo.get(id).unwrap();
        assert_eq!(stored.metadata.title, "clinic");
        assert_eq!(stored.metadata.summary, "a health clinic");
        assert_eq!(stored.schema.entities().len(), 1);
        assert_eq!(repo.len(), 1);
    }

    #[test]
    fn ids_are_unique_and_ascending() {
        let repo = Repository::new();
        let a = repo.insert("a", "", sample()).unwrap();
        let b = repo.insert("b", "", sample()).unwrap();
        assert!(b > a);
        assert_eq!(repo.ids(), vec![a, b]);
    }

    #[test]
    fn invalid_schemas_are_rejected() {
        let repo = Repository::new();
        let mut bad = Schema::new("bad");
        bad.add_root(Element::entity("  "));
        let err = repo.insert("bad", "", bad).unwrap_err();
        assert!(matches!(err, RepositoryError::Invalid(_)));
        assert!(repo.is_empty());
    }

    #[test]
    fn update_bumps_revision_and_journals() {
        let repo = Repository::new();
        let id = repo.insert("a", "", sample()).unwrap();
        let rev1 = repo.revision();
        repo.update(id, sample()).unwrap();
        assert!(repo.revision() > rev1);
        let changes = repo.changes_since(rev1);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].kind, ChangeKind::Put);
        assert_eq!(changes[0].id, id);
    }

    #[test]
    fn remove_journals_a_delete() {
        let repo = Repository::new();
        let id = repo.insert("a", "", sample()).unwrap();
        let rev = repo.revision();
        repo.remove(id).unwrap();
        assert!(repo.get(id).is_none());
        let changes = repo.changes_since(rev);
        assert_eq!(changes[0].kind, ChangeKind::Delete);
        assert!(matches!(repo.remove(id), Err(RepositoryError::NotFound(_))));
    }

    #[test]
    fn annotate_updates_metadata() {
        let repo = Repository::new();
        let id = repo.insert("a", "", sample()).unwrap();
        repo.annotate(id, "full description", "nature-conservancy")
            .unwrap();
        let stored = repo.get(id).unwrap();
        assert_eq!(stored.metadata.description, "full description");
        assert_eq!(stored.metadata.source, "nature-conservancy");
    }

    #[test]
    fn journal_truncation() {
        let repo = Repository::new();
        repo.insert("a", "", sample()).unwrap();
        repo.insert("b", "", sample()).unwrap();
        let mid = repo.revision();
        repo.insert("c", "", sample()).unwrap();
        repo.truncate_journal(mid);
        assert_eq!(repo.changes_since(0).len(), 1);
        assert_eq!(repo.changes_since(mid).len(), 1);
    }

    #[test]
    fn update_missing_is_not_found() {
        let repo = Repository::new();
        assert!(matches!(
            repo.update(SchemaId(99), sample()),
            Err(RepositoryError::NotFound(_))
        ));
    }

    #[test]
    fn stats_are_exposed_for_the_result_table() {
        let repo = Repository::new();
        let id = repo.insert("a", "", sample()).unwrap();
        let st = repo.get(id).unwrap().stats();
        assert_eq!(st.entities, 1);
        assert_eq!(st.attributes, 1);
    }

    #[test]
    fn concurrent_inserts_do_not_collide() {
        let repo = std::sync::Arc::new(Repository::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = repo.clone();
            handles.push(std::thread::spawn(move || {
                (0..50)
                    .map(|_| r.insert("t", "", sample()).unwrap())
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<SchemaId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 400);
        assert_eq!(repo.len(), 400);
        assert_eq!(repo.changes_since(0).len(), 400);
    }
}
