//! Repository persistence: JSON save/load.
//!
//! One file holds the whole repository state — schemas, metadata, journal,
//! and counters — so a restarted server resumes exactly where it left off
//! (including incremental-index bookkeeping).

use std::path::Path;

use crate::repository::{RepoState, Repository};

/// Errors from persistence operations.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid repository dump.
    Format(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "repository I/O error: {e}"),
            PersistError::Format(e) => write!(f, "repository format error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// Serialize the repository to a JSON string.
pub fn to_json(repo: &Repository) -> String {
    serde_json::to_string(&*repo.state.read()).expect("repository state serializes")
}

/// Restore a repository from [`to_json`] output.
pub fn from_json(json: &str) -> Result<Repository, PersistError> {
    let state: RepoState = serde_json::from_str(json)?;
    Ok(Repository {
        state: parking_lot::RwLock::new(state),
    })
}

/// Write the repository to `path` (atomically via a sibling temp file).
pub fn save(repo: &Repository, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, to_json(repo))?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a repository from `path`.
pub fn load(path: impl AsRef<Path>) -> Result<Repository, PersistError> {
    let json = std::fs::read_to_string(path)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, SchemaBuilder};

    fn populated() -> Repository {
        let repo = Repository::new();
        let id = repo
            .insert(
                "clinic",
                "a clinic",
                SchemaBuilder::new("clinic")
                    .entity("patient", |e| e.attr("height", DataType::Real))
                    .build_unchecked(),
            )
            .unwrap();
        repo.annotate(id, "desc", "src").unwrap();
        repo
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let repo = populated();
        let restored = from_json(&to_json(&repo)).unwrap();
        assert_eq!(restored.len(), repo.len());
        assert_eq!(restored.revision(), repo.revision());
        let id = repo.ids()[0];
        assert_eq!(restored.get(id), repo.get(id));
        assert_eq!(restored.changes_since(0), repo.changes_since(0));
    }

    #[test]
    fn restored_repository_continues_id_sequence() {
        let repo = populated();
        let restored = from_json(&to_json(&repo)).unwrap();
        let new_id = restored
            .insert(
                "x",
                "",
                SchemaBuilder::new("x")
                    .entity("t", |e| e.attr("a", DataType::Text))
                    .build_unchecked(),
            )
            .unwrap();
        assert!(new_id > repo.ids()[0], "ids must not be reused");
    }

    #[test]
    fn save_load_through_file() {
        let dir = std::env::temp_dir().join("schemr-repo-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.json");
        let repo = populated();
        save(&repo, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_input_is_a_format_error() {
        assert!(matches!(
            from_json("not json"),
            Err(PersistError::Format(_))
        ));
        assert!(matches!(from_json("{}"), Err(PersistError::Format(_))));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(matches!(
            load("/nonexistent/path/repo.json"),
            Err(PersistError::Io(_))
        ));
    }
}
