//! Repository persistence: JSON save/load.
//!
//! One file holds the whole repository state — schemas, metadata, journal,
//! and counters — so a restarted server resumes exactly where it left off
//! (including incremental-index bookkeeping).

use std::path::Path;

use crate::repository::{RepoState, Repository};

/// Errors from persistence operations.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid repository dump.
    Format(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "repository I/O error: {e}"),
            PersistError::Format(e) => write!(f, "repository format error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// Serialize the repository to a JSON string.
pub fn to_json(repo: &Repository) -> String {
    serde_json::to_string(&*repo.state.read()).expect("repository state serializes")
}

/// Restore a repository from [`to_json`] output.
pub fn from_json(json: &str) -> Result<Repository, PersistError> {
    let state: RepoState = serde_json::from_str(json)?;
    Ok(Repository {
        state: parking_lot::RwLock::new(state),
    })
}

/// Write the repository to `path` — atomically *and* durably.
///
/// The dump goes to a sibling temp file which is fsynced **before** the
/// rename: renaming first would let a crash publish a file whose contents
/// are still only in the page cache, so a reboot could reveal an empty or
/// truncated "committed" dump. After the rename the parent directory is
/// fsynced too, making the new directory entry itself survive power loss.
/// On any failure the temp file is removed, so a failed save never leaves
/// a stray `.tmp` next to the real dump.
pub fn save(repo: &Repository, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    let result = (|| -> Result<(), PersistError> {
        {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(to_json(repo).as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // Directory fsync is what persists the rename; without it the new
        // name may vanish on crash even though the data blocks are safe.
        // Some filesystems refuse to fsync a directory handle — that only
        // weakens durability, never correctness, so it is not an error.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Load a repository from `path`.
pub fn load(path: impl AsRef<Path>) -> Result<Repository, PersistError> {
    let json = std::fs::read_to_string(path)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, SchemaBuilder};

    fn populated() -> Repository {
        let repo = Repository::new();
        let id = repo
            .insert(
                "clinic",
                "a clinic",
                SchemaBuilder::new("clinic")
                    .entity("patient", |e| e.attr("height", DataType::Real))
                    .build_unchecked(),
            )
            .unwrap();
        repo.annotate(id, "desc", "src").unwrap();
        repo
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let repo = populated();
        let restored = from_json(&to_json(&repo)).unwrap();
        assert_eq!(restored.len(), repo.len());
        assert_eq!(restored.revision(), repo.revision());
        let id = repo.ids()[0];
        assert_eq!(restored.get(id), repo.get(id));
        assert_eq!(restored.changes_since(0), repo.changes_since(0));
    }

    #[test]
    fn restored_repository_continues_id_sequence() {
        let repo = populated();
        let restored = from_json(&to_json(&repo)).unwrap();
        let new_id = restored
            .insert(
                "x",
                "",
                SchemaBuilder::new("x")
                    .entity("t", |e| e.attr("a", DataType::Text))
                    .build_unchecked(),
            )
            .unwrap();
        assert!(new_id > repo.ids()[0], "ids must not be reused");
    }

    #[test]
    fn save_load_through_file() {
        let dir = std::env::temp_dir().join("schemr-repo-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.json");
        let repo = populated();
        save(&repo, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_save_leaves_no_temp_file_behind() {
        // Target a path whose final rename must fail: the destination is a
        // directory, so `rename` cannot replace it. The write of the
        // sibling temp file succeeds, which is exactly the case where a
        // sloppy save would leak `repo.tmp`.
        let dir = std::env::temp_dir().join(format!("schemr-save-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.json");
        std::fs::create_dir_all(&path).unwrap();
        let repo = populated();
        assert!(matches!(save(&repo, &path), Err(PersistError::Io(_))));
        assert!(
            !path.with_extension("tmp").exists(),
            "failed save must clean up its temp file"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_overwrites_previous_dump_in_place() {
        let dir = std::env::temp_dir().join(format!("schemr-save-over-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.json");
        let repo = populated();
        save(&repo, &path).unwrap();
        let second = populated();
        second
            .insert(
                "extra",
                "",
                SchemaBuilder::new("extra")
                    .entity("t", |e| e.attr("a", DataType::Text))
                    .build_unchecked(),
            )
            .unwrap();
        save(&second, &path).unwrap();
        assert_eq!(load(&path).unwrap().len(), 2);
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_input_is_a_format_error() {
        assert!(matches!(
            from_json("not json"),
            Err(PersistError::Format(_))
        ));
        assert!(matches!(from_json("{}"), Err(PersistError::Format(_))));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(matches!(
            load("/nonexistent/path/repo.json"),
            Err(PersistError::Io(_))
        ));
    }
}
