//! Tokenization of schema element names and free text.
//!
//! Splits on delimiter characters (`_`, `-`, `.`, whitespace, punctuation),
//! camelCase boundaries (`PatientHeight` → `Patient`, `Height`), acronym
//! boundaries (`HTTPResponse` → `HTTP`, `Response`), and letter/digit
//! boundaries (`address2` → `address`, `2`).

/// A token with its byte offset in the source string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text, exactly as it appears in the source.
    pub text: String,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// Character classes driving boundary detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Lower,
    Upper,
    Digit,
    Other,
}

fn classify(c: char) -> Class {
    if c.is_lowercase() {
        Class::Lower
    } else if c.is_uppercase() {
        Class::Upper
    } else if c.is_ascii_digit() {
        Class::Digit
    } else {
        Class::Other
    }
}

/// Split `input` into tokens with offsets.
///
/// Boundary rules, applied between consecutive characters `a`,`b`:
/// * either side is a non-alphanumeric delimiter → split (delimiter dropped),
/// * `lower → Upper` (camelCase) → split,
/// * `Upper → Upper lower` (acronym end: `HTTPServer` → `HTTP`|`Server`) → split,
/// * letter ↔ digit transition → split.
pub fn tokenize(input: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut cur_offset = 0usize;
    let chars: Vec<(usize, char)> = input.char_indices().collect();

    let flush = |tokens: &mut Vec<Token>, cur: &mut String, cur_offset: usize| {
        if !cur.is_empty() {
            tokens.push(Token {
                text: std::mem::take(cur),
                offset: cur_offset,
            });
        }
    };

    for i in 0..chars.len() {
        let (off, c) = chars[i];
        let class = classify(c);
        if class == Class::Other {
            flush(&mut tokens, &mut cur, cur_offset);
            continue;
        }
        if cur.is_empty() {
            cur_offset = off;
            cur.push(c);
            continue;
        }
        let prev = classify(cur.chars().next_back().expect("cur nonempty"));
        let boundary = match (prev, class) {
            // camelCase: patient|Height
            (Class::Lower, Class::Upper) => true,
            // acronym end: HTTP|Server — split before an Upper followed by a lower.
            (Class::Upper, Class::Upper) => {
                matches!(chars.get(i + 1), Some(&(_, next)) if classify(next) == Class::Lower)
            }
            // letter/digit transitions: address|2, 2|nd
            (Class::Digit, Class::Lower | Class::Upper) => true,
            (Class::Lower | Class::Upper, Class::Digit) => true,
            _ => false,
        };
        if boundary {
            flush(&mut tokens, &mut cur, cur_offset);
            cur_offset = off;
        }
        cur.push(c);
    }
    flush(&mut tokens, &mut cur, cur_offset);
    tokens
}

/// Tokenize and return just the texts.
pub fn words(input: &str) -> Vec<String> {
    tokenize(input).into_iter().map(|t| t.text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(s: &str) -> Vec<String> {
        words(s)
    }

    #[test]
    fn splits_on_delimiters() {
        assert_eq!(texts("patient_height"), ["patient", "height"]);
        assert_eq!(texts("patient-height"), ["patient", "height"]);
        assert_eq!(texts("patient.height"), ["patient", "height"]);
        assert_eq!(texts("patient height"), ["patient", "height"]);
        assert_eq!(
            texts("patient/height,gender"),
            ["patient", "height", "gender"]
        );
    }

    #[test]
    fn splits_camel_case() {
        assert_eq!(texts("PatientHeight"), ["Patient", "Height"]);
        assert_eq!(texts("patientHeight"), ["patient", "Height"]);
    }

    #[test]
    fn keeps_acronyms_together() {
        assert_eq!(texts("HTTPServer"), ["HTTP", "Server"]);
        assert_eq!(texts("parseXMLDocument"), ["parse", "XML", "Document"]);
        assert_eq!(texts("HIV"), ["HIV"]);
    }

    #[test]
    fn splits_letter_digit_boundaries() {
        assert_eq!(texts("address2"), ["address", "2"]);
        assert_eq!(texts("2nd"), ["2", "nd"]);
        assert_eq!(texts("icd10code"), ["icd", "10", "code"]);
    }

    #[test]
    fn empty_and_delimiter_only_inputs() {
        assert!(texts("").is_empty());
        assert!(texts("___---").is_empty());
        assert!(texts("  \t ").is_empty());
    }

    #[test]
    fn offsets_point_into_the_source() {
        let toks = tokenize("pat_Height2");
        assert_eq!(
            toks,
            vec![
                Token {
                    text: "pat".into(),
                    offset: 0
                },
                Token {
                    text: "Height".into(),
                    offset: 4
                },
                Token {
                    text: "2".into(),
                    offset: 10
                },
            ]
        );
        for t in &toks {
            assert_eq!(&"pat_Height2"[t.offset..t.offset + t.text.len()], t.text);
        }
    }

    #[test]
    fn handles_unicode_without_panicking() {
        // Non-ASCII letters are classified by Unicode case.
        assert_eq!(texts("größeÜber"), ["größe", "Über"]);
    }

    #[test]
    fn single_character_tokens() {
        assert_eq!(texts("a_b_c"), ["a", "b", "c"]);
        assert_eq!(texts("aB"), ["a", "B"]);
    }
}
