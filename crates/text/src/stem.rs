//! A from-scratch Porter stemmer (M.F. Porter, "An algorithm for suffix
//! stripping", 1980).
//!
//! The name matcher must rank `diagnoses`, `diagnosed`, and `diagnosis`
//! close to the query term `diagnosis` — the paper calls out "alternate
//! grammatical forms" explicitly. Stemming conflates those forms before
//! n-gram comparison and before index terms are written.
//!
//! The implementation follows the published algorithm: words are measured
//! as `[C](VC)^m[V]`, and five rule phases strip or rewrite suffixes subject
//! to measure and shape conditions. Input is expected lowercase; words
//! shorter than three characters or containing non-ASCII-alphabetic
//! characters are returned unchanged.

/// Stem one lowercase word.
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut w: Vec<u8> = word.as_bytes().to_vec();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("stemmer preserves ASCII")
}

/// Is `w[i]` a consonant, per Porter's definition (`y` is a consonant when
/// preceded by a vowel... precisely: `y` is a consonant at position 0 or
/// when the previous letter is a vowel)?
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// Porter's measure m of `w[..len]`: the number of VC sequences in
/// `[C](VC)^m[V]`.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants — one full VC block seen.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
    }
}

/// Does `w[..len]` contain a vowel?
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// Does `w[..len]` end with a double consonant?
fn ends_double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// Does `w[..len]` end consonant-vowel-consonant, where the final consonant
/// is not `w`, `x`, or `y`? (Porter's `*o` condition.)
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// If `w` ends with `suffix` and the stem before it has measure > `min_m`,
/// replace the suffix with `replacement` and return true.
fn replace_if_m(w: &mut Vec<u8>, suffix: &str, replacement: &str, min_m: usize) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > min_m {
        w.truncate(stem_len);
        w.extend_from_slice(replacement.as_bytes());
        true
    } else {
        false
    }
}

/// Plurals: `sses`→`ss`, `ies`→`i`, `ss`→`ss`, `s`→``.
fn step1a(w: &mut Vec<u8>) {
    // `sses`→`ss` and `ies`→`i` both strip two characters.
    if ends_with(w, "sses") || ends_with(w, "ies") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, "ss") {
        // keep
    } else if ends_with(w, "s") {
        w.truncate(w.len() - 1);
    }
}

/// Past tense / gerunds: `eed`, `ed`, `ing`, with cleanup rules.
fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 0 {
            w.truncate(w.len() - 1); // eed -> ee
        }
        return;
    }
    let stripped = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if stripped {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e');
        } else if ends_double_consonant(w, w.len()) && !matches!(w[w.len() - 1], b'l' | b's' | b'z')
        {
            w.truncate(w.len() - 1);
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

/// `y` → `i` when the stem contains a vowel.
fn step1c(w: &mut [u8]) {
    let len = w.len();
    if len > 1 && w[len - 1] == b'y' && has_vowel(w, len - 1) {
        w[len - 1] = b'i';
    }
}

/// Double-suffix reductions (`ational`→`ate`, `iveness`→`ive`, …), m > 0.
fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suffix, replacement) in RULES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, replacement, 0);
            return;
        }
    }
}

/// `icate`→`ic`, `ative`→``, `alize`→`al`, …, m > 0.
fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suffix, replacement) in RULES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, replacement, 0);
            return;
        }
    }
}

/// Strip residual suffixes (`al`, `ance`, `ment`, `tion` via `ion`, …), m > 1.
fn step4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
        "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    for suffix in SUFFIXES {
        if ends_with(w, suffix) {
            let stem_len = w.len() - suffix.len();
            if measure(w, stem_len) > 1 {
                // `ion` only strips after `s` or `t`.
                if *suffix == "ion" && stem_len > 0 && !matches!(w[stem_len - 1], b's' | b't') {
                    return;
                }
                w.truncate(stem_len);
            }
            return;
        }
    }
}

/// Drop a final `e` when m > 1, or when m == 1 and the stem does not end
/// cvc.
fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

/// `ll` → `l` when m > 1.
fn step5b(w: &mut Vec<u8>) {
    let len = w.len();
    if len >= 2 && w[len - 1] == b'l' && ends_double_consonant(w, len) && measure(w, len) > 1 {
        w.truncate(len - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cases from Porter's paper and the canonical test vocabulary.
    #[test]
    fn canonical_examples() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("formaliti", "formal"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn schema_vocabulary_conflates_grammatical_variants() {
        assert_eq!(stem("diagnoses"), stem("diagnose"));
        assert_eq!(stem("medications"), stem("medication"));
        assert_eq!(stem("measurements"), stem("measurement"));
        assert_eq!(stem("patients"), stem("patient"));
    }

    #[test]
    fn short_words_pass_through() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("a"), "a");
        assert_eq!(stem(""), "");
    }

    #[test]
    fn non_ascii_and_mixed_case_pass_through() {
        assert_eq!(stem("Patients"), "Patients");
        assert_eq!(stem("größe"), "größe");
        assert_eq!(stem("icd10"), "icd10");
    }

    #[test]
    fn measure_counts_vc_sequences() {
        let m = |s: &str| measure(s.as_bytes(), s.len());
        assert_eq!(m("tr"), 0);
        assert_eq!(m("ee"), 0);
        assert_eq!(m("tree"), 0);
        assert_eq!(m("y"), 0);
        assert_eq!(m("by"), 0);
        assert_eq!(m("trouble"), 1);
        assert_eq!(m("oats"), 1);
        assert_eq!(m("trees"), 1);
        assert_eq!(m("ivy"), 1);
        assert_eq!(m("troubles"), 2);
        assert_eq!(m("private"), 2);
        assert_eq!(m("oaten"), 2);
        assert_eq!(m("orrery"), 2);
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in [
            "patient",
            "diagnosis",
            "gender",
            "height",
            "relational",
            "caresses",
        ] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "idempotence for {w}");
        }
    }
}
