//! Hashed gram signatures: the prepared, allocation-free counterpart of
//! [`crate::ngram`]'s `HashSet<String>` sets.
//!
//! The name matcher compares all-n-gram sets for every (query word ×
//! element word) pair, and candidate schemas are immutable between
//! repository revisions — so the expensive part (building the sets) can be
//! done once and reused, and the per-pair part (set intersection) should
//! not allocate at all. A [`GramSet`] stores a word's gram set as a
//! sorted, deduplicated `Vec<u64>` of FNV-1a gram hashes; Dice, Jaccard,
//! and overlap coefficients come from a sorted-merge intersection count
//! that touches no heap.
//!
//! The coefficients use the exact arithmetic of [`crate::ngram`], so a
//! score computed over two `GramSet`s is bitwise identical to the same
//! score over the corresponding string sets (up to 64-bit hash collisions,
//! which are vanishingly unlikely within a schema vocabulary).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of a full string — the "term id" used by prepared context
/// and token sets.
pub fn hash_term(term: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in term.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A sorted, deduplicated set of 64-bit gram (or term) hashes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GramSet {
    hashes: Vec<u64>,
}

impl GramSet {
    /// The all-n-gram signature of one word: every character n-gram with
    /// lengths `1..=word.len()`, hashed. Mirrors [`crate::ngram::all_ngrams`]
    /// without allocating a string per gram — each suffix start extends
    /// one rolling FNV-1a state per added character.
    pub fn all_grams(word: &str) -> GramSet {
        let chars: Vec<char> = word.chars().collect();
        let mut hashes = Vec::with_capacity(chars.len() * (chars.len() + 1) / 2);
        let mut utf8 = [0u8; 4];
        for start in 0..chars.len() {
            let mut h = FNV_OFFSET;
            for &c in &chars[start..] {
                for b in c.encode_utf8(&mut utf8).as_bytes() {
                    h = (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
                }
                hashes.push(h);
            }
        }
        Self::from_hashes(hashes)
    }

    /// A set of whole-term hashes (deduplicated): the prepared form of an
    /// analyzed token or neighborhood term set.
    pub fn of_terms<'a>(terms: impl IntoIterator<Item = &'a str>) -> GramSet {
        Self::from_hashes(terms.into_iter().map(hash_term).collect())
    }

    /// Normalize a raw hash list into the sorted-dedup invariant.
    pub fn from_hashes(mut hashes: Vec<u64>) -> GramSet {
        hashes.sort_unstable();
        hashes.dedup();
        GramSet { hashes }
    }

    /// Number of distinct grams.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when the set has no grams.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Approximate heap footprint, for byte-budgeted caches.
    pub fn heap_bytes(&self) -> usize {
        self.hashes.capacity() * std::mem::size_of::<u64>()
    }

    /// `|self ∩ other|` by sorted merge — no allocation, O(|a| + |b|).
    pub fn intersection_size(&self, other: &GramSet) -> usize {
        let (a, b) = (&self.hashes, &other.hashes);
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        inter
    }

    /// Dice coefficient, arithmetic-identical to [`crate::ngram::dice`].
    pub fn dice(&self, other: &GramSet) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 0.0;
        }
        let inter = self.intersection_size(other);
        2.0 * inter as f64 / (self.len() + other.len()) as f64
    }

    /// Jaccard coefficient, arithmetic-identical to
    /// [`crate::ngram::jaccard`].
    pub fn jaccard(&self, other: &GramSet) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 0.0;
        }
        let inter = self.intersection_size(other);
        let union = self.len() + other.len() - inter;
        inter as f64 / union as f64
    }

    /// Overlap coefficient, arithmetic-identical to
    /// [`crate::ngram::overlap`].
    pub fn overlap(&self, other: &GramSet) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let inter = self.intersection_size(other);
        inter as f64 / self.len().min(other.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ngram;

    /// The string-set ground truth for a word's all-gram signature.
    fn naive(word: &str) -> std::collections::HashSet<String> {
        ngram::all_ngrams(word)
    }

    #[test]
    fn all_grams_cardinality_matches_string_sets() {
        for w in ["abc", "aa", "patient", "x", "", "héllo", "διάγνωση"] {
            assert_eq!(GramSet::all_grams(w).len(), naive(w).len(), "word {w}");
        }
    }

    #[test]
    fn coefficients_are_bitwise_equal_to_string_sets() {
        let pairs = [
            ("patient", "pat"),
            ("first_name", "firstname"),
            ("height", "heights"),
            ("abc", "xyz"),
            ("diagnosis", "diagnoses"),
            ("a", "a"),
        ];
        for (x, y) in pairs {
            let (gx, gy) = (GramSet::all_grams(x), GramSet::all_grams(y));
            let (sx, sy) = (naive(x), naive(y));
            assert_eq!(gx.dice(&gy).to_bits(), ngram::dice(&sx, &sy).to_bits());
            assert_eq!(
                gx.jaccard(&gy).to_bits(),
                ngram::jaccard(&sx, &sy).to_bits()
            );
            assert_eq!(
                gx.overlap(&gy).to_bits(),
                ngram::overlap(&sx, &sy).to_bits()
            );
        }
    }

    #[test]
    fn intersection_by_merge_matches_set_intersection() {
        let a = GramSet::all_grams("patient");
        let b = GramSet::all_grams("patent");
        let expect = naive("patient").intersection(&naive("patent")).count();
        assert_eq!(a.intersection_size(&b), expect);
        assert_eq!(b.intersection_size(&a), expect);
    }

    #[test]
    fn of_terms_dedupes_and_ignores_order() {
        let a = GramSet::of_terms(["height", "gender", "height"]);
        let b = GramSet::of_terms(["gender", "height"]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_sets_behave_like_the_string_versions() {
        let e = GramSet::default();
        let a = GramSet::all_grams("a");
        assert_eq!(e.dice(&e), 0.0);
        assert_eq!(e.jaccard(&e), 0.0);
        assert_eq!(e.overlap(&a), 0.0);
        assert!(GramSet::all_grams("").is_empty());
    }

    #[test]
    fn hash_term_distinguishes_common_words() {
        let words = ["patient", "height", "gender", "diagnosis", "pat", "ht"];
        let set = GramSet::of_terms(words);
        assert_eq!(set.len(), words.len());
    }
}
