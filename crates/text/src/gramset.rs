//! Hashed gram signatures: the prepared, allocation-free counterpart of
//! [`crate::ngram`]'s `HashSet<String>` sets.
//!
//! The name matcher compares all-n-gram sets for every (query word ×
//! element word) pair, and candidate schemas are immutable between
//! repository revisions — so the expensive part (building the sets) can be
//! done once and reused, and the per-pair part (set intersection) should
//! not allocate at all. A [`GramSet`] stores a word's gram set as a
//! sorted, deduplicated `Vec<u64>` of FNV-1a gram hashes; Dice, Jaccard,
//! and overlap coefficients come from a sorted-merge intersection count
//! that touches no heap.
//!
//! The coefficients use the exact arithmetic of [`crate::ngram`], so a
//! score computed over two `GramSet`s is bitwise identical to the same
//! score over the corresponding string sets (up to 64-bit hash collisions,
//! which are vanishingly unlikely within a schema vocabulary).
//!
//! ## Intersection kernels
//!
//! `intersection_size` picks among three kernels, all returning the exact
//! count (the coefficients depend only on the count, so every kernel
//! preserves bitwise-identical scores):
//!
//! * **galloping** — when one side is ≥ [`GALLOP_RATIO`]× larger, walk the
//!   small side and exponentially probe + binary-search the large side:
//!   O(|small| · log |large|) beats the linear merge on asymmetric pairs,
//!   with or without SIMD.
//! * **AVX2 block merge** (`simd` feature, x86-64 with runtime AVX2) —
//!   compares 4×4 u64 blocks per iteration via lane rotations, advancing
//!   whichever block exhausts first; the scalar merge finishes the tail.
//! * **scalar merge** — the portable two-pointer fallback.
//!
//! The merge kernel is resolved once per process (a `OnceLock` function
//! pointer seeded by `is_x86_feature_detected!`), never per call.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of a full string — the "term id" used by prepared context
/// and token sets.
pub fn hash_term(term: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in term.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A sorted, deduplicated set of 64-bit gram (or term) hashes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GramSet {
    hashes: Vec<u64>,
}

impl GramSet {
    /// The all-n-gram signature of one word: every character n-gram with
    /// lengths `1..=word.len()`, hashed. Mirrors [`crate::ngram::all_ngrams`]
    /// without allocating a string per gram — each suffix start extends
    /// one rolling FNV-1a state per added character.
    pub fn all_grams(word: &str) -> GramSet {
        let n = word.chars().count();
        let mut hashes = Vec::with_capacity(n * (n + 1) / 2);
        for (start, _) in word.char_indices() {
            let tail = &word.as_bytes()[start..];
            let mut h = FNV_OFFSET;
            for (k, &byte) in tail.iter().enumerate() {
                h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
                // A gram ends at every character boundary: the next byte
                // is absent or not a UTF-8 continuation byte.
                if tail.get(k + 1).is_none_or(|&nb| nb & 0xC0 != 0x80) {
                    hashes.push(h);
                }
            }
        }
        Self::from_hashes(hashes)
    }

    /// A set of whole-term hashes (deduplicated): the prepared form of an
    /// analyzed token or neighborhood term set.
    pub fn of_terms<'a>(terms: impl IntoIterator<Item = &'a str>) -> GramSet {
        Self::from_hashes(terms.into_iter().map(hash_term).collect())
    }

    /// Normalize a raw hash list into the sorted-dedup invariant. The vec
    /// is shrunk so [`GramSet::heap_bytes`] reflects resident size in the
    /// byte-budgeted match-artifact cache.
    pub fn from_hashes(mut hashes: Vec<u64>) -> GramSet {
        hashes.sort_unstable();
        hashes.dedup();
        hashes.shrink_to_fit();
        GramSet { hashes }
    }

    /// Number of distinct grams.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when the set has no grams.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Approximate heap footprint, for byte-budgeted caches.
    pub fn heap_bytes(&self) -> usize {
        self.hashes.capacity() * std::mem::size_of::<u64>()
    }

    /// `|self ∩ other|` — no allocation. Dispatches to galloping search
    /// for highly asymmetric sizes, otherwise to the process-wide merge
    /// kernel (AVX2 block merge under the `simd` feature when the CPU
    /// supports it, scalar two-pointer merge elsewhere). All paths return
    /// the exact count, so coefficient scores are kernel-independent.
    pub fn intersection_size(&self, other: &GramSet) -> usize {
        let (a, b) = (self.hashes.as_slice(), other.hashes.as_slice());
        if a.is_empty() || b.is_empty() {
            return 0;
        }
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        if large.len() >= small.len().saturating_mul(GALLOP_RATIO) {
            gallop_intersect(small, large)
        } else {
            merge_kernel()(a, b)
        }
    }

    /// Dice coefficient, arithmetic-identical to [`crate::ngram::dice`].
    pub fn dice(&self, other: &GramSet) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 0.0;
        }
        let inter = self.intersection_size(other);
        2.0 * inter as f64 / (self.len() + other.len()) as f64
    }

    /// Jaccard coefficient, arithmetic-identical to
    /// [`crate::ngram::jaccard`].
    pub fn jaccard(&self, other: &GramSet) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 0.0;
        }
        let inter = self.intersection_size(other);
        let union = self.len() + other.len() - inter;
        inter as f64 / union as f64
    }

    /// Overlap coefficient, arithmetic-identical to
    /// [`crate::ngram::overlap`].
    pub fn overlap(&self, other: &GramSet) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let inter = self.intersection_size(other);
        inter as f64 / self.len().min(other.len()) as f64
    }
}

/// Size ratio at which galloping beats the linear merge: with |large| ≥
/// 16·|small|, |small|·log₂|large| comparisons undercut |a| + |b|.
const GALLOP_RATIO: usize = 16;

type MergeFn = fn(&[u64], &[u64]) -> usize;

/// The process-wide merge kernel, resolved exactly once: AVX2 block merge
/// when the `simd` feature is compiled in and the CPU reports AVX2,
/// scalar two-pointer merge otherwise.
fn merge_kernel() -> MergeFn {
    static KERNEL: std::sync::OnceLock<MergeFn> = std::sync::OnceLock::new();
    *KERNEL.get_or_init(select_merge_kernel)
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn select_merge_kernel() -> MergeFn {
    if std::arch::is_x86_feature_detected!("avx2") {
        avx2_merge
    } else {
        scalar_merge
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn select_merge_kernel() -> MergeFn {
    scalar_merge
}

/// Safe shim with the plain `MergeFn` ABI around the `target_feature`
/// kernel; installed only after runtime AVX2 detection.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn avx2_merge(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: `select_merge_kernel` picks this path only when
    // `is_x86_feature_detected!("avx2")` held, so the required target
    // feature is present for the whole process lifetime.
    unsafe { avx2::merge_count(a, b) }
}

/// Portable two-pointer merge over two sorted, deduplicated hash slices.
fn scalar_merge(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

/// Intersection count for asymmetric sizes: walk `small`, and for each
/// element probe `large` by exponential doubling from the previous match
/// position, then binary-search the bounded window. O(|small|·log|large|).
fn gallop_intersect(small: &[u64], large: &[u64]) -> usize {
    let (mut inter, mut lo) = (0usize, 0usize);
    for &x in small {
        if lo >= large.len() {
            break;
        }
        let mut bound = 1usize;
        while lo + bound < large.len() && large[lo + bound] < x {
            bound *= 2;
        }
        // The insertion point for `x` is ≤ lo + bound (the probe either
        // ran off the end or found a value ≥ x there), so the window
        // below contains it.
        let hi = (lo + bound + 1).min(large.len());
        let idx = lo + large[lo..hi].partition_point(|&v| v < x);
        if large.get(idx) == Some(&x) {
            inter += 1;
            lo = idx + 1;
        } else {
            lo = idx;
        }
    }
    inter
}

/// AVX2 block-merge intersection. Compares 4×4 u64 blocks per iteration:
/// four lane rotations of the `b` block are each tested for lane-wise
/// equality against the `a` block, covering all 16 cross pairs, and the
/// OR of the masks popcounts to the number of `a` lanes matched (each
/// `a` lane matches at most one rotation — elements within a sorted,
/// deduplicated set are distinct). Whichever block's maximum is smaller
/// cannot match anything beyond the other block, so it advances; the
/// scalar merge finishes the tails.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use std::arch::x86_64::{
        __m256i, _mm256_castsi256_pd, _mm256_cmpeq_epi64, _mm256_loadu_si256, _mm256_movemask_pd,
        _mm256_or_si256, _mm256_permute4x64_epi64,
    };

    #[target_feature(enable = "avx2")]
    pub fn merge_count(a: &[u64], b: &[u64]) -> usize {
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        while i + 4 <= a.len() && j + 4 <= b.len() {
            // SAFETY: the loop condition guarantees four readable u64
            // lanes at both offsets; loadu has no alignment requirement.
            let (va, vb) = unsafe {
                (
                    _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i),
                    _mm256_loadu_si256(b.as_ptr().add(j) as *const __m256i),
                )
            };
            let r0 = _mm256_cmpeq_epi64(va, vb);
            let r1 = _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64::<0x39>(vb));
            let r2 = _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64::<0x4E>(vb));
            let r3 = _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64::<0x93>(vb));
            let any = _mm256_or_si256(_mm256_or_si256(r0, r1), _mm256_or_si256(r2, r3));
            inter += _mm256_movemask_pd(_mm256_castsi256_pd(any)).count_ones() as usize;
            let (a_max, b_max) = (a[i + 3], b[j + 3]);
            if a_max <= b_max {
                i += 4;
            }
            if b_max <= a_max {
                j += 4;
            }
        }
        inter + super::scalar_merge(&a[i..], &b[j..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ngram;

    /// The string-set ground truth for a word's all-gram signature.
    fn naive(word: &str) -> std::collections::HashSet<String> {
        ngram::all_ngrams(word)
    }

    #[test]
    fn all_grams_cardinality_matches_string_sets() {
        for w in ["abc", "aa", "patient", "x", "", "héllo", "διάγνωση"] {
            assert_eq!(GramSet::all_grams(w).len(), naive(w).len(), "word {w}");
        }
    }

    #[test]
    fn coefficients_are_bitwise_equal_to_string_sets() {
        let pairs = [
            ("patient", "pat"),
            ("first_name", "firstname"),
            ("height", "heights"),
            ("abc", "xyz"),
            ("diagnosis", "diagnoses"),
            ("a", "a"),
        ];
        for (x, y) in pairs {
            let (gx, gy) = (GramSet::all_grams(x), GramSet::all_grams(y));
            let (sx, sy) = (naive(x), naive(y));
            assert_eq!(gx.dice(&gy).to_bits(), ngram::dice(&sx, &sy).to_bits());
            assert_eq!(
                gx.jaccard(&gy).to_bits(),
                ngram::jaccard(&sx, &sy).to_bits()
            );
            assert_eq!(
                gx.overlap(&gy).to_bits(),
                ngram::overlap(&sx, &sy).to_bits()
            );
        }
    }

    #[test]
    fn intersection_by_merge_matches_set_intersection() {
        let a = GramSet::all_grams("patient");
        let b = GramSet::all_grams("patent");
        let expect = naive("patient").intersection(&naive("patent")).count();
        assert_eq!(a.intersection_size(&b), expect);
        assert_eq!(b.intersection_size(&a), expect);
    }

    #[test]
    fn of_terms_dedupes_and_ignores_order() {
        let a = GramSet::of_terms(["height", "gender", "height"]);
        let b = GramSet::of_terms(["gender", "height"]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_sets_behave_like_the_string_versions() {
        let e = GramSet::default();
        let a = GramSet::all_grams("a");
        assert_eq!(e.dice(&e), 0.0);
        assert_eq!(e.jaccard(&e), 0.0);
        assert_eq!(e.overlap(&a), 0.0);
        assert!(GramSet::all_grams("").is_empty());
    }

    #[test]
    fn hash_term_distinguishes_common_words() {
        let words = ["patient", "height", "gender", "diagnosis", "pat", "ht"];
        let set = GramSet::of_terms(words);
        assert_eq!(set.len(), words.len());
    }

    #[test]
    fn from_hashes_shrinks_to_resident_size() {
        // A heavily duplicated input leaves a large capacity behind
        // without the shrink; heap_bytes must track the surviving len.
        let raw: Vec<u64> = (0..1024u64).map(|i| i % 8).collect();
        let set = GramSet::from_hashes(raw);
        assert_eq!(set.len(), 8);
        assert_eq!(set.heap_bytes(), 8 * std::mem::size_of::<u64>());
    }

    /// Every kernel path must return the same count as the scalar merge,
    /// on both symmetric and asymmetric (gallop-dispatched) sizes.
    fn assert_kernels_agree(a: &GramSet, b: &GramSet) {
        let expect = scalar_merge(&a.hashes, &b.hashes);
        assert_eq!(a.intersection_size(b), expect);
        assert_eq!(b.intersection_size(a), expect);
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        assert_eq!(gallop_intersect(&small.hashes, &large.hashes), expect);
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the runtime AVX2 check above.
            assert_eq!(unsafe { avx2::merge_count(&a.hashes, &b.hashes) }, expect);
        }
    }

    proptest::proptest! {
        /// Scalar, galloping, AVX2 (when available), and the dispatching
        /// `intersection_size` all agree — dense hash domain for heavy
        /// collision coverage.
        #[test]
        fn kernel_paths_agree_on_dense_sets(
            xs in proptest::collection::vec(0u64..512, 0..160),
            ys in proptest::collection::vec(0u64..512, 0..160),
        ) {
            assert_kernels_agree(&GramSet::from_hashes(xs), &GramSet::from_hashes(ys));
        }

        /// Asymmetric sizes exercise the gallop dispatch (|large| ≥
        /// 16·|small|) against the same oracle.
        #[test]
        fn kernel_paths_agree_on_asymmetric_sets(
            xs in proptest::collection::vec(0u64..4096, 0..6),
            ys in proptest::collection::vec(0u64..4096, 200..400),
        ) {
            assert_kernels_agree(&GramSet::from_hashes(xs), &GramSet::from_hashes(ys));
        }

        /// Real word signatures (unicode included via the `.` class) stay
        /// kernel-independent too.
        #[test]
        fn kernel_paths_agree_on_word_grams(x in ".{0,16}", y in ".{0,16}") {
            assert_kernels_agree(&GramSet::all_grams(&x), &GramSet::all_grams(&y));
        }
    }
}
