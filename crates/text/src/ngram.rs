//! Character n-gram decomposition and set similarity.
//!
//! The paper's name matcher parses "each schema element … into a set of all
//! possible n-grams, ranging in length from one character to the length of
//! the word", then ranks those sets against candidate element names. This
//! module provides that decomposition plus the standard set-similarity
//! coefficients (Dice, Jaccard, overlap) the matcher combines.

use std::collections::HashSet;

/// All n-grams of `word` with lengths in `1..=word.len()` (character-wise),
/// deduplicated.
///
/// `"abc"` → `{a, b, c, ab, bc, abc}`.
pub fn all_ngrams(word: &str) -> HashSet<String> {
    let chars: Vec<char> = word.chars().collect();
    let mut out = HashSet::new();
    for n in 1..=chars.len() {
        for start in 0..=(chars.len() - n) {
            out.insert(chars[start..start + n].iter().collect());
        }
    }
    out
}

/// Fixed-length n-grams of `word` (deduplicated). Words shorter than `n`
/// yield the whole word as a single gram so short names still compare.
pub fn ngrams(word: &str, n: usize) -> HashSet<String> {
    assert!(n > 0, "n-gram length must be positive");
    let chars: Vec<char> = word.chars().collect();
    if chars.is_empty() {
        return HashSet::new();
    }
    if chars.len() < n {
        return HashSet::from([word.to_string()]);
    }
    (0..=chars.len() - n)
        .map(|start| chars[start..start + n].iter().collect())
        .collect()
}

/// Dice coefficient: `2|A ∩ B| / (|A| + |B|)`, in [0, 1].
pub fn dice(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    2.0 * inter as f64 / (a.len() + b.len()) as f64
}

/// Jaccard coefficient: `|A ∩ B| / |A ∪ B|`, in [0, 1].
pub fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Overlap coefficient: `|A ∩ B| / min(|A|, |B|)`, in [0, 1].
///
/// Rewards containment — an abbreviation's gram set is largely contained in
/// its expansion's, so overlap stays high where Jaccard collapses. This is
/// the coefficient Schemr's name matcher leans on for abbreviated terms.
pub fn overlap(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / a.len().min(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn all_ngrams_of_abc() {
        assert_eq!(all_ngrams("abc"), set(&["a", "b", "c", "ab", "bc", "abc"]));
    }

    #[test]
    fn all_ngrams_counts_follow_triangular_numbers() {
        // A word of k distinct characters has k(k+1)/2 distinct n-grams.
        assert_eq!(all_ngrams("abcd").len(), 10);
        assert_eq!(all_ngrams("x").len(), 1);
        assert!(all_ngrams("").is_empty());
    }

    #[test]
    fn all_ngrams_dedupes_repeats() {
        // "aa" → {a, aa}
        assert_eq!(all_ngrams("aa"), set(&["a", "aa"]));
    }

    #[test]
    fn fixed_ngrams() {
        assert_eq!(
            ngrams("patient", 3),
            set(&["pat", "ati", "tie", "ien", "ent"])
        );
        assert_eq!(ngrams("ab", 3), set(&["ab"]));
        assert!(ngrams("", 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_ngrams_panic() {
        ngrams("abc", 0);
    }

    #[test]
    fn coefficients_on_identical_sets_are_one() {
        let a = all_ngrams("patient");
        assert!((dice(&a, &a) - 1.0).abs() < 1e-12);
        assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        assert!((overlap(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coefficients_on_disjoint_sets_are_zero() {
        let a = all_ngrams("abc");
        let b = all_ngrams("xyz");
        assert_eq!(dice(&a, &b), 0.0);
        assert_eq!(jaccard(&a, &b), 0.0);
        assert_eq!(overlap(&a, &b), 0.0);
    }

    #[test]
    fn empty_sets_are_handled() {
        let e = HashSet::new();
        let a = all_ngrams("a");
        assert_eq!(dice(&e, &e), 0.0);
        assert_eq!(jaccard(&e, &e), 0.0);
        assert_eq!(overlap(&e, &a), 0.0);
    }

    #[test]
    fn overlap_rewards_abbreviation_containment() {
        // "pat" is a prefix of "patient": every gram of "pat" appears in
        // "patient"'s all-gram set, so overlap is 1 while Jaccard is small.
        let abbr = all_ngrams("pat");
        let full = all_ngrams("patient");
        assert!((overlap(&abbr, &full) - 1.0).abs() < 1e-12);
        assert!(jaccard(&abbr, &full) < 0.3);
    }

    #[test]
    fn dice_is_symmetric_and_bounded() {
        let a = all_ngrams("height");
        let b = all_ngrams("heights");
        let d1 = dice(&a, &b);
        let d2 = dice(&b, &a);
        assert_eq!(d1, d2);
        assert!((0.0..=1.0).contains(&d1));
        assert!(d1 > 0.7, "near-identical words should score high: {d1}");
    }
}
