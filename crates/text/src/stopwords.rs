//! A small English stopword list for flattened schema documents.
//!
//! Schema names rarely contain stopwords, but titles, summaries, and
//! documentation strings do ("list of the patients seen by a doctor"); the
//! indexer drops them to keep the term dictionary discriminative.

/// Stopwords, sorted, ASCII lowercase.
static STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "if",
    "in", "into", "is", "it", "its", "no", "not", "of", "on", "or", "our", "she", "such", "that",
    "the", "their", "then", "there", "these", "they", "this", "to", "was", "were", "will", "with",
];

/// Is `word` (already lowercase) a stopword?
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// The full stopword list.
pub fn all() -> &'static [&'static str] {
    STOPWORDS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn common_stopwords_are_detected() {
        for w in ["the", "of", "and", "a", "with"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not_stopwords() {
        for w in ["patient", "height", "gender", "diagnosis", "id"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn lookup_is_case_sensitive_by_contract() {
        // Callers fold case first; uppercase input is not matched.
        assert!(!is_stopword("The"));
    }
}
