//! The analyzer pipeline: tokenize → normalize → (expand) → (stop) → (stem).
//!
//! One [`Analyzer`] instance is shared by the offline indexer and the
//! online query flattener so both sides of the index agree on terms — the
//! same contract Lucene analyzers provide in the paper's implementation.

use crate::normalize::{fold_case, AbbreviationDict};
use crate::stem::stem;
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;

/// Configuration of the analysis pipeline.
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Drop stopwords (on for document text, often off for element names).
    pub remove_stopwords: bool,
    /// Apply the Porter stemmer.
    pub stem: bool,
    /// Expand abbreviations through the dictionary.
    pub expand_abbreviations: bool,
    /// Minimum token length kept (after expansion); 1 keeps everything.
    pub min_token_len: usize,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            remove_stopwords: true,
            stem: true,
            expand_abbreviations: true,
            min_token_len: 1,
        }
    }
}

/// The analysis pipeline.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    config: AnalyzerConfig,
    abbreviations: AbbreviationDict,
}

impl Analyzer {
    /// Analyzer with the given config and the built-in abbreviation
    /// dictionary.
    pub fn new(config: AnalyzerConfig) -> Self {
        Analyzer {
            config,
            abbreviations: AbbreviationDict::builtin(),
        }
    }

    /// Replace the abbreviation dictionary.
    pub fn with_abbreviations(mut self, dict: AbbreviationDict) -> Self {
        self.abbreviations = dict;
        self
    }

    /// The pipeline used for free document text (titles, summaries, docs):
    /// stopwords removed, stemming on.
    pub fn for_documents() -> Self {
        Analyzer::new(AnalyzerConfig::default())
    }

    /// The pipeline used for element names: no stopword removal (an element
    /// named `to` is still a name), stemming and expansion on.
    pub fn for_names() -> Self {
        Analyzer::new(AnalyzerConfig {
            remove_stopwords: false,
            ..AnalyzerConfig::default()
        })
    }

    /// A minimal pipeline: tokenize + case fold only. Used by baselines and
    /// ablation experiments.
    pub fn plain() -> Self {
        Analyzer::new(AnalyzerConfig {
            remove_stopwords: false,
            stem: false,
            expand_abbreviations: false,
            min_token_len: 1,
        })
        .with_abbreviations(AbbreviationDict::empty())
    }

    /// Run the pipeline over `input`, producing index/query terms.
    pub fn analyze(&self, input: &str) -> Vec<String> {
        let mut out = Vec::new();
        for token in tokenize(input) {
            let folded = fold_case(&token.text);
            let words = if self.config.expand_abbreviations {
                self.abbreviations.expand_words(&folded)
            } else {
                vec![folded]
            };
            for w in words {
                if self.config.remove_stopwords && is_stopword(&w) {
                    continue;
                }
                let term = if self.config.stem { stem(&w) } else { w };
                if term.chars().count() >= self.config.min_token_len {
                    out.push(term);
                }
            }
        }
        out
    }

    /// Analyze several inputs and concatenate the terms.
    pub fn analyze_all<'a>(&self, inputs: impl IntoIterator<Item = &'a str>) -> Vec<String> {
        inputs.into_iter().flat_map(|s| self.analyze(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_pipeline_folds_splits_stops_and_stems() {
        let a = Analyzer::for_documents();
        assert_eq!(
            a.analyze("The PatientDiagnoses of the clinic"),
            vec!["patient", "diagnos", "clinic"]
        );
    }

    #[test]
    fn name_pipeline_keeps_stopword_like_names() {
        let a = Analyzer::for_names();
        assert_eq!(a.analyze("to"), vec!["to"]);
    }

    #[test]
    fn abbreviations_expand_before_stemming() {
        let a = Analyzer::for_names();
        // pat_ht → patient, height
        assert_eq!(a.analyze("pat_ht"), vec!["patient", "height"]);
        // dob expands to three words; "of" survives because the name
        // pipeline keeps stopwords.
        assert_eq!(a.analyze("DOB"), vec!["date", "of", "birth"]);
    }

    #[test]
    fn document_pipeline_drops_stopwords_from_expansions() {
        let a = Analyzer::for_documents();
        assert_eq!(a.analyze("dob"), vec!["date", "birth"]);
    }

    #[test]
    fn plain_pipeline_only_tokenizes_and_folds() {
        let a = Analyzer::plain();
        assert_eq!(
            a.analyze("The PatientDiagnoses"),
            vec!["the", "patient", "diagnoses"]
        );
        assert_eq!(a.analyze("qty"), vec!["qty"]);
    }

    #[test]
    fn same_pipeline_conflates_grammatical_variants() {
        let a = Analyzer::for_names();
        assert_eq!(a.analyze("diagnoses"), a.analyze("diagnosed"));
        assert_eq!(a.analyze("patients"), a.analyze("patient"));
    }

    #[test]
    fn min_token_len_filters_short_terms() {
        let a = Analyzer::new(AnalyzerConfig {
            remove_stopwords: false,
            stem: false,
            expand_abbreviations: false,
            min_token_len: 2,
        })
        .with_abbreviations(crate::normalize::AbbreviationDict::empty());
        assert_eq!(a.analyze("a_bb_ccc"), vec!["bb", "ccc"]);
    }

    #[test]
    fn analyze_all_concatenates() {
        let a = Analyzer::plain();
        assert_eq!(a.analyze_all(["ab cd", "ef"]), vec!["ab", "cd", "ef"]);
    }

    #[test]
    fn empty_input_yields_no_terms() {
        assert!(Analyzer::for_documents().analyze("").is_empty());
        assert!(Analyzer::for_documents().analyze("___").is_empty());
    }
}
