//! Term normalization: case folding and abbreviation expansion.
//!
//! The paper's name matcher "normalizes terms" before computing n-gram
//! overlap. We fold case and optionally expand a dictionary of
//! abbreviations that are endemic in real schema corpora (`qty`, `amt`,
//! `dob`, …), which measurably improves matching of abbreviated names.

use std::collections::HashMap;

/// Lowercase `term` (full Unicode case folding via `char::to_lowercase`).
pub fn fold_case(term: &str) -> String {
    term.chars().flat_map(char::to_lowercase).collect()
}

/// A dictionary mapping common schema abbreviations to expansions.
///
/// Lookup is case-insensitive; expansions are lowercase and may be
/// multi-word (`dob` → `date of birth`).
#[derive(Debug, Clone)]
pub struct AbbreviationDict {
    map: HashMap<String, String>,
}

impl AbbreviationDict {
    /// An empty dictionary (expansion disabled).
    pub fn empty() -> Self {
        AbbreviationDict {
            map: HashMap::new(),
        }
    }

    /// The built-in dictionary of abbreviations common in database schemas.
    pub fn builtin() -> Self {
        const PAIRS: &[(&str, &str)] = &[
            ("abbr", "abbreviation"),
            ("acct", "account"),
            ("addr", "address"),
            ("amt", "amount"),
            ("avg", "average"),
            ("bal", "balance"),
            ("bday", "birthday"),
            ("bldg", "building"),
            ("cat", "category"),
            ("cd", "code"),
            ("cnt", "count"),
            ("co", "company"),
            ("ct", "count"),
            ("ctry", "country"),
            ("cust", "customer"),
            ("dept", "department"),
            ("desc", "description"),
            ("diag", "diagnosis"),
            ("dob", "date of birth"),
            ("doc", "document"),
            ("dr", "doctor"),
            ("dt", "date"),
            ("emp", "employee"),
            ("fk", "foreign key"),
            ("fname", "first name"),
            ("gend", "gender"),
            ("hosp", "hospital"),
            ("ht", "height"),
            ("id", "identifier"),
            ("img", "image"),
            ("inv", "invoice"),
            ("lang", "language"),
            ("lat", "latitude"),
            ("lname", "last name"),
            ("loc", "location"),
            ("lon", "longitude"),
            ("lng", "longitude"),
            ("max", "maximum"),
            ("med", "medication"),
            ("min", "minimum"),
            ("msg", "message"),
            ("mtg", "meeting"),
            ("nbr", "number"),
            ("no", "number"),
            ("num", "number"),
            ("org", "organization"),
            ("pat", "patient"),
            ("pct", "percent"),
            ("phys", "physician"),
            ("pk", "primary key"),
            ("pos", "position"),
            ("prod", "product"),
            ("pt", "patient"),
            ("qty", "quantity"),
            ("rcpt", "receipt"),
            ("ref", "reference"),
            ("reg", "region"),
            ("rm", "room"),
            ("rx", "prescription"),
            ("sched", "schedule"),
            ("sex", "gender"),
            ("spec", "specimen"),
            ("sta", "station"),
            ("std", "standard"),
            ("svc", "service"),
            ("tel", "telephone"),
            ("temp", "temperature"),
            ("tm", "time"),
            ("tot", "total"),
            ("txn", "transaction"),
            ("usr", "user"),
            ("vis", "visit"),
            ("wt", "weight"),
            ("yr", "year"),
            ("zip", "zipcode"),
        ];
        AbbreviationDict {
            map: PAIRS
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Dictionary from caller-supplied pairs (keys folded to lowercase).
    pub fn from_pairs<I, K, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: AsRef<str>,
        V: Into<String>,
    {
        AbbreviationDict {
            map: pairs
                .into_iter()
                .map(|(k, v)| (fold_case(k.as_ref()), v.into()))
                .collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Expand `term` if it is a known abbreviation; `None` otherwise.
    pub fn expand(&self, term: &str) -> Option<&str> {
        self.map.get(&fold_case(term)).map(String::as_str)
    }

    /// Expand `term` to one or more lowercase words: the expansion's words
    /// if known, otherwise the case-folded term itself.
    pub fn expand_words(&self, term: &str) -> Vec<String> {
        match self.expand(term) {
            Some(exp) => exp.split_whitespace().map(str::to_string).collect(),
            None => vec![fold_case(term)],
        }
    }
}

impl Default for AbbreviationDict {
    fn default() -> Self {
        Self::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_case_lowercases_unicode() {
        assert_eq!(fold_case("PatientHeight"), "patientheight");
        assert_eq!(fold_case("ÜBER"), "über");
        assert_eq!(fold_case(""), "");
    }

    #[test]
    fn builtin_expands_common_schema_abbreviations() {
        let d = AbbreviationDict::builtin();
        assert_eq!(d.expand("qty"), Some("quantity"));
        assert_eq!(d.expand("QTY"), Some("quantity"));
        assert_eq!(d.expand("ht"), Some("height"));
        assert_eq!(d.expand("patient"), None);
        assert!(!d.is_empty());
    }

    #[test]
    fn multiword_expansions_split_into_words() {
        let d = AbbreviationDict::builtin();
        assert_eq!(d.expand_words("dob"), ["date", "of", "birth"]);
        assert_eq!(d.expand_words("Gender"), ["gender"]);
    }

    #[test]
    fn custom_dictionaries_fold_keys() {
        let d = AbbreviationDict::from_pairs([("TNC", "the nature conservancy")]);
        assert_eq!(d.expand("tnc"), Some("the nature conservancy"));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn empty_dictionary_expands_nothing() {
        let d = AbbreviationDict::empty();
        assert!(d.is_empty());
        assert_eq!(d.expand("qty"), None);
        assert_eq!(d.expand_words("QTY"), ["qty"]);
    }
}
