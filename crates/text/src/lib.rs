//! # schemr-text
//!
//! The text-analysis substrate shared by the document index (Phase 1,
//! candidate extraction) and the name/context matchers (Phase 2).
//!
//! Schema element names arrive in every convention imaginable —
//! `PatientHeight`, `pat_ht`, `patient-height`, `PATIENTHEIGHT2` — and the
//! paper's name matcher is explicitly designed around "abbreviated terms,
//! alternate grammatical forms, and delimiter characters". This crate
//! provides the pieces that make that robustness possible:
//!
//! * [`tokenize`] — delimiter + camelCase + letter/digit boundary splitting,
//! * [`normalize`] — case folding and abbreviation expansion,
//! * [`stem`] — a from-scratch Porter stemmer for grammatical variants,
//! * [`stopwords`] — a small stopword list for flattened documents,
//! * [`ngram`] — the all-n-gram decomposition the name matcher scores with,
//! * [`gramset`] — hashed, sorted gram signatures for prepared matching,
//! * [`Analyzer`] — a configurable pipeline combining the above.

pub mod gramset;
pub mod ngram;
pub mod normalize;
pub mod stem;
pub mod stopwords;
pub mod tokenize;

mod analyzer;

pub use analyzer::{Analyzer, AnalyzerConfig};
pub use gramset::GramSet;
