//! Property-based tests for the text-analysis substrate.

use proptest::prelude::*;
use schemr_text::gramset::GramSet;
use schemr_text::ngram::{all_ngrams, dice, jaccard, ngrams, overlap};
use schemr_text::normalize::fold_case;
use schemr_text::stem::stem;
use schemr_text::tokenize::tokenize;
use schemr_text::Analyzer;

proptest! {
    /// Tokens contain no delimiter characters and reassemble from the source.
    #[test]
    fn tokens_are_alphanumeric_slices_of_the_source(s in ".{0,64}") {
        for t in tokenize(&s) {
            prop_assert!(!t.text.is_empty());
            prop_assert!(t.text.chars().all(|c| c.is_alphanumeric()));
            let slice = &s[t.offset..t.offset + t.text.len()];
            prop_assert_eq!(slice, t.text.as_str());
        }
    }

    /// Tokenization never loses alphanumeric characters.
    #[test]
    fn tokenization_preserves_alphanumeric_count(s in "[a-zA-Z0-9_ .-]{0,64}") {
        let total: usize = tokenize(&s).iter().map(|t| t.text.chars().count()).sum();
        let expected = s.chars().filter(|c| c.is_alphanumeric()).count();
        prop_assert_eq!(total, expected);
    }

    /// Stems are nonempty lowercase ASCII for nonempty lowercase input.
    /// (Porter stemming is *not* idempotent in general — e.g. "oase" →
    /// "oas" → "oa" — so we assert shape invariants instead.)
    #[test]
    fn stems_are_nonempty_ascii_lowercase(w in "[a-z]{1,16}") {
        let s = stem(&w);
        prop_assert!(!s.is_empty());
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
    }

    /// Stems never grow longer than the input.
    #[test]
    fn stems_do_not_grow(w in "[a-z]{1,16}") {
        prop_assert!(stem(&w).len() <= w.len() + 1, "stem may add at most a restored 'e'");
    }

    /// Case folding is idempotent.
    #[test]
    fn fold_case_idempotent(s in ".{0,32}") {
        let once = fold_case(&s);
        prop_assert_eq!(fold_case(&once), once);
    }

    /// all_ngrams of a k-char word has at most k(k+1)/2 entries and contains
    /// the word itself.
    #[test]
    fn all_ngram_cardinality_bound(w in "[a-z]{1,12}") {
        let grams = all_ngrams(&w);
        let k = w.chars().count();
        prop_assert!(grams.len() <= k * (k + 1) / 2);
        prop_assert!(grams.contains(&w));
    }

    /// Similarity coefficients are symmetric and bounded in [0, 1].
    #[test]
    fn coefficients_symmetric_and_bounded(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        let ga = all_ngrams(&a);
        let gb = all_ngrams(&b);
        for f in [dice, jaccard, overlap] {
            let ab = f(&ga, &gb);
            let ba = f(&gb, &ga);
            prop_assert_eq!(ab, ba);
            prop_assert!((0.0..=1.0).contains(&ab), "value {} out of range", ab);
        }
    }

    /// Jaccard never exceeds Dice, Dice never exceeds overlap.
    #[test]
    fn coefficient_ordering(a in "[a-z]{1,10}", b in "[a-z]{1,10}") {
        let ga = all_ngrams(&a);
        let gb = all_ngrams(&b);
        let j = jaccard(&ga, &gb);
        let d = dice(&ga, &gb);
        let o = overlap(&ga, &gb);
        prop_assert!(j <= d + 1e-12);
        prop_assert!(d <= o + 1e-12);
    }

    /// Fixed n-grams of length n each have n chars (when the word is long
    /// enough).
    #[test]
    fn fixed_ngram_lengths(w in "[a-z]{3,12}") {
        for g in ngrams(&w, 3) {
            prop_assert_eq!(g.chars().count(), 3);
        }
    }

    /// Analyzer output terms are nonempty and lowercase for ASCII input.
    #[test]
    fn analyzer_terms_are_normalized(s in "[a-zA-Z0-9_ .-]{0,48}") {
        for term in Analyzer::for_documents().analyze(&s) {
            prop_assert!(!term.is_empty());
            prop_assert_eq!(term.clone(), term.to_lowercase());
        }
    }

    /// `GramSet::intersection_size` (whichever kernel the build/CPU
    /// selects — scalar merge, galloping, or AVX2) matches the
    /// `HashSet<String>` ground truth over arbitrary unicode words.
    #[test]
    fn gramset_intersection_matches_string_set_ground_truth(
        x in ".{0,24}",
        y in ".{0,24}",
    ) {
        let (gx, gy) = (GramSet::all_grams(&x), GramSet::all_grams(&y));
        let (sx, sy) = (all_ngrams(&x), all_ngrams(&y));
        let truth = sx.intersection(&sy).count();
        prop_assert_eq!(gx.intersection_size(&gy), truth);
        prop_assert_eq!(gy.intersection_size(&gx), truth);
        prop_assert_eq!(gx.len(), sx.len());
        prop_assert_eq!(gy.len(), sy.len());
        prop_assert_eq!(gx.dice(&gy).to_bits(), dice(&sx, &sy).to_bits());
        prop_assert_eq!(gx.jaccard(&gy).to_bits(), jaccard(&sx, &sy).to_bits());
        prop_assert_eq!(gx.overlap(&gy).to_bits(), overlap(&sx, &sy).to_bits());
    }

    /// Asymmetric set sizes route through the galloping kernel; the
    /// string-set ground truth must still hold. A short word vs the gram
    /// set of many words gives |large| ≥ 16·|small|.
    #[test]
    fn gramset_gallop_path_matches_ground_truth(
        x in "[a-z]{1,2}",
        words in proptest::collection::vec("[a-z]{1,10}", 8..16),
    ) {
        let mut merged = std::collections::HashSet::new();
        for w in &words {
            merged.extend(all_ngrams(w));
        }
        let large = GramSet::of_terms(merged.iter().map(String::as_str));
        let small = GramSet::of_terms(all_ngrams(&x).iter().map(String::as_str));
        let sx = all_ngrams(&x);
        let truth = sx.intersection(&merged).count();
        prop_assert_eq!(small.intersection_size(&large), truth);
        prop_assert_eq!(large.intersection_size(&small), truth);
    }
}
