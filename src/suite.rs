//! Workspace umbrella crate: hosts the integration tests in `tests/` and the
//! runnable examples in `examples/`. Re-exports the member crates for
//! convenience.

pub use schemr;
pub use schemr_codebook as codebook;
pub use schemr_collab as collab;
pub use schemr_corpus as corpus;
pub use schemr_editor as editor;
pub use schemr_index as index;
pub use schemr_match as matchers;
pub use schemr_model as model;
pub use schemr_parse as parse;
pub use schemr_repo as repo;
pub use schemr_server as server;
pub use schemr_text as text;
pub use schemr_viz as viz;
