//! Offline shim for `proptest`: the strategy combinators and the
//! `proptest!` macro surface this workspace uses, implemented as plain
//! deterministic random sampling.
//!
//! Differences from real proptest, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case panics with the normal assert
//!   message; the sampling is deterministic per (test name, case
//!   index), so failures reproduce exactly on re-run.
//! * **Regex string strategies** support the subset the tests use:
//!   character classes (ranges, literals, `^` negation, `\xNN`
//!   escapes), `.`, and `{n}` / `{n,m}` quantifiers on each atom.
//! * Default case count is 64 (real proptest: 256) to keep the tier-1
//!   suite fast; `ProptestConfig::with_cases` overrides per block.

use std::ops::{Range, RangeInclusive};

/// Per-test deterministic RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed ^ 0xA076_1D64_78BD_642F)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a test name: the per-test base seed.
pub fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Error type of a proptest body's implicit `Result` — uninhabited here
/// because the shim's `prop_assert!` panics instead of returning `Err`;
/// it exists so bodies can `return Ok(());` to skip a case early, as
/// they can under real proptest.
#[derive(Debug, Clone, Copy)]
pub enum TestCaseError {}

/// Block-level configuration, set via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. `sample` takes `&self` so strategies compose
/// without `Clone` bounds.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128 - lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
}

// ------------------------------------------------- regex-subset strings

enum CharClass {
    /// Flattened candidate set from `[...]` or a literal character.
    OneOf(Vec<char>),
    /// Negated class `[^...]`: printable ASCII (plus a dash of
    /// non-ASCII) excluding these.
    Not(Vec<char>),
    /// `.`: any non-newline printable character.
    Any,
}

struct Atom {
    class: CharClass,
    min: usize,
    max: usize,
}

/// A few multi-byte characters mixed into `.`/negated classes so
/// robustness tests see non-ASCII input.
const EXOTIC: [char; 6] = ['é', 'Ω', '中', 'λ', 'ß', '☂'];

fn sample_char(class: &CharClass, rng: &mut TestRng) -> char {
    match class {
        CharClass::OneOf(set) => set[rng.below(set.len())],
        CharClass::Any | CharClass::Not(_) => {
            let excluded: &[char] = match class {
                CharClass::Not(e) => e,
                _ => &[],
            };
            for _ in 0..64 {
                let c = if rng.below(16) == 0 {
                    EXOTIC[rng.below(EXOTIC.len())]
                } else {
                    char::from(32 + rng.below(95) as u8) // 0x20..=0x7E
                };
                if !excluded.contains(&c) {
                    return c;
                }
            }
            'x'
        }
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (CharClass, bool) {
    let negated = chars.peek() == Some(&'^');
    if negated {
        chars.next();
    }
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(&c) = chars.peek() {
        match c {
            ']' => {
                chars.next();
                break;
            }
            '\\' => {
                chars.next();
                let esc = chars.next().unwrap_or('\\');
                let lit = match esc {
                    'n' => '\n',
                    'r' => '\r',
                    't' => '\t',
                    'x' => {
                        let hi = chars.next().unwrap_or('0');
                        let lo = chars.next().unwrap_or('0');
                        let code = u32::from_str_radix(&format!("{hi}{lo}"), 16).unwrap_or(0);
                        char::from_u32(code).unwrap_or('\0')
                    }
                    other => other,
                };
                set.push(lit);
                prev = Some(lit);
            }
            '-' => {
                chars.next();
                // Range if we have a previous char and a next one that
                // isn't the closing bracket; otherwise a literal dash.
                match (prev, chars.peek()) {
                    (Some(lo), Some(&hi)) if hi != ']' => {
                        chars.next();
                        set.pop();
                        let (lo, hi) = (lo as u32, hi as u32);
                        for code in lo..=hi {
                            if let Some(ch) = char::from_u32(code) {
                                set.push(ch);
                            }
                        }
                        prev = None;
                    }
                    _ => {
                        set.push('-');
                        prev = Some('-');
                    }
                }
            }
            other => {
                chars.next();
                set.push(other);
                prev = Some(other);
            }
        }
    }
    if set.is_empty() {
        set.push('a');
    }
    (
        if negated {
            CharClass::Not(set)
        } else {
            CharClass::OneOf(set)
        },
        negated,
    )
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    match spec.split_once(',') {
        Some((lo, hi)) => {
            let lo = lo.trim().parse().unwrap_or(0);
            let hi = hi.trim().parse().unwrap_or(lo);
            (lo, hi.max(lo))
        }
        None => {
            let n = spec.trim().parse().unwrap_or(1);
            (n, n)
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let class = match c {
            '[' => parse_class(&mut chars).0,
            '.' => CharClass::Any,
            '\\' => {
                let esc = chars.next().unwrap_or('\\');
                CharClass::OneOf(vec![match esc {
                    'n' => '\n',
                    'r' => '\r',
                    't' => '\t',
                    other => other,
                }])
            }
            literal => CharClass::OneOf(vec![literal]),
        };
        let (min, max) = parse_quantifier(&mut chars);
        atoms.push(Atom { class, min, max });
    }
    atoms
}

impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let count = if atom.max > atom.min {
                atom.min + rng.below(atom.max - atom.min + 1)
            } else {
                atom.min
            };
            for _ in 0..count {
                out.push(sample_char(&atom.class, rng));
            }
        }
        out
    }
}

// ------------------------------------------------------------ collections

/// Element-count specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.lo + rng.below(self.size.hi - self.size.lo);
            let mut out = HashSet::with_capacity(target);
            // A small sample domain may not hold `target` distinct
            // values; bounded retries keep this total.
            for _ in 0..target.saturating_mul(8).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T>(Vec<T>);

    /// Uniformly one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }
}

// ------------------------------------------------------------------ macros

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The `proptest!` block macro: each inner function runs
/// `config.cases` deterministic cases, sampling its arguments from the
/// strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __base = $crate::fnv1a(stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::new(
                        __base ^ (u64::from(__case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    // The closure gives the body real proptest's
                    // implicit `Result` return, so `return Ok(());`
                    // skips a case. The error type is uninhabited, so
                    // the `Err` arm is statically unreachable.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::core::result::Result::Err(__e) = __outcome {
                        match __e {}
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(99)
    }

    #[test]
    fn int_ranges_sample_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (5u64..10).sample(&mut r);
            assert!((5..10).contains(&v));
            let w = (0usize..=3).sample(&mut r);
            assert!(w <= 3);
        }
    }

    #[test]
    fn regex_subset_shapes_strings() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,10}".sample(&mut r);
            assert!(!s.is_empty() && s.len() <= 11, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let t = "[a-zA-Z0-9_ .-]{0,12}".sample(&mut r);
            assert!(t.len() <= 12);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.-".contains(c)));

            let not_nul = "[^\\x00]{0,20}".sample(&mut r);
            assert!(!not_nul.contains('\0'));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut r = rng();
        for _ in 0..200 {
            let v = collection::vec(0u32..100, 2..5).sample(&mut r);
            assert!((2..5).contains(&v.len()));
            let exact = collection::vec(0u32..100, 4).sample(&mut r);
            assert_eq!(exact.len(), 4);
            let set = collection::hash_set(0usize..50, 0..10).sample(&mut r);
            assert!(set.len() < 10);
        }
    }

    #[test]
    fn map_select_and_tuples_compose() {
        let mut r = rng();
        let strat = (0u32..10, sample::select(vec!["a", "b"])).prop_map(|(n, s)| format!("{s}{n}"));
        for _ in 0..50 {
            let v = strat.sample(&mut r);
            assert!(v.starts_with('a') || v.starts_with('b'));
        }
        assert_eq!(Just(7u8).sample(&mut r), 7);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = TestRng::new(123);
        let mut b = TestRng::new(123);
        let strat = collection::vec("[a-z]{1,8}", 1..6);
        for _ in 0..20 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn the_macro_itself_runs(x in 0u64..100, mut v in collection::vec(0u8..10, 0..4)) {
            v.push((x % 10) as u8);
            prop_assert!(v.iter().all(|&b| b < 10));
            prop_assert_eq!(v.is_empty(), false);
            prop_assert_ne!(v.len(), 0);
        }
    }
}
