//! Offline shim for `crossbeam`: the two pieces Schemr uses.
//!
//! * [`channel`] — a bounded MPMC channel (`bounded`) with
//!   `try_send`/`recv` semantics matching crossbeam-channel:
//!   cloneable senders *and* receivers, `TrySendError::Full` carrying
//!   the rejected value back, and disconnection when either side's
//!   last handle drops.
//! * [`thread`] — `scope`/`spawn` built on `std::thread::scope`
//!   (crossbeam predates it; std now provides the same guarantee).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        capacity: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error for `try_send`: the channel is full or has no receivers.
    /// Carries the value back so callers can recover it (load shedding
    /// uses this to answer the rejected connection).
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, PartialEq, Eq)]
    pub enum SendError<T> {
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub struct Sender<T>(Arc<Inner<T>>);

    pub struct Receiver<T>(Arc<Inner<T>>);

    /// A bounded channel holding at most `cap` queued values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
            not_empty: Condvar::new(),
            capacity: cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe disconnection.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Non-blocking send: `Full` bounces the value back immediately
        /// when the queue is at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut q = self.0.queue.lock().expect("channel lock");
            if q.len() >= self.0.capacity {
                return Err(TrySendError::Full(value));
            }
            q.push_back(value);
            drop(q);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Blocking send (spins on a short park when full; the serving
        /// path never uses this under load — it sheds via `try_send`).
        pub fn send(&self, mut value: T) -> Result<(), SendError<T>> {
            loop {
                match self.try_send(value) {
                    Ok(()) => return Ok(()),
                    Err(TrySendError::Disconnected(v)) => return Err(SendError::Disconnected(v)),
                    Err(TrySendError::Full(v)) => {
                        value = v;
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            }
        }

        pub fn len(&self) -> usize {
            self.0.queue.lock().expect("channel lock").len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; errors once the queue is drained and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.not_empty.wait(q).expect("channel lock");
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().expect("channel lock");
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .0
                    .not_empty
                    .wait_timeout(q, deadline - now)
                    .expect("channel lock");
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.0.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        pub fn len(&self) -> usize {
            self.0.queue.lock().expect("channel lock").len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

pub mod thread {
    use std::any::Any;

    /// Mirrors `crossbeam::thread::Scope`: hands out spawns whose
    /// closures receive the scope again (for nested spawning).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handoff = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handoff)),
            }
        }
    }

    /// `crossbeam::thread::scope` on top of `std::thread::scope`. All
    /// spawned threads are joined before this returns; panics in
    /// unjoined children propagate (std re-raises them), so the `Ok`
    /// wrapper here is only for signature compatibility.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TrySendError};
    use super::thread;

    #[test]
    fn bounded_channel_sheds_when_full() {
        let (tx, rx) = bounded(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
    }

    #[test]
    fn receivers_drain_then_disconnect() {
        let (tx, rx) = bounded(4);
        tx.try_send("a").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok("a"));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx) = bounded(8);
        let rx2 = rx.clone();
        let h = std::thread::spawn(move || rx2.recv().unwrap());
        tx.try_send(42u32).unwrap();
        let got = h.join().unwrap();
        assert_eq!(got, 42);
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
    }

    #[test]
    fn scoped_threads_borrow_the_stack() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
