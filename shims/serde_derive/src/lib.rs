//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` generating impls of the serde *shim's*
//! `Value`-based traits.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * named-field structs,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * unit structs,
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like real serde's default).
//!
//! Not supported (fails with a `compile_error!`): generic types and
//! `#[serde(...)]` attributes. The parser is hand-rolled over
//! `proc_macro` token trees — no `syn`/`quote` in an offline build.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip `#[...]` attributes (doc comments arrive in this form too)
    /// and rejects `#[serde(...)]`, which this shim cannot honour.
    fn skip_attrs(&mut self) -> Result<(), String> {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    match self.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            let inner = g.stream().to_string();
                            if inner.starts_with("serde") {
                                return Err(
                                    "serde shim derive does not support #[serde(...)] attributes"
                                        .to_string(),
                                );
                            }
                        }
                        _ => return Err("malformed attribute".to_string()),
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected {what}, found {other:?}")),
        }
    }

    /// Skip a type up to a top-level `,` (exclusive), tracking `<`/`>`
    /// nesting so generic arguments' commas don't split early.
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

/// Count the top-level comma-separated entries of a tuple-field group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        match tok {
            TokenTree::Punct(ref p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(ref p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(ref p) if p.as_char() == ',' && angle_depth == 0 => {
                if saw_token {
                    count += 1;
                }
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut cur = Cursor::new(stream);
    let mut names = Vec::new();
    loop {
        cur.skip_attrs()?;
        if cur.peek().is_none() {
            return Ok(names);
        }
        cur.skip_visibility();
        let name = cur.expect_ident("field name")?;
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected ':' after field {name}, found {other:?}")),
        }
        cur.skip_type();
        names.push(name);
        // Consume the separating comma, if any.
        if let Some(TokenTree::Punct(p)) = cur.peek() {
            if p.as_char() == ',' {
                cur.pos += 1;
            }
        }
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.skip_attrs()?;
        if cur.peek().is_none() {
            return Ok(variants);
        }
        let name = cur.expect_ident("variant name")?;
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                cur.pos += 1;
                Fields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())?;
                cur.pos += 1;
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`), then the comma.
        if let Some(TokenTree::Punct(p)) = cur.peek() {
            if p.as_char() == '=' {
                cur.pos += 1;
                while let Some(tok) = cur.peek() {
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    cur.pos += 1;
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = cur.peek() {
            if p.as_char() == ',' {
                cur.pos += 1;
            }
        }
        variants.push((name, fields));
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    cur.skip_attrs()?;
    cur.skip_visibility();
    let kind = cur.expect_ident("`struct` or `enum`")?;
    let name = cur.expect_ident("type name")?;
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type {name}"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});")
        .parse()
        .expect("compile_error tokens")
}

// ------------------------------------------------------------ generation

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::serialize_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!(
                        "::serde::Value::Object(::std::vec![{}])",
                        entries.join(", ")
                    )
                }
                Fields::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            out.push_str(&format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}\n"
            ));
        }
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for (vname, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Value::Str(\
                         ::std::string::String::from({vname:?}))"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{vname}(f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from({vname:?}), \
                         ::serde::Serialize::serialize_value(f0))])"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let sers: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Value::Array(::std::vec![{sers}]))])",
                            binds = binds.join(", "),
                            sers = sers.join(", ")
                        )
                    }
                    Fields::Named(fnames) => {
                        let binds = fnames.join(", ");
                        let entries: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::serialize_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Value::Object(::std::vec![{}]))])",
                            entries.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            out.push_str(&format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}\n",
                arms.join(",\n")
            ));
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Named(names) => {
                let inits: Vec<String> = names
                    .iter()
                    .map(|f| format!("{f}: ::serde::__private::field(fields, {f:?})?"))
                    .collect();
                format!(
                    "match v {{\n\
                         ::serde::Value::Object(fields) => \
                             ::std::result::Result::Ok({name} {{ {} }}),\n\
                         _ => ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"expected object for {name}\"))),\n\
                     }}",
                    inits.join(", ")
                )
            }
            Fields::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize_value(v)?))"
            ),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
                    .collect();
                format!(
                    "match v {{\n\
                         ::serde::Value::Array(items) if items.len() == {n} => \
                             ::std::result::Result::Ok({name}({})),\n\
                         _ => ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"expected {n}-element array for {name}\"))),\n\
                     }}",
                    inits.join(", ")
                )
            }
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
        },
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vname, _)| {
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname})")
                })
                .collect();
            let mut data_arms: Vec<String> = Vec::new();
            for (vname, fields) in variants {
                let arm = match fields {
                    Fields::Unit => continue,
                    Fields::Tuple(1) => format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize_value(inner)?))"
                    ),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize_value(&items[{i}])?")
                            })
                            .collect();
                        format!(
                            "{vname:?} => match inner {{\n\
                                 ::serde::Value::Array(items) if items.len() == {n} => \
                                     ::std::result::Result::Ok({name}::{vname}({})),\n\
                                 _ => ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"bad array for {name}::{vname}\"))),\n\
                             }}",
                            inits.join(", ")
                        )
                    }
                    Fields::Named(fnames) => {
                        let inits: Vec<String> = fnames
                            .iter()
                            .map(|f| format!("{f}: ::serde::__private::field(vfields, {f:?})?"))
                            .collect();
                        format!(
                            "{vname:?} => match inner {{\n\
                                 ::serde::Value::Object(vfields) => \
                                     ::std::result::Result::Ok({name}::{vname} {{ {} }}),\n\
                                 _ => ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"expected object for {name}::{vname}\"))),\n\
                             }}",
                            inits.join(", ")
                        )
                    }
                };
                data_arms.push(arm);
            }
            let str_arm = format!(
                "::serde::Value::Str(tag) => match tag.as_str() {{\n\
                     {}{}other => ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 }}",
                unit_arms.join(",\n"),
                if unit_arms.is_empty() { "" } else { ",\n" }
            );
            let obj_arm = if data_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         match tag.as_str() {{\n\
                             {},\n\
                             other => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }},\n",
                    data_arms.join(",\n")
                )
            };
            format!(
                "match v {{\n\
                     {str_arm},\n\
                     {obj_arm}\
                     _ => ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"expected {name} variant\"))),\n\
                 }}"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}
