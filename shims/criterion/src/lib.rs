//! Offline shim for `criterion`: the `Criterion` / group / `Bencher`
//! API shape, measuring mean wall-clock time per iteration and printing
//! one line per benchmark. No statistics, no HTML reports.
//!
//! When invoked with `--test` (what `cargo test` passes to bench
//! targets), every benchmark body runs exactly once so the tier-1
//! suite stays fast.

use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A named benchmark id; `from_parameter` mirrors criterion's helper
/// for parameterized benches.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId(name)
    }
}

pub struct Bencher {
    quick: bool,
    /// (iterations, total) recorded by the last `iter` call.
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Time the routine: a warm-up, then enough iterations to fill a
    /// short measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            black_box(routine());
            self.measured = Some((1, Duration::ZERO));
            return;
        }
        // Warm-up and per-iteration estimate.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
        let target = Duration::from_millis(200).as_nanos();
        let iters = (target / per_iter.max(1)).clamp(1, 10_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((iters, start.elapsed()));
    }
}

fn run_one(label: &str, quick: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        quick,
        measured: None,
    };
    f(&mut bencher);
    match bencher.measured {
        Some((iters, total)) if !quick => {
            let mean_ns = total.as_nanos() / u128::from(iters.max(1));
            println!("bench: {label:<48} {mean_ns:>12} ns/iter ({iters} iters)");
        }
        Some(_) => println!("bench: {label:<48} ok (test mode)"),
        None => println!("bench: {label:<48} (no measurement)"),
    }
}

pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test");
        Criterion { quick }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.0, self.quick, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            quick: self.quick,
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    quick: bool,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim sizes its measurement
    /// window by time, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.quick, &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.quick, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_in_quick_mode() {
        let mut b = Bencher {
            quick: true,
            measured: None,
        };
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert_eq!(b.measured.unwrap().0, 1);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("one", |b| b.iter(|| black_box(1 + 1)))
            .bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
        group.finish();
    }
}
