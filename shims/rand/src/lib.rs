//! Offline shim for `rand` 0.9: the `Rng`/`SeedableRng` traits and a
//! deterministic `rngs::StdRng`, covering the `random_range` /
//! `random_bool` surface the corpus generator and benches use.
//!
//! The generator is xoshiro256** seeded via splitmix64 — not the
//! ChaCha12 of the real `StdRng`, but the repo only relies on
//! *determinism for a given seed*, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Types that `random_range` can sample from (the subset of rand's
/// `SampleRange` the workspace needs).
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> T;
    fn is_empty_range(&self) -> bool;
}

/// Raw 64-bit generator; split from [`Rng`] so the extension methods
/// stay object-safe-free and blanket-implemented, as in real rand.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait Rng: RngCore {
    /// Uniform sample from a range. Panics on an empty range, matching
    /// rand's behaviour.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        assert!(!range.is_empty_range(), "cannot sample empty range");
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix over any
            // seed cannot produce it, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim's `StdRng` is already small and fast.
    pub type SmallRng = StdRng;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift would be overkill for test
                // corpora; 64-bit modulo bias over test-sized spans is
                // far below anything observable.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn is_empty_range(&self) -> bool { self.start >= self.end }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
            fn is_empty_range(&self) -> bool { self.start() > self.end() }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }

    fn is_empty_range(&self) -> bool {
        // NaN bounds compare unordered, which correctly reads as empty.
        !matches!(
            self.start.partial_cmp(&self.end),
            Some(core::cmp::Ordering::Less)
        )
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        self.start() + unit * (self.end() - self.start())
    }

    fn is_empty_range(&self) -> bool {
        // NaN bounds compare unordered, which correctly reads as empty.
        !matches!(
            self.start().partial_cmp(self.end()),
            Some(core::cmp::Ordering::Less | core::cmp::Ordering::Equal)
        )
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }

    fn is_empty_range(&self) -> bool {
        // NaN bounds compare unordered, which correctly reads as empty.
        !matches!(
            self.start.partial_cmp(&self.end),
            Some(core::cmp::Ordering::Less)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3u32..=5);
            assert!((3..=5).contains(&w));
            let f = rng.random_range(0.0f64..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "frac={frac}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
