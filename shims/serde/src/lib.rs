//! Offline shim for `serde`: `Serialize`/`Deserialize` defined over an
//! owned JSON-like [`Value`] tree instead of serde's visitor-based data
//! model. The only consumer in this workspace is the `serde_json` shim,
//! and the derive macro (`serde_derive` shim, re-exported under the
//! `derive` feature) generates impls against exactly this trait pair.
//!
//! The wire shape produced for the constructs the workspace uses
//! matches real serde_json: structs as objects, newtype structs
//! transparent, unit enum variants as strings, newtype variants as
//! single-key objects, maps with stringified integer keys.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like tree: the interchange format between `Serialize`
/// impls and the `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object; duplicate keys never arise from
    /// generated code.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable path-free message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::UInt(_) | Value::Int(_) => "integer",
        Value::Float(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

fn unexpected(expected: &str, got: &Value) -> DeError {
    DeError(format!("expected {expected}, found {}", type_name(got)))
}

// ---------------------------------------------------------------- scalars

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(unexpected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range for i64")))?,
                    other => return Err(unexpected("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::deserialize_value(&items[$idx])?,)+))
                    }
                    other => Err(unexpected(concat!("array of length ", $len), other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

/// Map keys: JSON object keys are strings, so integer keys stringify
/// (matching real serde_json's map-key behaviour).
pub trait MapKey: Sized + Ord {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse()
                    .map_err(|_| DeError(format!("invalid {} map key: {key:?}", stringify!($t))))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(unexpected("object", other)),
        }
    }
}

impl<K: MapKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        // Sort for stable output, as serde_json does with sorted-map
        // feature sets; deterministic files diff cleanly.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.serialize_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: MapKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(unexpected("object", other)),
        }
    }
}

/// Support code for the derive macro's generated impls. Not a stable
/// API; nothing outside generated code should call these.
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Look up a struct field by name and deserialize it. Missing
    /// fields are an error: this shim never omits fields on the way
    /// out, so absence means a schema mismatch.
    pub fn field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, DeError> {
        match fields.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::deserialize_value(v).map_err(|e| DeError(format!("field {name:?}: {e}")))
            }
            None => Err(DeError(format!("missing field {name:?}"))),
        }
    }

    pub fn expect_object(v: &Value, ty: &str) -> Result<&'static str, DeError> {
        match v {
            Value::Object(_) => Ok(""),
            other => Err(DeError(format!(
                "expected {ty} object, found {}",
                super::type_name(other)
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::deserialize_value(&7u64.serialize_value()).unwrap(), 7);
        assert_eq!(
            i32::deserialize_value(&(-3i32).serialize_value()).unwrap(),
            -3
        );
        assert_eq!(
            String::deserialize_value(&"hi".to_string().serialize_value()).unwrap(),
            "hi"
        );
        assert!(bool::deserialize_value(&Value::UInt(1)).is_err());
    }

    #[test]
    fn options_use_null() {
        assert_eq!(Option::<u32>::None.serialize_value(), Value::Null);
        assert_eq!(
            Option::<u32>::deserialize_value(&Value::Null).unwrap(),
            None
        );
        assert_eq!(
            Option::<u32>::deserialize_value(&Value::UInt(5)).unwrap(),
            Some(5)
        );
    }

    #[test]
    fn integer_keyed_maps_stringify() {
        let mut m = BTreeMap::new();
        m.insert(42u64, "x".to_string());
        let v = m.serialize_value();
        assert_eq!(
            v,
            Value::Object(vec![("42".into(), Value::Str("x".into()))])
        );
        let back: BTreeMap<u64, String> = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_are_arrays() {
        let v = (1u32, "a".to_string()).serialize_value();
        let back: (u32, String) = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back, (1, "a".to_string()));
    }
}
