//! Offline shim for `parking_lot`: the subset the Schemr crates use,
//! implemented over `std::sync` primitives. The defining behavioural
//! difference preserved here is that locks are **non-poisoning** — a
//! panic while holding a guard does not make later `lock()`/`read()`/
//! `write()` calls fail.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert!(l.try_read().is_some());
    }
}
