//! Offline shim for `bytes`: `Bytes`/`BytesMut` backed by a plain
//! `Vec<u8>`, plus the `Buf`/`BufMut` traits for the little-endian
//! integer and slice accessors the index codec uses. No refcount
//! sharing — `Bytes` owns its storage and `Buf` reads advance an
//! internal cursor, which matches how the codec consumes a segment
//! front to back.

use std::ops::Deref;

/// Read side: consuming accessors over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut raw = vec![0u8; len];
        self.copy_to_slice(&mut raw);
        Bytes::from_vec(raw)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write side: appending accessors onto a growable byte sink.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The not-yet-consumed bytes as an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_vec(data)
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_slice(b"xyz");
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 8);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        let mut rest = [0u8; 3];
        frozen.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(!frozen.has_remaining());
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3, 4];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.remaining(), 3);
        s.advance(1);
        assert_eq!(s.chunk(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_vec(vec![1]);
        let _ = b.get_u32_le();
    }
}
