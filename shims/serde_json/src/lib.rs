//! Offline shim for `serde_json`: `to_string` / `to_string_pretty` /
//! `from_str` over the serde shim's [`Value`] tree, with a hand-rolled
//! RFC 8259 writer and parser. Output shape matches real serde_json
//! for everything the workspace serializes (see the serde shim docs).

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize_value(&value).map_err(Error::from)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ------------------------------------------------------------------ write

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn indent(out: &mut String, step: usize, depth: usize) {
    out.push('\n');
    for _ in 0..step * depth {
        out.push(' ');
    }
}

fn write_value(out: &mut String, v: &Value, pretty: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that
                // round-trips, always with a decimal point or exponent.
                out.push_str(&format!("{f:?}"));
            } else {
                // Real serde_json refuses non-finite floats; emitting
                // null keeps the writer total, and nothing in this
                // workspace produces them.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(step) = pretty {
                    indent(out, step, depth + 1);
                }
                write_value(out, item, pretty, depth + 1);
            }
            if let Some(step) = pretty {
                indent(out, step, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(step) = pretty {
                    indent(out, step, depth + 1);
                }
                write_escaped(out, k);
                out.push(':');
                if pretty.is_some() {
                    out.push(' ');
                }
                write_value(out, v, pretty, depth + 1);
            }
            if let Some(step) = pretty {
                indent(out, step, depth);
            }
            out.push('}');
        }
    }
}

// ------------------------------------------------------------------ parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid surrogate pair".to_string()));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error("invalid code point".to_string()))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error("invalid code point".to_string()))?,
                                );
                            }
                        }
                        other => return Err(Error(format!("invalid escape \\{}", other as char))),
                    }
                }
                Some(_) => return Err(Error("control character in string".to_string())),
                None => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".to_string()))?;
        let cp =
            u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".to_string()))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    if n <= i64::MAX as u64 + 1 {
                        return Ok(Value::Int((n as i64).wrapping_neg()));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_through_text() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&text).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert(3u64, vec!["x".to_string()]);
        let text = to_string(&m).unwrap();
        assert_eq!(text, "{\"3\":[\"x\"]}");
        let back: std::collections::BTreeMap<u64, Vec<String>> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn float_output_round_trips() {
        for f in [0.1f64, 1.0, 1e-9, 123456.789, -0.5] {
            let text = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), f, "text={text}");
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<bool>("7").is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let m: std::collections::BTreeMap<String, Vec<u32>> =
            [("a".to_string(), vec![1, 2])].into_iter().collect();
        let text = to_string_pretty(&m).unwrap();
        assert!(text.contains("\n  \"a\": [\n    1,\n    2\n  ]"), "{text}");
        let back: std::collections::BTreeMap<String, Vec<u32>> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }
}
